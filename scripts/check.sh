#!/usr/bin/env bash
# Full local gate: build, test, lint. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cloudgen-lint"
cargo run --release -p cloudgen-lint

echo "==> fault-injection suite (resilience)"
cargo test --release -p resilience

echo "ok: build + tests + clippy + cloudgen-lint + fault injection all green"
