#!/usr/bin/env bash
# Full local gate: build, test, lint. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p linalg --no-default-features (scalar kernel oracle)"
# The simd feature (on by default) selects the lane-unrolled kernels in
# crates/linalg/src/kernel.rs; this leg runs the whole linalg suite on
# the scalar reference kernels so both sides of the bit-identity
# contract stay green on their own.
cargo test -q -p linalg --no-default-features

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cloudgen-lint (incl. determinism/concurrency pack + stale-allow audit)"
# Exits nonzero on any violation, including the six syntax-aware rules
# added in PR 5 (unordered-iter, raw-spawn, unordered-reduce,
# shared-mut-numeric, ambient-parallelism, stale-allow) and PR 6's
# ambient-time (Instant/SystemTime reads outside obsv).
cargo run --release -p cloudgen-lint

echo "==> cloudgen-lint effects (interprocedural contract gate + panic reachability)"
# PR 7: workspace call graph + effect-lattice fixpoint. Enforces the
# contracts in lint-contracts.toml (kernel purity, transitive panic-freedom
# on numeric paths, clock/spawn confinement) and the hot-loop-alloc rule
# for profiled kernels; writes the panic-reachability report for auditing.
cargo run --release -p cloudgen-lint -- effects \
  --contracts lint-contracts.toml --report lint-effects-report.json

echo "==> cloudgen-lint memory (allocation-flow growth contracts + witness report)"
# PR 10: growth-class fixpoint over the same call graph. Enforces the
# [[memory]] streaming contracts in lint-contracts.toml (generation,
# trace I/O, and the serve response path stay loop-linear at worst;
# kernels stay param-bounded) and writes the growth report listing every
# public entry that reaches loop-linear or worse with its witness chain.
cargo run --release -p cloudgen-lint -- memory \
  --contracts lint-contracts.toml --report lint-memory-report.json

echo "==> fault-injection suite (resilience)"
cargo test --release -p resilience

echo "==> determinism gate (multi-thread == single-thread, bit-for-bit)"
cargo test --release --test determinism

echo "==> parallel throughput bench (writes BENCH_pr4.json)"
# No speedup bound here: local machines vary. CI sets
# CLOUDGEN_REQUIRE_SPEEDUP=2.0 on a 4-core runner; the bench always
# asserts byte-identical losses/traces across worker counts.
cargo run --release -p bench --bin bench_pr4_parallel

echo "==> continuous bench harness smoke (writes BENCH_pr6.json + compare gate)"
# Quick-mode kernel + stage benches with schema self-validation, then the
# regression gate diffing the fresh report against itself (must exit 0).
# Against a stored baseline: cloudgen-bench compare BASELINE.json BENCH_pr6.json
cargo run --release -p bench --bin cloudgen-bench -- run --quick --out BENCH_pr6.json
cargo run --release -p bench --bin cloudgen-bench -- compare BENCH_pr6.json BENCH_pr6.json

echo "==> kernel regression gate (quick run vs BENCH_pr9.json baseline)"
# PR 9: the fused-kernel before/after baseline pins single-thread medians
# for gemm / lstm-fwd / lstm-bwd. A fresh quick run may not regress any of
# them by more than 10% plus the 3x-MAD noise slack. Machines differ; if a
# slower host trips this legitimately, re-record the baseline with
# `cloudgen-bench run` and commit the new BENCH_pr9.json alongside the
# change that explains it.
cargo run --release -p bench --bin cloudgen-bench -- compare BENCH_pr9.json BENCH_pr6.json --threshold 0.10

echo "==> serving layer fault storm (writes BENCH_serve.json)"
# PR 8: loadgen storms a live cloudgen-serve with 16 concurrent clients
# mixing clean requests with every fault class, then drains under load.
# Exits nonzero on any client-visible I/O error, untyped non-200, or
# missing latency percentile; bounded queue memory is asserted by the
# shed path itself (429 Overloaded, never growth).
cargo run --release -p bench --bin loadgen -- --quick --out BENCH_serve.json
grep -q '"p99"' BENCH_serve.json

echo "ok: build + tests + clippy + cloudgen-lint + fault injection + determinism + bench smoke + serve storm all green"
