#!/usr/bin/env python3
"""Extracts the headline lines from results/*.txt for EXPERIMENTS.md."""
import pathlib, re, sys

keep = re.compile(
    r"^(===|System|Uniform|Multinomial|RepeatFlav|LSTM|CoinFlip|Overall KM|"
    r"Per-flavor KM|RepeatLifetime|KM |Naive|SimpleBatch|Test data|Generator|"
    r"DOH|VM Poisson|NegBin|Poisson|shape check|median volume|Actual|"
    r"Three-stage|Single-LSTM|Head|Hazard|Pmf|Model|CPUxMem|eob_scale|Trace|"
    r"censoring-|pure copies|top copy|\s+in-batch|\s+batch-start|coverage|"
    r"[0-9.]+\s)")
for f in sorted(pathlib.Path("results").glob("*.txt")):
    print(f"\n########## {f.name} ##########")
    for line in f.read_text().splitlines():
        if "warning" in line or line.startswith(("   Compiling", "    Finished", "     Running", "   |", "  -->", "   = ")):
            continue
        if keep.match(line):
            print(line)
