#!/usr/bin/env bash
# Regenerates every table/figure reproduction plus the ablations and
# extensions, teeing each into results/<name>.txt. Trained models are
# cached under target/model-cache/, so the first binary pays the training
# cost per cloud.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
BINS=(
  table1_datasets
  table2_flavors
  table3_lifetimes
  table4_survival_mse
  fig1_visualization
  fig4_5_batch_arrivals
  fig6_vm_arrivals
  fig7_8_capacity
  fig9_reuse
  fig10_table5_packing
  ablation_hazard_vs_pmf
  ablation_whatif_eob
  ablation_multiresource
  ablation_single_lstm
  ablation_rnn_vs_lstm
  ext_placement_cache
  ext_negbin_arrivals
)
for b in "${BINS[@]}"; do
  echo "=== running $b ==="
  cargo run --release -p bench --bin "$b" 2>&1 | tee "results/$b.txt"
done
