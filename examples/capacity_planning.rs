//! Capacity planning (paper §6.1): compute a probability distribution over
//! future total CPU demand by repeatedly sampling traces, and answer a
//! provisioning question — "how many vCPUs cover 95 % of scenarios next
//! week?".
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, TokenStream, TraceGenerator, TrainConfig,
};
use eval::{quantile, render_band_chart, PredictionBand};
use glm::{DohStrategy, ElasticNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::{TemporalFeaturesSpec, PERIOD_SECS};
use trace::{ObservationWindow, Trace};

const TRAIN_DAYS: u64 = 6;
const FUTURE_DAYS: u64 = 2;
const SAMPLES: usize = 40;

fn cpu_series(t: &Trace, first_period: u64, n_periods: u64) -> Vec<f64> {
    let mut diff = vec![0.0; n_periods as usize + 1];
    for j in &t.jobs {
        let v = t.catalog.get(j.flavor).vcpus;
        let ps = (j.start.div_ceil(PERIOD_SECS)).clamp(first_period, first_period + n_periods)
            - first_period;
        let pe = match j.end {
            Some(e) => {
                (e.div_ceil(PERIOD_SECS)).clamp(first_period, first_period + n_periods)
                    - first_period
            }
            None => n_periods,
        };
        if ps < pe {
            diff[ps as usize] += v;
            diff[pe as usize] -= v;
        }
    }
    let mut out = Vec::with_capacity(n_periods as usize);
    let mut acc = 0.0;
    for d in diff.iter().take(n_periods as usize) {
        acc += d;
        out.push(acc);
    }
    out
}

fn main() {
    let world = CloudWorld::new(WorldConfig::azure_like(0.5), 11);
    let history = world.generate(TRAIN_DAYS as u32);
    let window = ObservationWindow::new(0, TRAIN_DAYS * 86_400);
    let train = window.apply_unshifted(&history);
    println!("training capacity model on {} jobs", train.len());

    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(TRAIN_DAYS as usize);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, window.censor_at);
    let generator = TraceGenerator {
        arrivals: BatchArrivalModel::fit(
            &train,
            window.end,
            ArrivalTarget::Batches,
            temporal,
            ElasticNet::ridge(1.0),
            DohStrategy::paper_default(),
        )
        .expect("arrival model"),
        fallback: Some(GenFallback::fit(&stream, &space)),
        flavors: FlavorModel::fit(
            &stream,
            space.clone(),
            TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
        ),
        lifetimes: LifetimeModel::fit(
            &stream,
            space,
            TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
        ),
        config: GeneratorConfig::default(),
    };

    // Sample futures and build the demand distribution.
    let first = TRAIN_DAYS * 288;
    let n = FUTURE_DAYS * 288;
    println!("sampling {SAMPLES} future scenarios over {FUTURE_DAYS} days…");
    let series: Vec<Vec<f64>> = (0..SAMPLES)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(1000 + i as u64);
            let t = generator.generate(first, n, world.catalog(), &mut rng);
            cpu_series(&t, first, n)
        })
        .collect();
    let band = PredictionBand::from_samples(&series, 0.05, 0.95);
    print!(
        "{}",
        render_band_chart(
            &band.median.clone(),
            &band.lo,
            &band.median,
            &band.hi,
            96,
            10,
            "projected new-VM CPU demand (median drawn as actual)"
        )
    );

    // Provisioning question: capacity covering 95% of peak-demand scenarios.
    let peaks: Vec<f64> = series
        .iter()
        .map(|s| s.iter().cloned().fold(0.0, f64::max))
        .collect();
    let p95 = quantile(&peaks, 0.95);
    let p50 = quantile(&peaks, 0.50);
    println!("peak new-VM demand: median {p50:.0} vCPUs, 95th percentile {p95:.0} vCPUs");
    println!("provision >= {p95:.0} vCPUs (plus carryover) to cover 95% of scenarios");
}
