//! Quickstart: train the three-stage generator on a synthetic cloud trace
//! and sample a day of future workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use obsv::{MemoryRecorder, RunReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::TemporalFeaturesSpec;
use trace::stats::flavor_histogram;
use trace::ObservationWindow;

fn main() {
    // 1. A synthetic cloud stands in for a real provider trace. Any trace
    //    with (start, end, flavor, user) records works the same way.
    let world = CloudWorld::new(WorldConfig::azure_like(0.5), 7);
    let history = world.generate(6);
    let train_window = ObservationWindow::new(0, 5 * 86_400);
    let train = train_window.apply_unshifted(&history);
    println!("training on {} jobs over 5 days", train.len());

    // 2. Shared feature space: the paper's 47 lifetime bins plus one-hot
    //    hour-of-day/day-of-week and survival-encoded day-of-history.
    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(5);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, train_window.censor_at);

    // 3. Fit the three stages, recording per-epoch telemetry (swap in a
    //    JsonlRecorder to stream the same events to a file instead).
    let telemetry = MemoryRecorder::new();
    let arrivals = BatchArrivalModel::fit(
        &train,
        train_window.end,
        ArrivalTarget::Batches,
        temporal,
        ElasticNet::ridge(1.0),
        DohStrategy::paper_default(),
    )
    .expect("arrival model");
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let fallback = GenFallback::fit(&stream, &space);
    let flavors = FlavorModel::fit_recorded(&stream, space.clone(), cfg, &telemetry);
    let lifetimes = LifetimeModel::fit_recorded(&stream, space, cfg, &telemetry);
    let generator = TraceGenerator {
        arrivals,
        fallback: Some(fallback),
        flavors,
        lifetimes,
        config: GeneratorConfig::default(),
    };

    // 4. Sample one day of future workload (periods are 5 minutes).
    let mut rng = StdRng::seed_from_u64(42);
    let first_period = 6 * 288; // the day after the history ends
    let generated =
        generator.generate_recorded(first_period, 288, world.catalog(), &mut rng, &telemetry);
    println!("generated {} jobs for the next day", generated.len());

    // 5. Inspect the output.
    let hist = flavor_histogram(&generated);
    let top = hist
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .expect("non-empty");
    println!(
        "most requested flavor: {} ({} requests)",
        generated.catalog.get(trace::FlavorId(top.0 as u16)).name,
        top.1
    );
    let mean_life: f64 = generated
        .jobs
        .iter()
        .map(|j| (j.end.expect("generated jobs have ends") - j.start) as f64)
        .sum::<f64>()
        / generated.len().max(1) as f64;
    println!("mean sampled lifetime: {:.1} hours", mean_life / 3600.0);

    // 6. The recorded events aggregate into a run report: per-stage loss
    //    trajectory, gradient norms, epoch wall-time quantiles, and
    //    generation throughput.
    println!("\n{}", RunReport::from_events(&telemetry.events()));
}
