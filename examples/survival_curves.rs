//! Survival-analysis tour: fit Kaplan–Meier estimators on a censored VM
//! trace, compare censoring policies, and reconstruct continuous survival
//! curves with CDI vs stepped interpolation (paper §2.3, §5.3).
//!
//! ```sh
//! cargo run --release --example survival_curves
//! ```

use survival::interp::ContinuousSurvival;
use survival::{
    CensoringPolicy, ContinuousKm, Interpolation, KaplanMeier, LifetimeBins, Observation,
};
use synth::{CloudWorld, WorldConfig};
use trace::ObservationWindow;

fn main() {
    // A censored trace: 4 days observed out of a world where some VMs live
    // for weeks.
    let world = CloudWorld::new(WorldConfig::azure_like(0.6), 31);
    let history = world.generate(8);
    let window = ObservationWindow::new(0, 4 * 86_400);
    let observed = window.apply(&history);
    println!(
        "{} VMs observed, {:.1}% censored at the 4-day horizon",
        observed.len(),
        observed.censored_fraction() * 100.0
    );

    let bins = LifetimeBins::paper_47();
    let obs: Vec<Observation> = observed
        .jobs
        .iter()
        .map(|j| Observation {
            bin: bins.bin_of(j.observed_duration(window.censor_at) as f64),
            censored: j.is_censored(),
        })
        .collect();

    println!("\nmedian-survival estimate under each censoring policy:");
    for policy in [
        CensoringPolicy::CensoringAware,
        CensoringPolicy::DropCensored,
        CensoringPolicy::CensoredAsTerminated,
    ] {
        let km = KaplanMeier::fit(&bins, &obs, policy, 0.0).expect("bins in range");
        let surv = km.survival();
        let median_bin = surv.iter().position(|&s| s < 0.5).unwrap_or(surv.len() - 1);
        println!(
            "  {policy:?}: median lifetime in bin {median_bin} (~{:.1} h)",
            bins.midpoint(median_bin, 40.0 * 86_400.0) / 3600.0
        );
    }

    // Continuous reconstruction: evaluate S(t) at a few horizons.
    let km = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoringAware, 0.0)
        .expect("bins in range");
    let cdi =
        ContinuousSurvival::from_hazard(&bins, km.hazard(), Interpolation::Cdi, 40.0 * 86_400.0);
    let stepped = ContinuousSurvival::from_hazard(
        &bins,
        km.hazard(),
        Interpolation::Stepped,
        40.0 * 86_400.0,
    );
    let exact = ContinuousKm::fit(
        &observed
            .jobs
            .iter()
            .map(|j| {
                (
                    j.observed_duration(window.censor_at) as f64,
                    j.is_censored(),
                )
            })
            .collect::<Vec<_>>(),
    )
    .expect("durations are finite");
    println!("\nP(lifetime > t):   CDI   Stepped  Continuous-KM");
    for hours in [0.25, 1.0, 6.0, 24.0, 72.0] {
        let t = hours * 3600.0;
        println!(
            "  t = {hours:>5.2} h   {:>6.3}  {:>6.3}   {:>6.3}",
            cdi.eval(t),
            stepped.eval(t),
            exact.eval(t)
        );
    }
    println!("\nCDI interpolates within bins; Stepped holds until each bin boundary;");
    println!("the continuous product-limit estimator is the bin-free reference.");
}
