//! Scheduler stress-testing (paper §6.2): generate a 10× workload by turning
//! the generator's arrival-scale knob, then compare placement algorithms by
//! first-failure allocation ratio on baseline vs scaled traffic.
//!
//! ```sh
//! cargo run --release --example scheduler_stress_test
//! ```

use cloudgen::generator::spread_intra_period;
use cloudgen::{FeatureSpace, TokenStream};
use cloudgen::{NaiveGenerator, SimpleBatchGenerator};
use glm::DohStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{pack_trace, PackingConfig, PlacementAlgorithm, SchedulingTuple};
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::TemporalFeaturesSpec;
use trace::ObservationWindow;

fn main() {
    // Train the (non-neural, fast) SimpleBatch generator — the point here is
    // the scaling knob and the packing harness; swap in TraceGenerator for
    // the full LSTM pipeline.
    let world = CloudWorld::new(WorldConfig::azure_like(0.5), 23);
    let history = world.generate(5);
    let window = ObservationWindow::new(0, 5 * 86_400);
    let train = window.apply_unshifted(&history);
    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(5);
    let space = FeatureSpace::new(train.catalog.len(), bins, temporal);
    let _ = TokenStream::from_trace(&train, &space.bins, window.censor_at);

    let mut generator = SimpleBatchGenerator::fit(
        &train,
        window.end,
        space.clone(),
        temporal,
        DohStrategy::paper_default(),
    )
    .expect("fit");
    let naive = NaiveGenerator::fit(&train, window.end, space).expect("fit");

    for (label, scale) in [("baseline (1x)", 1.0), ("stress (10x)", 10.0)] {
        generator.scale = scale;
        let mut rng = StdRng::seed_from_u64(99);
        let generated = generator.generate(5 * 288, 288, world.catalog(), &mut rng);
        let spread = spread_intra_period(&generated, &mut rng);
        println!("\n{label}: {} arrivals in one generated day", spread.len());
        println!("{:<20} {:>10} {:>8}", "algorithm", "FFAR", "placed");
        for alg in PlacementAlgorithm::ALL {
            let tuple = SchedulingTuple {
                start_point: 0,
                n_servers: 30,
                cpu_cap: 48.0,
                mem_cap: 128.0,
                algorithm: alg,
            };
            let mut prng = StdRng::seed_from_u64(7);
            let r = pack_trace(&spread, tuple, PackingConfig::default(), &mut prng);
            println!(
                "{:<20} {:>9.1}% {:>8}{}",
                format!("{alg:?}"),
                r.limiting() * 100.0,
                r.placed,
                if r.exhausted { " (all placed)" } else { "" }
            );
        }
    }

    // Sanity: a naive trace of the same volume packs differently — this is
    // why trace realism matters when tuning schedulers.
    let mut rng = StdRng::seed_from_u64(123);
    let naive_trace = naive.generate(5 * 288, 288, world.catalog(), &mut rng);
    println!(
        "\nnaive-generated day for comparison: {} arrivals",
        naive_trace.len()
    );
}
