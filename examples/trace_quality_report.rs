//! Trace quality report: train the generator, sample a synthetic future,
//! and score it against held-out real data with the analysis toolkit —
//! plus a what-if run with scaled batch sizes (paper footnote 5).
//!
//! ```sh
//! cargo run --release --example trace_quality_report
//! ```

use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::analysis::{compare, consecutive_flavor_repeat_rate, summarize};
use trace::period::TemporalFeaturesSpec;
use trace::ObservationWindow;

fn main() {
    // A 6-day world: train on 5 days, hold out the 6th.
    let world = CloudWorld::new(WorldConfig::azure_like(0.5), 77);
    let history = world.generate(6);
    let train_w = ObservationWindow::new(0, 5 * 86_400);
    let test_w = ObservationWindow::new(5 * 86_400, 6 * 86_400);
    let train = train_w.apply_unshifted(&history);
    let held_out = test_w.apply_unshifted(&history);

    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(5);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, train_w.censor_at);
    let cfg = TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    };
    let mut generator = TraceGenerator {
        arrivals: BatchArrivalModel::fit(
            &train,
            train_w.end,
            ArrivalTarget::Batches,
            temporal,
            ElasticNet::ridge(1.0),
            DohStrategy::paper_default(),
        )
        .expect("arrival model"),
        fallback: Some(GenFallback::fit(&stream, &space)),
        flavors: FlavorModel::fit(&stream, space.clone(), cfg),
        lifetimes: LifetimeModel::fit(&stream, space, cfg),
        config: GeneratorConfig::default(),
    };

    let first = 5 * 288;
    let mut rng = StdRng::seed_from_u64(1);
    let generated = generator.generate(first, 288, world.catalog(), &mut rng);

    // Summaries side by side.
    let real = summarize(&held_out, test_w.censor_at);
    let synth = summarize(&generated, u64::MAX / 2);
    println!("{:<28} {:>12} {:>12}", "metric", "held-out", "generated");
    println!("{:<28} {:>12} {:>12}", "jobs", real.jobs, synth.jobs);
    println!("{:<28} {:>12} {:>12}", "batches", real.batches, synth.batches);
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "mean batch size", real.mean_batch_size, synth.mean_batch_size
    );
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "flavor entropy (bits)", real.flavor_entropy_bits, synth.flavor_entropy_bits
    );
    println!(
        "{:<28} {:>11.1}h {:>11.1}h",
        "median lifetime",
        real.lifetime_quantiles.1 / 3600.0,
        synth.lifetime_quantiles.1 / 3600.0
    );
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "flavor momentum",
        consecutive_flavor_repeat_rate(&held_out),
        consecutive_flavor_repeat_rate(&generated)
    );

    let d = compare(&held_out, &generated, 288);
    println!(
        "\ndivergence vs held-out: flavor L1 {:.3}, batch-size L1 {:.3}, volume err {:.1}%",
        d.flavor_l1,
        d.batch_size_l1,
        d.volume_rel_err * 100.0
    );

    // What-if: simulate a world where users submit half-sized batches
    // (footnote 5: scale the EOB probability instead of retraining).
    generator.config.eob_scale = 2.0;
    let whatif = generator.generate(first, 288, world.catalog(), &mut rng);
    let w = summarize(&whatif, u64::MAX / 2);
    println!(
        "\nwhat-if (eob_scale=2): mean batch size {:.2} (was {:.2}), jobs {}",
        w.mean_batch_size, synth.mean_batch_size, w.jobs
    );
}
