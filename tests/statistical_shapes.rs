//! Cross-crate statistical integration tests: the planted correlations in
//! the synthetic world must be recovered by the models — these are
//! miniature versions of the paper's headline claims, cheap enough for CI.

use cloudgen::{
    FeatureSpace, FlavorBaseline, FlavorModel, LifetimeBaseline, LifetimeModel, TokenStream,
    TrainConfig,
};
use survival::{CensoringPolicy, LifetimeBins};
use synth::{CloudWorld, WorldConfig};
use trace::period::TemporalFeaturesSpec;
use trace::ObservationWindow;

fn setup() -> (FeatureSpace, TokenStream, TokenStream) {
    let world = CloudWorld::new(WorldConfig::azure_like(0.6), 7);
    let history = world.generate(5);
    let train_w = ObservationWindow::new(0, 4 * 86_400);
    let test_w = ObservationWindow::new(4 * 86_400, 5 * 86_400);
    let train = train_w.apply_unshifted(&history);
    let test = test_w.apply_unshifted(&history);
    let bins = LifetimeBins::paper_47();
    let space = FeatureSpace::new(
        train.catalog.len(),
        bins.clone(),
        TemporalFeaturesSpec::new(4),
    );
    let train_stream = TokenStream::from_trace(&train, &bins, train_w.censor_at);
    let test_stream = TokenStream::from_trace(&test, &bins, test_w.censor_at);
    (space, train_stream, test_stream)
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 10,
        hidden: 32,
        ..TrainConfig::default()
    }
}

#[test]
fn flavor_lstm_beats_multinomial_on_planted_momentum() {
    let (space, train, test) = setup();
    let lstm = FlavorModel::fit(&train, space.clone(), cfg()).evaluate(&test);
    let multinomial = FlavorBaseline::multinomial(&train, space.n_flavors).evaluate(&test);
    assert!(
        lstm.nll.unwrap() < multinomial.nll.unwrap() * 0.9,
        "LSTM {:?} vs multinomial {:?}",
        lstm.nll,
        multinomial.nll
    );
}

#[test]
fn lifetime_lstm_beats_kaplan_meier_on_planted_correlation() {
    let (space, train, test) = setup();
    let lstm = LifetimeModel::fit(&train, space.clone(), cfg()).evaluate(&test);
    let km = LifetimeBaseline::overall_km(&train, &space, CensoringPolicy::CensoringAware)
        .evaluate(&test, &space);
    assert!(
        lstm.bce.unwrap() < km.bce.unwrap(),
        "LSTM {:?} vs KM {:?}",
        lstm.bce,
        km.bce
    );
    assert!(
        lstm.one_best_err < km.one_best_err,
        "LSTM {} vs KM {}",
        lstm.one_best_err,
        km.one_best_err
    );
}

#[test]
fn per_flavor_km_beats_overall_km_on_planted_flavor_effect() {
    let (space, train, test) = setup();
    let overall = LifetimeBaseline::overall_km(&train, &space, CensoringPolicy::CensoringAware)
        .evaluate(&test, &space);
    let per = LifetimeBaseline::per_flavor_km(&train, &space, CensoringPolicy::CensoringAware)
        .evaluate(&test, &space);
    assert!(
        per.bce.unwrap() <= overall.bce.unwrap() * 1.02,
        "per-flavor {:?} vs overall {:?}",
        per.bce,
        overall.bce
    );
}

#[test]
fn repeat_lifetime_is_strong_when_batches_share_lifetimes() {
    let (space, train, test) = setup();
    let repeat = LifetimeBaseline::repeat_lifetime(&train, &space, CensoringPolicy::CensoringAware)
        .evaluate(&test, &space);
    let overall = LifetimeBaseline::overall_km(&train, &space, CensoringPolicy::CensoringAware)
        .evaluate(&test, &space);
    // The world plants exact within-batch lifetime repetition, so the
    // repeat heuristic must beat any constant predictor on 1-best error.
    assert!(
        repeat.one_best_err < overall.one_best_err,
        "repeat {} vs overall {}",
        repeat.one_best_err,
        overall.one_best_err
    );
}
