//! Cross-crate determinism acceptance tests for the data-parallel runtime:
//! with a fixed seed and a fixed shard layout, every worker count must
//! produce byte-identical training trajectories, checkpoints, and
//! generated traces.

use cloudgen::lifetimes::LifetimeHead;
use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, Parallelism, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use obsv::NullRecorder;
use resilience::{
    fit_flavor_resilient_par, fit_lifetime_resilient_par, FaultPlan, ResilienceConfig,
    ResilienceError,
};
use std::path::PathBuf;
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::period::TemporalFeaturesSpec;
use trace::{ObservationWindow, Trace};

const TRAIN_DAYS: u64 = 3;

struct World {
    world: CloudWorld,
    train: Trace,
    stream: TokenStream,
    space: FeatureSpace,
    temporal: TemporalFeaturesSpec,
    horizon: u64,
}

fn build_world() -> World {
    let world = CloudWorld::new(WorldConfig::azure_like(0.4), 17);
    let history = world.generate(TRAIN_DAYS as u32 + 1);
    let window = ObservationWindow::new(0, TRAIN_DAYS * 86_400);
    let train = window.apply_unshifted(&history);
    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(TRAIN_DAYS as usize);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, window.censor_at);
    let horizon = window.end;
    World {
        world,
        train,
        stream,
        space,
        temporal,
        horizon,
    }
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        hidden: 16,
        ..TrainConfig::tiny()
    }
}

/// Builds a full generator with LSTMs trained under `par`.
fn trained_generator(w: &World, par: Parallelism) -> TraceGenerator {
    let cfg = tiny_cfg();
    TraceGenerator {
        arrivals: BatchArrivalModel::fit(
            &w.train,
            w.horizon,
            ArrivalTarget::Batches,
            w.temporal,
            ElasticNet::ridge(1.0),
            DohStrategy::paper_default(),
        )
        .expect("arrivals"),
        fallback: Some(GenFallback::fit(&w.stream, &w.space)),
        flavors: FlavorModel::fit_par_recorded(
            &w.stream,
            w.space.clone(),
            cfg,
            par,
            &NullRecorder,
        ),
        lifetimes: LifetimeModel::fit_par_recorded(
            &w.stream,
            w.space.clone(),
            cfg,
            LifetimeHead::Hazard,
            par,
            &NullRecorder,
        ),
        config: GeneratorConfig::default(),
    }
}

#[test]
fn training_is_thread_count_invariant() {
    let w = build_world();
    let layout = 2;
    let cfg = tiny_cfg();

    // Resilient fits (no disk) under 1 vs 4 workers: identical loss
    // trajectories, exactly.
    let mut outs = Vec::new();
    for threads in [1, 4] {
        let par = Parallelism::with_threads(threads, layout);
        let fl = fit_flavor_resilient_par(
            &w.stream,
            &w.space,
            cfg,
            par,
            &ResilienceConfig::default(),
            &mut FaultPlan::none(),
            &NullRecorder,
        )
        .expect("flavor fit");
        let lt = fit_lifetime_resilient_par(
            &w.stream,
            &w.space,
            cfg,
            par,
            &ResilienceConfig::default(),
            &mut FaultPlan::none(),
            &NullRecorder,
        )
        .expect("lifetime fit");
        outs.push((fl.losses, lt.losses));
    }
    assert_eq!(
        outs[0], outs[1],
        "loss trajectories must be bit-identical across worker counts"
    );

    // And the trained weights must generate byte-identical traces.
    let g1 = trained_generator(&w, Parallelism::with_threads(1, layout));
    let g4 = trained_generator(&w, Parallelism::with_threads(4, layout));
    let first = TRAIN_DAYS * 288;
    let t1 = g1.generate_par(first, 2 * 288, w.world.catalog(), 5, 1);
    let t4 = g4.generate_par(first, 2 * 288, w.world.catalog(), 5, 1);
    assert_eq!(t1, t4, "models trained under different worker counts differ");
    assert!(!t1.is_empty());
}

#[test]
fn generation_is_thread_count_invariant() {
    let w = build_world();
    let g = trained_generator(&w, Parallelism::with_threads(2, 2));
    let first = TRAIN_DAYS * 288;
    // Multi-day horizon so several one-day shards exist; 1, 4, and 7
    // workers must agree byte-for-byte, and so must repeated runs.
    let reference = g.generate_par(first, 600, w.world.catalog(), 23, 1);
    assert!(!reference.is_empty());
    for threads in [4, 7] {
        let t = g.generate_par(first, 600, w.world.catalog(), 23, threads);
        assert_eq!(reference, t, "threads={threads} diverged");
    }
    let again = g.generate_par(first, 600, w.world.catalog(), 23, 4);
    assert_eq!(reference, again, "repeat run diverged");
}

/// A server draining under concurrent load must return traces that are
/// byte-identical to the CLI generation path for the same checkpoint,
/// seed, and parameters: admission control, deadlines, and cancellation
/// checks consume no randomness, so load and drain cannot perturb output.
#[test]
fn server_drain_under_load_is_byte_identical_to_cli_path() {
    use serve::{fetch, ServeConfig, ServeModel, Server};

    let w = build_world();
    let g = trained_generator(&w, Parallelism::with_threads(2, 2));

    // Reference bytes exactly as `cloudgen generate` produces them: same
    // first_period derivation, same CSV serialization.
    let first = w.horizon.div_ceil(trace::period::PERIOD_SECS);
    let (periods, seed, threads) = (288u64, 5u64, 2usize);
    let reference = {
        let t = g
            .try_generate_par_recorded(
                first,
                periods,
                w.world.catalog(),
                seed,
                threads,
                &NullRecorder,
            )
            .expect("reference generation");
        let mut bytes = Vec::new();
        trace::io::write_csv(&t, &mut bytes).expect("csv");
        bytes
    };

    let model = ServeModel {
        generator: g,
        catalog: w.world.catalog().clone(),
        horizon: w.horizon,
    };
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_cap: 16,
        ..ServeConfig::default()
    };
    let handle =
        Server::start(cfg, model, resilience::RequestFaultPlan::none()).expect("server start");
    let addr = handle.addr().to_string();
    let path = format!("/generate?periods={periods}&seed={seed}&threads={threads}");

    // Concurrent clients; drain fires while they are still in flight.
    let mut clients = Vec::new();
    for i in 0..6 {
        let addr = addr.clone();
        let path = path.clone();
        clients.push(std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                if let Ok(resp) = fetch(&addr, &path, 30_000) {
                    got.push((resp.status, resp.error_kind(), resp.body));
                }
            }
            let _ = i;
            got
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    handle.drain();
    let mut completed = 0;
    for c in clients {
        for (status, kind, body) in c.join().expect("client") {
            match status {
                200 => {
                    completed += 1;
                    assert_eq!(
                        body, reference,
                        "a trace served under drain/load diverged from the CLI bytes"
                    );
                }
                503 => assert_eq!(kind.as_deref(), Some("Draining"), "untyped rejection"),
                429 => assert_eq!(kind.as_deref(), Some("Overloaded"), "untyped shed"),
                other => panic!("unexpected status {other}"),
            }
        }
    }
    assert!(completed > 0, "no request completed before the drain");
    let snap = handle.join();
    assert_eq!(
        snap.counter("serve.completed"),
        completed,
        "server counted different completions than clients observed"
    );
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "cloudgen-determinism-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn midrun_checkpoint_resume_matches_straight_run_across_thread_counts() {
    let w = build_world();
    let layout = 2;
    let cfg = tiny_cfg();

    // Reference: a straight single-worker run, checkpointing to disk.
    let dir_a = tmp_dir("straight");
    let rcfg_a = ResilienceConfig {
        checkpoint_dir: Some(dir_a.clone()),
        ..ResilienceConfig::default()
    };
    let straight = fit_flavor_resilient_par(
        &w.stream,
        &w.space,
        cfg,
        Parallelism::with_threads(1, layout),
        &rcfg_a,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .expect("straight run");

    // Interrupted: 4 workers, killed mid-epoch-2, resumed with 4 workers.
    let dir_b = tmp_dir("resumed");
    let rcfg_b = ResilienceConfig {
        checkpoint_dir: Some(dir_b.clone()),
        ..ResilienceConfig::default()
    };
    let par4 = Parallelism::with_threads(4, layout);
    let mut plan = FaultPlan::none().kill("flavor", 2, 1);
    let err = fit_flavor_resilient_par(
        &w.stream,
        &w.space,
        cfg,
        par4,
        &rcfg_b,
        &mut plan,
        &NullRecorder,
    )
    .expect_err("the injected kill must stop the run");
    assert!(matches!(err, ResilienceError::Killed { .. }), "{err}");

    let resumed = fit_flavor_resilient_par(
        &w.stream,
        &w.space,
        cfg,
        par4,
        &rcfg_b,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .expect("resume");
    assert_eq!(resumed.resumed_from, Some(2));
    assert_eq!(
        straight.losses, resumed.losses,
        "kill/resume at a different worker count changed the trajectory"
    );
    assert_eq!(
        serde_json::to_string(&straight.model).unwrap(),
        serde_json::to_string(&resumed.model).unwrap(),
        "final weights must be byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
