//! Cross-crate integration tests: the full pipeline from synthetic world to
//! generated trace, exercised exactly the way the reproduction binaries and
//! a downstream user would.

use cloudgen::{
    ArrivalTarget, BatchArrivalModel, FeatureSpace, FlavorModel, GenFallback, GeneratorConfig,
    LifetimeModel, NaiveGenerator, SimpleBatchGenerator, TokenStream, TraceGenerator, TrainConfig,
};
use glm::{DohStrategy, ElasticNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{pack_trace, reuse_distance_histogram, PackingConfig, SchedulingTuple};
use survival::LifetimeBins;
use synth::{CloudWorld, WorldConfig};
use trace::batch::organize_periods;
use trace::period::TemporalFeaturesSpec;
use trace::{ObservationWindow, Trace};

const TRAIN_DAYS: u64 = 4;

struct Pipeline {
    world: CloudWorld,
    train: Trace,
    space: FeatureSpace,
    generator: TraceGenerator,
}

fn build_pipeline() -> Pipeline {
    let world = CloudWorld::new(WorldConfig::azure_like(0.5), 99);
    let history = world.generate(TRAIN_DAYS as u32 + 1);
    let window = ObservationWindow::new(0, TRAIN_DAYS * 86_400);
    let train = window.apply_unshifted(&history);
    let bins = LifetimeBins::paper_47();
    let temporal = TemporalFeaturesSpec::new(TRAIN_DAYS as usize);
    let space = FeatureSpace::new(train.catalog.len(), bins.clone(), temporal);
    let stream = TokenStream::from_trace(&train, &bins, window.censor_at);
    let cfg = TrainConfig {
        epochs: 40,
        hidden: 32,
        ..TrainConfig::default()
    };
    let generator = TraceGenerator {
        arrivals: BatchArrivalModel::fit(
            &train,
            window.end,
            ArrivalTarget::Batches,
            temporal,
            ElasticNet::ridge(1.0),
            DohStrategy::paper_default(),
        )
        .expect("arrivals"),
        fallback: Some(GenFallback::fit(&stream, &space)),
        flavors: FlavorModel::fit(&stream, space.clone(), cfg),
        lifetimes: LifetimeModel::fit(&stream, space.clone(), cfg),
        config: GeneratorConfig::default(),
    };
    Pipeline {
        world,
        train,
        space,
        generator,
    }
}

#[test]
fn full_pipeline_generates_schedulable_traces() {
    let p = build_pipeline();
    let first = TRAIN_DAYS * 288;
    let mut rng = StdRng::seed_from_u64(1);
    let generated = p.generator.generate(first, 96, p.world.catalog(), &mut rng);
    assert!(!generated.is_empty(), "generated nothing");

    // Generated traces must be structurally valid workload: batched,
    // flavor-consistent, positive lifetimes.
    let periods = organize_periods(&generated);
    assert!(!periods.is_empty());
    for job in &generated.jobs {
        assert!(job.end.expect("generated jobs have ends") > job.start);
        assert!((job.flavor.0 as usize) < p.space.n_flavors);
    }

    // And they must be consumable by the scheduler substrate end to end.
    let tuple = SchedulingTuple {
        start_point: 0,
        n_servers: 25,
        cpu_cap: 48.0,
        mem_cap: 128.0,
        algorithm: sched::PlacementAlgorithm::DeltaPerpDistance,
    };
    let result = pack_trace(&generated, tuple, PackingConfig::default(), &mut rng);
    assert!(result.placed > 0, "nothing placed");
    let hist = reuse_distance_histogram(&generated);
    assert!(hist.total > 0, "no reuse distances scored");
}

#[test]
fn generated_traces_preserve_batch_structure() {
    let p = build_pipeline();
    let first = TRAIN_DAYS * 288;
    let mut rng = StdRng::seed_from_u64(2);
    let generated = p
        .generator
        .generate(first, 192, p.world.catalog(), &mut rng);
    let periods = organize_periods(&generated);

    // Some batches should hold multiple jobs…
    let multi: usize = periods
        .iter()
        .flat_map(|p| &p.batches)
        .filter(|b| b.len() >= 2)
        .count();
    assert!(multi > 0, "no multi-job batches generated");

    // …and within-batch flavor repetition should dominate (the training
    // world plants ~0.9 repeat probability; the model must reproduce it
    // qualitatively, not as iid flavors).
    let mut same = 0usize;
    let mut total = 0usize;
    for per in &periods {
        for b in &per.batches {
            for w in b.jobs.windows(2) {
                total += 1;
                if generated.jobs[w[0]].flavor == generated.jobs[w[1]].flavor {
                    same += 1;
                }
            }
        }
    }
    if total >= 20 {
        let rate = same as f64 / total as f64;
        assert!(rate > 0.4, "within-batch repeat rate too low: {rate}");
    }
}

#[test]
fn all_three_generators_cover_the_same_interface() {
    let p = build_pipeline();
    let naive = NaiveGenerator::fit(&p.train, TRAIN_DAYS * 86_400, p.space.clone()).unwrap();
    let simple = SimpleBatchGenerator::fit(
        &p.train,
        TRAIN_DAYS * 86_400,
        p.space.clone(),
        p.space.temporal,
        DohStrategy::paper_default(),
    )
    .unwrap();
    let first = TRAIN_DAYS * 288;
    let mut rng = StdRng::seed_from_u64(3);
    for t in [
        naive.generate(first, 48, p.world.catalog(), &mut rng),
        simple.generate(first, 48, p.world.catalog(), &mut rng),
        p.generator.generate(first, 48, p.world.catalog(), &mut rng),
    ] {
        for job in &t.jobs {
            assert!(job.start >= first * 300);
            assert!(job.end.unwrap_or(u64::MAX) > job.start);
        }
    }
}

#[test]
fn trace_roundtrips_through_csv() {
    let p = build_pipeline();
    let mut rng = StdRng::seed_from_u64(4);
    let generated = p
        .generator
        .generate(TRAIN_DAYS * 288, 24, p.world.catalog(), &mut rng);
    let mut buf = Vec::new();
    trace::io::write_csv(&generated, &mut buf).unwrap();
    let back = trace::io::read_csv(buf.as_slice(), generated.catalog.clone()).unwrap();
    assert_eq!(generated, back);
}

#[test]
fn generator_roundtrips_through_json() {
    let p = build_pipeline();
    let json = serde_json::to_string(&p.generator).expect("serialize");
    let restored: TraceGenerator = serde_json::from_str(&json).expect("deserialize");
    let first = TRAIN_DAYS * 288;
    let a = p
        .generator
        .generate(first, 24, p.world.catalog(), &mut StdRng::seed_from_u64(5));
    let b = restored.generate(first, 24, p.world.catalog(), &mut StdRng::seed_from_u64(5));
    assert_eq!(a, b, "restored generator diverged");
}
