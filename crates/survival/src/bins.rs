//! Lifetime bin schemes.
//!
//! Time is measured in **seconds** throughout the workspace. A bin scheme is
//! a sorted list of boundaries `b_1 < b_2 < … < b_{J-1}`; bin `j` (0-based)
//! covers `[b_j, b_{j+1})` with `b_0 = 0`, and the final bin `J-1` is open
//! (`[b_{J-1}, ∞)`).

use serde::{Deserialize, Serialize};

/// Seconds per minute.
pub const MINUTE: f64 = 60.0;
/// Seconds per hour.
pub const HOUR: f64 = 3600.0;
/// Seconds per day.
pub const DAY: f64 = 86_400.0;

/// A discrete lifetime-bin scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeBins {
    // Upper boundaries of every bin except the final open one; sorted,
    // strictly increasing, all positive.
    uppers: Vec<f64>,
}

impl LifetimeBins {
    /// Creates a scheme from the upper boundaries of all closed bins.
    ///
    /// With `uppers = [a, b, c]` the bins are `[0,a), [a,b), [b,c), [c,∞)` —
    /// i.e. `uppers.len() + 1` bins in total.
    ///
    /// # Panics
    ///
    /// Panics if `uppers` is empty, non-increasing, or contains
    /// non-positive/non-finite values.
    pub fn from_uppers(uppers: Vec<f64>) -> Self {
        assert!(!uppers.is_empty(), "need at least one boundary");
        assert!(
            uppers[0] > 0.0 && uppers[0].is_finite(),
            "boundaries must be positive/finite"
        );
        for w in uppers.windows(2) {
            assert!(
                w[0] < w[1] && w[1].is_finite(),
                "boundaries must be strictly increasing"
            );
        }
        Self { uppers }
    }

    /// The paper's 47-bin scheme (§2.3.1).
    ///
    /// The paper describes "5-minute intervals up to 1-hour, 1-hour intervals
    /// up to 10-hours, daily intervals up to 10 days, and a final bin
    /// boundary for greater than 20 days", totalling 47 bins. The exact
    /// intermediate boundaries are not published; this reading fills the gaps
    /// so the counts come out to exactly 47:
    ///
    /// - 12 five-minute bins: `[0, 1h)`
    /// - 9 hourly bins: `[1h, 10h)`
    /// - 14 hourly bins: `[10h, 24h)`
    /// - 9 daily bins: `[1d, 10d)`
    /// - 2 five-day bins: `[10d, 20d)`
    /// - 1 open bin: `[20d, ∞)`
    ///
    /// # Examples
    ///
    /// ```
    /// let bins = survival::LifetimeBins::paper_47();
    /// assert_eq!(bins.len(), 47);
    /// assert_eq!(bins.bin_of(90.0), 0);        // 90 s -> first 5-minute bin
    /// assert_eq!(bins.bin_of(2.5 * 3600.0), 13); // 2.5 h -> an hourly bin
    /// assert_eq!(bins.bin_of(30.0 * 86_400.0), 46); // 30 d -> the open bin
    /// ```
    pub fn paper_47() -> Self {
        let mut uppers = Vec::with_capacity(46);
        for m in 1..=12 {
            uppers.push(m as f64 * 5.0 * MINUTE);
        }
        for h in 2..=24 {
            uppers.push(h as f64 * HOUR);
        }
        for d in 2..=10 {
            uppers.push(d as f64 * DAY);
        }
        uppers.push(15.0 * DAY);
        uppers.push(20.0 * DAY);
        let bins = Self::from_uppers(uppers);
        debug_assert_eq!(bins.len(), 47);
        bins
    }

    /// A fine 495-bin scheme for the Table 4 discretization ablation.
    ///
    /// Log-spaced boundaries from 1 minute to 20 days. Bin count (including
    /// the final open bin) is exactly 495.
    pub fn fine_495() -> Self {
        Self::log_spaced(495, MINUTE, 20.0 * DAY)
    }

    /// `n`-bin scheme with log-spaced boundaries from `first_upper` to
    /// `last_upper` (the final bin `[last_upper, ∞)` is open).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the bounds are not positive and increasing.
    pub fn log_spaced(n: usize, first_upper: f64, last_upper: f64) -> Self {
        assert!(n >= 2, "need at least two bins");
        assert!(first_upper > 0.0 && last_upper > first_upper, "bad bounds");
        let k = n - 1; // number of closed-bin boundaries
        let lf = first_upper.ln();
        let ll = last_upper.ln();
        let uppers: Vec<f64> = (0..k)
            .map(|i| {
                let frac = if k == 1 {
                    0.0
                } else {
                    i as f64 / (k - 1) as f64
                };
                (lf + frac * (ll - lf)).exp()
            })
            .collect();
        Self::from_uppers(uppers)
    }

    /// Quantile-based boundaries (Kvamme & Borgan's proposal): places
    /// `n - 1` boundaries at evenly-spaced quantiles of observed durations.
    ///
    /// Duplicate quantiles (heavy ties) are collapsed, so the resulting
    /// scheme may have fewer than `n` bins.
    ///
    /// # Panics
    ///
    /// Panics if `durations` is empty or `n < 2`.
    pub fn from_quantiles(durations: &[f64], n: usize) -> Self {
        assert!(!durations.is_empty(), "no durations");
        assert!(n >= 2, "need at least two bins");
        let mut sorted: Vec<f64> = durations.iter().cloned().filter(|d| *d > 0.0).collect();
        assert!(!sorted.is_empty(), "no positive durations");
        sorted.sort_by(f64::total_cmp);
        let mut uppers = Vec::new();
        for i in 1..n {
            let q = i as f64 / n as f64;
            // lint:allow(lossy-cast): q in (0, 1) and len >= 1 keep the product finite and in range
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            let v = sorted[idx];
            if uppers.last().map_or(true, |&last| v > last) {
                uppers.push(v);
            }
        }
        if uppers.is_empty() {
            // lint:allow(no-panic): sorted is non-empty, asserted at function entry
            uppers.push(*sorted.last().expect("non-empty by assertion"));
        }
        Self::from_uppers(uppers)
    }

    /// Total number of bins, including the final open bin.
    pub fn len(&self) -> usize {
        self.uppers.len() + 1
    }

    /// Always false (a scheme has at least two bins).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the final (open) bin.
    pub fn final_bin(&self) -> usize {
        self.uppers.len()
    }

    /// Maps a duration in seconds to its bin index.
    ///
    /// Negative durations are clamped into bin 0.
    pub fn bin_of(&self, duration: f64) -> usize {
        if duration < self.uppers[0] {
            return 0;
        }
        // partition_point returns count of uppers <= duration.
        self.uppers.partition_point(|&u| u <= duration)
    }

    /// Lower boundary of bin `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    pub fn lower(&self, j: usize) -> f64 {
        assert!(j < self.len(), "bin {j} out of range");
        if j == 0 {
            0.0
        } else {
            self.uppers[j - 1]
        }
    }

    /// Upper boundary of bin `j` (`None` for the final open bin).
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    pub fn upper(&self, j: usize) -> Option<f64> {
        assert!(j < self.len(), "bin {j} out of range");
        self.uppers.get(j).copied()
    }

    /// Width of bin `j` (`None` for the final open bin).
    pub fn width(&self, j: usize) -> Option<f64> {
        self.upper(j).map(|u| u - self.lower(j))
    }

    /// Midpoint of bin `j`; the final open bin uses `tail_horizon` as its
    /// effective upper edge.
    pub fn midpoint(&self, j: usize, tail_horizon: f64) -> f64 {
        let lo = self.lower(j);
        let hi = self.upper(j).unwrap_or(tail_horizon.max(lo));
        0.5 * (lo + hi)
    }

    /// All closed-bin upper boundaries.
    pub fn uppers(&self) -> &[f64] {
        &self.uppers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scheme_has_47_bins() {
        let b = LifetimeBins::paper_47();
        assert_eq!(b.len(), 47);
        assert_eq!(b.final_bin(), 46);
        assert_eq!(b.lower(46), 20.0 * DAY);
        assert_eq!(b.upper(46), None);
    }

    #[test]
    fn paper_scheme_boundary_structure() {
        let b = LifetimeBins::paper_47();
        // First 12 bins are 5 minutes wide.
        for j in 0..12 {
            assert_eq!(b.width(j), Some(5.0 * MINUTE), "bin {j}");
        }
        // Bins 12..35 are hourly.
        for j in 12..35 {
            assert_eq!(b.width(j), Some(HOUR), "bin {j}");
        }
        // Bins 35..44 are daily.
        for j in 35..44 {
            assert_eq!(b.width(j), Some(DAY), "bin {j}");
        }
        // Bins 44, 45 are 5 days wide.
        assert_eq!(b.width(44), Some(5.0 * DAY));
        assert_eq!(b.width(45), Some(5.0 * DAY));
    }

    #[test]
    fn bin_of_maps_boundaries_half_open() {
        let b = LifetimeBins::paper_47();
        assert_eq!(b.bin_of(0.0), 0);
        assert_eq!(b.bin_of(299.9), 0);
        assert_eq!(b.bin_of(300.0), 1); // [5min, 10min)
        assert_eq!(b.bin_of(HOUR - 0.1), 11);
        assert_eq!(b.bin_of(HOUR), 12);
        assert_eq!(b.bin_of(25.0 * HOUR), 35); // second day
        assert_eq!(b.bin_of(20.0 * DAY), 46);
        assert_eq!(b.bin_of(400.0 * DAY), 46);
        assert_eq!(b.bin_of(-5.0), 0);
    }

    #[test]
    fn bin_of_round_trips_with_bounds() {
        let b = LifetimeBins::paper_47();
        for j in 0..b.len() {
            let lo = b.lower(j);
            assert_eq!(b.bin_of(lo), j, "lower bound of bin {j}");
            if let Some(hi) = b.upper(j) {
                assert_eq!(b.bin_of(hi - 1e-6), j, "just below upper of bin {j}");
            }
        }
    }

    #[test]
    fn fine_495_has_495_bins() {
        let b = LifetimeBins::fine_495();
        assert_eq!(b.len(), 495);
        assert!(b.uppers().windows(2).all(|w| w[0] < w[1]));
        assert!((b.uppers()[0] - MINUTE).abs() < 1e-9);
        assert!((b.uppers().last().unwrap() - 20.0 * DAY).abs() < 1e-6);
    }

    #[test]
    fn quantile_bins_follow_data() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64 * 60.0).collect();
        let b = LifetimeBins::from_quantiles(&data, 4);
        assert_eq!(b.len(), 4);
        // Roughly quartiles of the data.
        assert!(b.uppers()[0] > 20.0 * 60.0 && b.uppers()[0] < 30.0 * 60.0);
        assert!(b.uppers()[2] > 70.0 * 60.0 && b.uppers()[2] < 80.0 * 60.0);
    }

    #[test]
    fn quantile_bins_collapse_ties() {
        let data = vec![10.0; 50];
        let b = LifetimeBins::from_quantiles(&data, 5);
        assert_eq!(b.len(), 2); // all quantiles tie at 10.0
    }

    #[test]
    fn midpoint_handles_open_bin() {
        let b = LifetimeBins::from_uppers(vec![10.0, 20.0]);
        assert_eq!(b.midpoint(0, 100.0), 5.0);
        assert_eq!(b.midpoint(2, 100.0), 60.0); // (20 + 100) / 2
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_boundaries() {
        let _ = LifetimeBins::from_uppers(vec![10.0, 5.0]);
    }
}
