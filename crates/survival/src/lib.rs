//! Discrete-time survival-analysis substrate.
//!
//! The paper's lifetime model (§2.3) works on a discretized time axis: job
//! lifetimes fall into bins, and models parameterize the **hazard function**
//! over those bins. This crate provides:
//!
//! - [`LifetimeBins`]: bin schemes, including the paper's 47-bin layout
//!   (5-minute bins to 1 h, hourly to 10 h, then coarser out to an open
//!   final bin starting at 20 days) and log-spaced alternatives for the
//!   Table 4 discretization ablation.
//! - [`funcs`]: conversions between the hazard, PMF, and survival functions,
//!   and hazard-chain sampling.
//! - [`KaplanMeier`]: the censoring-aware discrete Kaplan–Meier estimator,
//!   plus the two ablation variants discussed in §5.3 (drop-censored and
//!   censored-as-terminated).
//! - [`interp`]: continuous-density interpolation (CDI) and stepped
//!   reconstruction of a continuous survival function from discrete bins.
//! - [`metrics`]: the continuous-domain Survival-MSE evaluation of §5.3.

#![forbid(unsafe_code)]

pub mod bins;
pub mod funcs;
pub mod interp;
pub mod km;
pub mod km_continuous;
pub mod metrics;

pub use bins::LifetimeBins;
pub use funcs::{hazard_to_pmf, hazard_to_survival, pmf_to_hazard, sample_hazard_chain};
pub use interp::Interpolation;
pub use km::{CensoringPolicy, KaplanMeier, KmError, Observation};
pub use km_continuous::ContinuousKm;
