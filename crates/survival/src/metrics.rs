//! Continuous-domain evaluation of survival predictions (Survival-MSE).
//!
//! Following Kvamme & Borgan (and the paper's Table 4), a predicted survival
//! curve `S(t)` for a job with true lifetime `t*` is scored against the
//! job's *true* survival function — the indicator `1{t < t*}` — by the mean
//! squared error over a grid of evaluation times. For right-censored jobs
//! only times up to the censoring point are scored (beyond it the true
//! status is unknown).

use crate::interp::ContinuousSurvival;

/// A per-job ground truth for continuous evaluation.
#[derive(Debug, Clone, Copy)]
pub struct TrueLifetime {
    /// Observed duration in seconds (event time, or censoring time).
    pub duration: f64,
    /// Whether the duration is a censoring time rather than an event.
    pub censored: bool,
}

/// Mean squared error between a predicted survival curve and the true
/// indicator survival of one job, over the provided evaluation grid.
///
/// Returns `(sum_squared_error, points_scored)`; censored jobs are scored
/// only at grid points `t <= duration`. Returns `(0.0, 0)` if no grid point
/// qualifies.
pub fn survival_mse_one(
    pred: &ContinuousSurvival,
    truth: TrueLifetime,
    grid: &[f64],
) -> (f64, usize) {
    let mut sse = 0.0;
    let mut n = 0usize;
    for &t in grid {
        if truth.censored && t > truth.duration {
            continue;
        }
        let true_s = if t < truth.duration { 1.0 } else { 0.0 };
        let d = pred.eval(t) - true_s;
        sse += d * d;
        n += 1;
    }
    (sse, n)
}

/// Aggregates [`survival_mse_one`] over many jobs, returning the mean squared
/// error across all scored grid points.
///
/// # Panics
///
/// Panics if `preds.len() != truths.len()`.
pub fn survival_mse(preds: &[ContinuousSurvival], truths: &[TrueLifetime], grid: &[f64]) -> f64 {
    assert_eq!(preds.len(), truths.len(), "prediction/truth count mismatch");
    let mut sse = 0.0;
    let mut n = 0usize;
    for (p, &t) in preds.iter().zip(truths) {
        let (s, c) = survival_mse_one(p, t, grid);
        sse += s;
        n += c;
    }
    if n == 0 {
        0.0
    } else {
        sse / n as f64
    }
}

/// Builds an evaluation grid: `points` times spaced evenly on `[0, horizon]`.
///
/// # Panics
///
/// Panics if `points < 2` or `horizon <= 0`.
pub fn uniform_grid(horizon: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two grid points");
    assert!(horizon > 0.0, "horizon must be positive");
    (0..points)
        .map(|i| horizon * i as f64 / (points - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::LifetimeBins;
    use crate::interp::Interpolation;

    fn perfect_step_pred(t_star: f64) -> ContinuousSurvival {
        // A bin boundary exactly at t_star with hazard 1 there makes the
        // stepped survival the exact indicator.
        let bins = LifetimeBins::from_uppers(vec![t_star, t_star * 2.0]);
        ContinuousSurvival::from_hazard(
            &bins,
            &[1.0, 0.0, 0.0],
            Interpolation::Stepped,
            t_star * 4.0,
        )
    }

    #[test]
    fn perfect_prediction_scores_zero() {
        let pred = perfect_step_pred(10.0);
        let truth = TrueLifetime {
            duration: 10.0,
            censored: false,
        };
        let grid = uniform_grid(30.0, 31);
        let (sse, n) = survival_mse_one(&pred, truth, &grid);
        assert_eq!(n, 31);
        assert!(sse < 1e-20, "sse = {sse}");
    }

    #[test]
    fn wrong_prediction_scores_positive() {
        let pred = perfect_step_pred(10.0);
        let truth = TrueLifetime {
            duration: 20.0,
            censored: false,
        };
        let grid = uniform_grid(30.0, 31);
        let (sse, _) = survival_mse_one(&pred, truth, &grid);
        assert!(sse > 1.0);
    }

    #[test]
    fn censored_jobs_scored_only_before_censor_time() {
        let pred = perfect_step_pred(10.0);
        let truth = TrueLifetime {
            duration: 15.0,
            censored: true,
        };
        let grid = uniform_grid(30.0, 31); // step 1.0
        let (_, n) = survival_mse_one(&pred, truth, &grid);
        assert_eq!(n, 16); // t = 0..=15
    }

    #[test]
    fn aggregate_averages_over_jobs_and_grid() {
        let preds = vec![perfect_step_pred(10.0), perfect_step_pred(10.0)];
        let truths = vec![
            TrueLifetime {
                duration: 10.0,
                censored: false,
            },
            TrueLifetime {
                duration: 10.0,
                censored: false,
            },
        ];
        let grid = uniform_grid(30.0, 4);
        assert!(survival_mse(&preds, &truths, &grid) < 1e-20);
    }

    #[test]
    fn empty_grid_contribution_is_zero() {
        let pred = perfect_step_pred(10.0);
        let truth = TrueLifetime {
            duration: -1.0,
            censored: true,
        };
        let (sse, n) = survival_mse_one(&pred, truth, &[5.0, 10.0]);
        assert_eq!((sse, n), (0.0, 0));
    }

    #[test]
    fn uniform_grid_spacing() {
        let g = uniform_grid(10.0, 6);
        assert_eq!(g, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }
}
