//! Continuous-time Kaplan–Meier (product-limit) estimator.
//!
//! Table 4 compares discretized estimators against Kaplan–Meier applied
//! directly in continuous time: the survival function steps down at each
//! observed event time by the factor `1 - d_i / n_i`.

use crate::km::KmError;
use serde::{Deserialize, Serialize};

/// A continuous-time Kaplan–Meier survival curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContinuousKm {
    /// Distinct event times, ascending.
    times: Vec<f64>,
    /// Survival value immediately *after* each event time.
    survival: Vec<f64>,
}

impl ContinuousKm {
    /// Fits from `(duration, censored)` observations.
    ///
    /// Censored observations leave the risk set at their censoring time
    /// without an event. Returns a curve with `S(0) = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`KmError::InvalidDuration`] if any duration is negative or
    /// non-finite.
    pub fn fit(observations: &[(f64, bool)]) -> Result<Self, KmError> {
        for &(d, _) in observations {
            if !(d >= 0.0 && d.is_finite()) {
                return Err(KmError::InvalidDuration { value: d });
            }
        }
        // Sort by time; at equal times process events before censorings
        // (the standard convention). Durations are validated finite above,
        // so total_cmp agrees with the usual order.
        let mut obs: Vec<(f64, bool)> = observations.to_vec();
        obs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut times = Vec::new();
        let mut survival = Vec::new();
        let mut s = 1.0;
        let mut at_risk = obs.len() as f64;
        let mut i = 0;
        while i < obs.len() {
            let t = obs[i].0;
            let mut events = 0.0;
            let mut exits = 0.0;
            while i < obs.len() && obs[i].0 == t {
                exits += 1.0;
                if !obs[i].1 {
                    events += 1.0;
                }
                i += 1;
            }
            if events > 0.0 && at_risk > 0.0 {
                s *= 1.0 - events / at_risk;
                times.push(t);
                survival.push(s);
            }
            at_risk -= exits;
        }
        Ok(Self { times, survival })
    }

    /// Evaluates `S(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0;
        }
        // Number of event times <= t.
        let k = self.times.partition_point(|&x| x <= t);
        if k == 0 {
            1.0
        } else {
            self.survival[k - 1]
        }
    }

    /// The distinct event times.
    pub fn event_times(&self) -> &[f64] {
        &self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_censoring_matches_empirical() {
        // Events at 1, 2, 3, 4: S drops by 1/4 of risk set each time.
        let obs = vec![(1.0, false), (2.0, false), (3.0, false), (4.0, false)];
        let km = ContinuousKm::fit(&obs).expect("fit");
        assert_eq!(km.eval(0.5), 1.0);
        assert!((km.eval(1.0) - 0.75).abs() < 1e-12);
        assert!((km.eval(2.5) - 0.5).abs() < 1e-12);
        assert!((km.eval(4.0) - 0.0).abs() < 1e-12);
        assert!((km.eval(100.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn censoring_reduces_risk_without_event() {
        // Event at 1 (n=3), censor at 2, event at 3 (n=1).
        let obs = vec![(1.0, false), (2.0, true), (3.0, false)];
        let km = ContinuousKm::fit(&obs).expect("fit");
        assert!((km.eval(1.5) - 2.0 / 3.0).abs() < 1e-12);
        // Between 2 and 3: unchanged (censoring is not an event).
        assert!((km.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        // After 3: multiplied by (1 - 1/1) = 0.
        assert!((km.eval(3.5)).abs() < 1e-12);
    }

    #[test]
    fn tied_events_handled() {
        let obs = vec![(2.0, false), (2.0, false), (2.0, true), (5.0, false)];
        let km = ContinuousKm::fit(&obs).expect("fit");
        // At t=2: 2 events out of 4 at risk -> S = 0.5.
        assert!((km.eval(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_censored_never_drops() {
        let obs = vec![(1.0, true), (2.0, true)];
        let km = ContinuousKm::fit(&obs).expect("fit");
        assert_eq!(km.eval(10.0), 1.0);
        assert!(km.event_times().is_empty());
    }

    #[test]
    fn negative_and_nan_durations_are_errors() {
        assert_eq!(
            ContinuousKm::fit(&[(-1.0, false)]).unwrap_err(),
            KmError::InvalidDuration { value: -1.0 }
        );
        assert!(ContinuousKm::fit(&[(f64::NAN, false)]).is_err());
    }

    #[test]
    fn survival_is_monotone() {
        let obs: Vec<(f64, bool)> = (1..50).map(|i| (i as f64 * 0.7, i % 3 == 0)).collect();
        let km = ContinuousKm::fit(&obs).expect("fit");
        let mut prev = 1.0;
        for i in 0..100 {
            let v = km.eval(i as f64 * 0.5);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
