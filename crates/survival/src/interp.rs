//! Reconstruction of a continuous survival function from discrete bins.
//!
//! Two interpolation schemes from Kvamme & Borgan, as used in the paper's
//! §2.4 and Table 4:
//!
//! - **CDI** (continuous-density interpolation): terminations are assumed to
//!   be spread evenly within each bin, so the survival function decreases
//!   linearly across the bin.
//! - **Stepped**: all terminations happen exactly at bin boundaries, so the
//!   survival function is a right-continuous step function.

use crate::bins::LifetimeBins;
use crate::funcs::hazard_to_survival;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Interpolation scheme for mapping discrete bins back to continuous time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interpolation {
    /// Continuous-density interpolation: uniform within-bin density.
    Cdi,
    /// Step function: terminations at bin upper boundaries.
    Stepped,
}

/// A continuous survival function reconstructed from a discrete hazard.
#[derive(Debug, Clone)]
pub struct ContinuousSurvival {
    bins: LifetimeBins,
    /// `S(j)` = probability of surviving past bin `j`.
    survival: Vec<f64>,
    interp: Interpolation,
    /// Effective upper edge of the final open bin (for CDI within it).
    tail_horizon: f64,
}

impl ContinuousSurvival {
    /// Builds a continuous survival function from a discrete hazard.
    ///
    /// `tail_horizon` bounds the final open bin when interpolating within it;
    /// it must exceed the final bin's lower boundary.
    ///
    /// # Panics
    ///
    /// Panics if `hazard.len() != bins.len()` or the horizon is inside the
    /// closed bins.
    pub fn from_hazard(
        bins: &LifetimeBins,
        hazard: &[f64],
        interp: Interpolation,
        tail_horizon: f64,
    ) -> Self {
        assert_eq!(hazard.len(), bins.len(), "hazard length mismatch");
        assert!(
            tail_horizon > bins.lower(bins.final_bin()),
            "tail horizon must exceed the final bin's lower edge"
        );
        Self {
            bins: bins.clone(),
            survival: hazard_to_survival(hazard),
            interp,
            tail_horizon,
        }
    }

    /// Evaluates `S(t)`: the probability the lifetime exceeds `t` seconds.
    ///
    /// `S(0) = 1`; beyond the tail horizon the function is exactly 0 under
    /// CDI and equal to the terminal survival under Stepped (a step function
    /// never interpolates the open bin; any residual mass stays forever,
    /// matching the "termination at boundary" convention which has no final
    /// boundary).
    ///
    /// The result is always in `[0, 1]` and non-increasing in `t`: the open
    /// bin's interpolation fraction is clamped so that float edge cases at
    /// or beyond the tail horizon can never produce a negative survival.
    pub fn eval(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0;
        }
        let j = self.bins.bin_of(t);
        let s_prev = if j == 0 { 1.0 } else { self.survival[j - 1] };
        let s_j = self.survival[j];
        match self.interp {
            Interpolation::Stepped => s_prev,
            Interpolation::Cdi if j == self.bins.final_bin() => {
                // The open bin: CDI spreads *all* remaining mass uniformly
                // over [lo, tail_horizon], draining to exactly 0 at the
                // horizon and staying 0 beyond it. Clamping the fraction
                // keeps S(t) within [0, s_prev] even when `t` lands on or
                // past the horizon (or rounding nudges the ratio out of
                // [0, 1]); the construction-time assert guarantees
                // `tail_horizon > lo`, so the ratio is never NaN.
                let lo = self.bins.lower(j);
                let frac = ((t - lo) / (self.tail_horizon - lo)).clamp(0.0, 1.0);
                s_prev * (1.0 - frac)
            }
            Interpolation::Cdi => {
                // Closed bin: `bin_of` guarantees `lo <= t < hi`.
                let lo = self.bins.lower(j);
                let hi = match self.bins.upper(j) {
                    Some(hi) => hi,
                    // lint:allow(no-panic): closed bins always have an upper edge.
                    None => unreachable!("closed bin without upper edge"),
                };
                let frac = (t - lo) / (hi - lo);
                s_prev + frac * (s_j - s_prev)
            }
        }
    }

    /// The discrete survival values `S(j)` the function interpolates.
    pub fn discrete(&self) -> &[f64] {
        &self.survival
    }

    /// The bin scheme.
    pub fn bins(&self) -> &LifetimeBins {
        &self.bins
    }
}

/// Samples a continuous duration for a lifetime that fell into `bin`.
///
/// Under CDI the duration is uniform within the bin (the final open bin is
/// bounded by `tail_horizon`); under Stepped it is the bin's upper boundary
/// (the tail horizon for the open bin).
///
/// # Panics
///
/// Panics if `bin` is out of range for `bins`.
pub fn sample_duration_in_bin(
    bins: &LifetimeBins,
    bin: usize,
    interp: Interpolation,
    tail_horizon: f64,
    rng: &mut impl Rng,
) -> f64 {
    let lo = bins.lower(bin);
    let hi = bins
        .upper(bin)
        .unwrap_or_else(|| tail_horizon.max(lo + 1.0));
    match interp {
        Interpolation::Cdi => rng.gen_range(lo..hi),
        Interpolation::Stepped => hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple() -> (LifetimeBins, Vec<f64>) {
        // Bins [0,10), [10,20), [20,inf); hazards 0.5, 0.5, 1.0.
        (
            LifetimeBins::from_uppers(vec![10.0, 20.0]),
            vec![0.5, 0.5, 1.0],
        )
    }

    #[test]
    fn cdi_is_linear_within_bins() {
        let (bins, h) = simple();
        let s = ContinuousSurvival::from_hazard(&bins, &h, Interpolation::Cdi, 40.0);
        assert!((s.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((s.eval(5.0) - 0.75).abs() < 1e-12); // halfway to S(0)=0.5
        assert!((s.eval(10.0) - 0.5).abs() < 1e-12);
        assert!((s.eval(15.0) - 0.375).abs() < 1e-12);
        assert!((s.eval(20.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cdi_open_bin_drains_to_zero_at_horizon() {
        let (bins, mut h) = simple();
        h[2] = 0.5; // leave residual mass in the tail
        let s = ContinuousSurvival::from_hazard(&bins, &h, Interpolation::Cdi, 40.0);
        assert!((s.eval(20.0) - 0.25).abs() < 1e-12);
        assert!((s.eval(30.0) - 0.125).abs() < 1e-12);
        assert!(s.eval(40.0).abs() < 0.125 + 1e-12);
        assert!(s.eval(100.0) <= 0.125 + 1e-12);
    }

    #[test]
    fn stepped_is_constant_within_bins() {
        let (bins, h) = simple();
        let s = ContinuousSurvival::from_hazard(&bins, &h, Interpolation::Stepped, 40.0);
        assert!((s.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((s.eval(9.99) - 1.0).abs() < 1e-12);
        assert!((s.eval(10.0) - 0.5).abs() < 1e-12);
        assert!((s.eval(19.9) - 0.5).abs() < 1e-12);
        assert!((s.eval(20.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn survival_monotone_under_both_interpolations() {
        let (bins, h) = simple();
        for interp in [Interpolation::Cdi, Interpolation::Stepped] {
            let s = ContinuousSurvival::from_hazard(&bins, &h, interp, 40.0);
            let mut prev = f64::INFINITY;
            for i in 0..100 {
                let v = s.eval(i as f64 * 0.5);
                assert!(v <= prev + 1e-12, "{interp:?} at {i}");
                prev = v;
            }
        }
    }

    #[test]
    fn negative_time_survives() {
        let (bins, h) = simple();
        let s = ContinuousSurvival::from_hazard(&bins, &h, Interpolation::Cdi, 40.0);
        assert_eq!(s.eval(-3.0), 1.0);
    }

    #[test]
    fn sampled_durations_stay_in_bin() {
        let bins = LifetimeBins::from_uppers(vec![10.0, 20.0]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let d = sample_duration_in_bin(&bins, 1, Interpolation::Cdi, 100.0, &mut rng);
            assert!((10.0..20.0).contains(&d));
        }
        // Final open bin bounded by horizon.
        for _ in 0..200 {
            let d = sample_duration_in_bin(&bins, 2, Interpolation::Cdi, 100.0, &mut rng);
            assert!((20.0..100.0).contains(&d));
        }
        // Stepped: exactly the boundary.
        assert_eq!(
            sample_duration_in_bin(&bins, 0, Interpolation::Stepped, 100.0, &mut rng),
            10.0
        );
    }

    #[test]
    #[should_panic(expected = "hazard length mismatch")]
    fn mismatched_hazard_panics() {
        let bins = LifetimeBins::from_uppers(vec![10.0]);
        let _ = ContinuousSurvival::from_hazard(&bins, &[0.5, 0.5, 0.5], Interpolation::Cdi, 40.0);
    }

    #[test]
    fn cdi_at_and_beyond_horizon_is_exactly_zero() {
        let (bins, mut h) = simple();
        h[2] = 0.1; // leave plenty of residual mass in the open bin
        let s = ContinuousSurvival::from_hazard(&bins, &h, Interpolation::Cdi, 40.0);
        assert_eq!(s.eval(40.0), 0.0, "at the horizon");
        for t in [40.0 + f64::EPSILON * 40.0, 41.0, 1e6, f64::INFINITY] {
            let v = s.eval(t);
            assert_eq!(v, 0.0, "S({t}) = {v}");
        }
        // Just inside the horizon: tiny but still non-negative.
        let v = s.eval(40.0 - 1e-9);
        assert!((0.0..1.0).contains(&v), "S(40-eps) = {v}");
    }

    /// Exhaustive seeded version of the property below, so the invariant
    /// is exercised even where proptest is unavailable.
    #[test]
    fn random_hazards_monotone_and_bounded_seeded() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        let bins = LifetimeBins::from_uppers(vec![10.0, 25.0, 60.0, 300.0]);
        let tail_horizon = 1000.0;
        for _ in 0..200 {
            let hazard: Vec<f64> = (0..bins.len()).map(|_| rng.gen_range(0.0..=1.0)).collect();
            for interp in [Interpolation::Cdi, Interpolation::Stepped] {
                let s = ContinuousSurvival::from_hazard(&bins, &hazard, interp, tail_horizon);
                let mut prev = 1.0;
                for i in 0..=400 {
                    let t = 2.0 * tail_horizon * (i as f64) / 400.0;
                    let v = s.eval(t);
                    assert!(
                        (0.0..=1.0).contains(&v),
                        "{interp:?}: S({t}) = {v} out of [0,1] for {hazard:?}"
                    );
                    assert!(
                        v <= prev + 1e-12,
                        "{interp:?}: S not monotone at {t}: {v} > {prev} for {hazard:?}"
                    );
                    prev = v;
                }
                if interp == Interpolation::Cdi {
                    assert_eq!(s.eval(tail_horizon), 0.0);
                    assert_eq!(s.eval(2.0 * tail_horizon), 0.0);
                }
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// S is non-increasing and within [0, 1] on [0, 2·tail_horizon]
            /// for arbitrary valid hazards, under both interpolations.
            #[test]
            fn survival_monotone_nonincreasing_on_doubled_horizon(
                hazard in proptest::collection::vec(0.0f64..=1.0, 5),
                interp_cdi in proptest::bool::ANY,
                horizon_slack in 1.0f64..1000.0,
            ) {
                let bins = LifetimeBins::from_uppers(vec![10.0, 25.0, 60.0, 300.0]);
                let tail_horizon = bins.lower(bins.final_bin()) + horizon_slack;
                let interp = if interp_cdi {
                    Interpolation::Cdi
                } else {
                    Interpolation::Stepped
                };
                let s = ContinuousSurvival::from_hazard(&bins, &hazard, interp, tail_horizon);
                let mut prev = 1.0f64;
                for i in 0..=500 {
                    let t = 2.0 * tail_horizon * (i as f64) / 500.0;
                    let v = s.eval(t);
                    prop_assert!((0.0..=1.0).contains(&v), "S({}) = {}", t, v);
                    prop_assert!(v <= prev + 1e-12, "not monotone at {}: {} > {}", t, v, prev);
                    prev = v;
                }
            }

            /// CDI drains to exactly zero at and beyond the tail horizon.
            #[test]
            fn cdi_is_zero_at_and_beyond_horizon(
                hazard in proptest::collection::vec(0.0f64..=1.0, 3),
                beyond in 0.0f64..1e9,
            ) {
                let bins = LifetimeBins::from_uppers(vec![10.0, 20.0]);
                let s = ContinuousSurvival::from_hazard(&bins, &hazard, Interpolation::Cdi, 40.0);
                prop_assert_eq!(s.eval(40.0), 0.0);
                prop_assert_eq!(s.eval(40.0 + beyond), 0.0);
            }
        }
    }
}
