//! Discrete Kaplan–Meier estimation of the hazard function.
//!
//! The Kaplan–Meier estimator counts, per bin, the number of events `d_j`
//! and the number of individuals at risk `n_j` entering the bin, and
//! estimates the hazard as `h(j) = d_j / n_j`. Censored individuals
//! contribute to the risk sets of the bins they are known to have survived,
//! but never to an event count — exactly the "credit for surviving" the
//! paper's lifetime loss gives censored jobs.

use crate::bins::LifetimeBins;
use crate::funcs::{hazard_to_pmf, hazard_to_survival};
use serde::{Deserialize, Serialize};

/// Invalid observations rejected by the Kaplan–Meier estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KmError {
    /// An observation's bin index is outside the bin scheme.
    BinOutOfRange {
        /// The offending bin index.
        bin: usize,
        /// Number of bins in the scheme.
        bins: usize,
    },
    /// A continuous duration was negative, NaN, or infinite.
    InvalidDuration {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for KmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BinOutOfRange { bin, bins } => {
                write!(f, "observation bin {bin} out of range ({bins} bins)")
            }
            Self::InvalidDuration { value } => {
                write!(f, "invalid duration {value}: must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for KmError {}

/// One lifetime observation: a bin index plus censoring status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// Bin of the event (uncensored) or of the censoring time (censored).
    pub bin: usize,
    /// True if the individual was still alive at the end of observation.
    pub censored: bool,
}

impl Observation {
    /// An observed termination in `bin`.
    pub fn event(bin: usize) -> Self {
        Self {
            bin,
            censored: false,
        }
    }

    /// A right-censored observation at `bin`.
    pub fn censored(bin: usize) -> Self {
        Self {
            bin,
            censored: true,
        }
    }
}

/// How censored observations are treated (the §5.3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CensoringPolicy {
    /// Vanilla Kaplan–Meier: censored individuals leave the risk set at
    /// their censoring bin without an event.
    CensoringAware,
    /// Discard censored observations entirely (the biased approach common in
    /// systems papers).
    DropCensored,
    /// Treat the censoring time as a termination.
    CensoredAsTerminated,
}

/// A fitted discrete Kaplan–Meier hazard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KaplanMeier {
    hazard: Vec<f64>,
    events: Vec<f64>,
    at_risk: Vec<f64>,
    policy: CensoringPolicy,
}

impl KaplanMeier {
    /// Fits the estimator over `bins.len()` bins from observations.
    ///
    /// Bins beyond the observation horizon (no survivors, no events) get a
    /// hazard equal to `fallback_hazard` — the caller chooses what the model
    /// should believe where there is no data (0.0 keeps mass in the final
    /// open bin; a small positive value forces eventual termination).
    ///
    /// # Errors
    ///
    /// Returns [`KmError::BinOutOfRange`] if any observation's bin index is
    /// out of range.
    pub fn fit(
        bins: &LifetimeBins,
        observations: &[Observation],
        policy: CensoringPolicy,
        fallback_hazard: f64,
    ) -> Result<Self, KmError> {
        Self::fit_smoothed(bins, observations, policy, fallback_hazard, 0.0)
    }

    /// Like [`Self::fit`], but with an additive pseudo-count `alpha` on the
    /// per-bin event/survival counts (`h = (d + alpha) / (n + 2 alpha)`).
    ///
    /// Vanilla Kaplan–Meier (`alpha = 0`) produces hazards of exactly 0 or 1
    /// in bins with few at-risk individuals, which is catastrophic under log
    /// loss; a Jeffreys-style `alpha = 0.5` keeps small-sample estimators
    /// (e.g. per-flavor KM on rare flavors) well-behaved.
    ///
    /// # Errors
    ///
    /// Returns [`KmError::BinOutOfRange`] if any observation's bin index is
    /// out of range.
    pub fn fit_smoothed(
        bins: &LifetimeBins,
        observations: &[Observation],
        policy: CensoringPolicy,
        fallback_hazard: f64,
        alpha: f64,
    ) -> Result<Self, KmError> {
        let j = bins.len();
        let mut events: Vec<f64> = vec![0.0; j];
        let mut exits: Vec<f64> = vec![0.0; j]; // individuals leaving the risk set in bin (event or censor)
        let mut total = 0.0f64;
        for obs in observations {
            if obs.bin >= j {
                return Err(KmError::BinOutOfRange {
                    bin: obs.bin,
                    bins: j,
                });
            }
            let (bin, is_event) = match (policy, obs.censored) {
                (CensoringPolicy::DropCensored, true) => continue,
                (CensoringPolicy::CensoredAsTerminated, true) => (obs.bin, true),
                (_, censored) => (obs.bin, !censored),
            };
            total += 1.0;
            exits[bin] += 1.0;
            if is_event {
                events[bin] += 1.0;
            }
        }

        let mut hazard = Vec::with_capacity(j);
        let mut at_risk_vec = Vec::with_capacity(j);
        let mut at_risk = total;
        for b in 0..j {
            at_risk_vec.push(at_risk);
            if at_risk > 0.0 {
                hazard.push(((events[b] + alpha) / (at_risk + 2.0 * alpha)).clamp(0.0, 1.0));
            } else {
                hazard.push(fallback_hazard.clamp(0.0, 1.0));
            }
            at_risk -= exits[b];
        }
        Ok(Self {
            hazard,
            events,
            at_risk: at_risk_vec,
            policy,
        })
    }

    /// The estimated hazard per bin.
    pub fn hazard(&self) -> &[f64] {
        &self.hazard
    }

    /// The PMF implied by the hazard.
    pub fn pmf(&self) -> Vec<f64> {
        hazard_to_pmf(&self.hazard)
    }

    /// The survival function implied by the hazard.
    pub fn survival(&self) -> Vec<f64> {
        hazard_to_survival(&self.hazard)
    }

    /// Event counts per bin (after applying the censoring policy).
    pub fn events(&self) -> &[f64] {
        &self.events
    }

    /// Risk-set size entering each bin.
    pub fn at_risk(&self) -> &[f64] {
        &self.at_risk
    }

    /// The censoring policy used to fit.
    pub fn policy(&self) -> CensoringPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_bins() -> LifetimeBins {
        LifetimeBins::from_uppers(vec![10.0, 20.0])
    }

    #[test]
    fn no_censoring_matches_empirical() {
        let bins = three_bins();
        // 4 events in bin 0, 4 in bin 1, 2 in bin 2 out of 10.
        let mut obs = vec![Observation::event(0); 4];
        obs.extend(vec![Observation::event(1); 4]);
        obs.extend(vec![Observation::event(2); 2]);
        let km = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoringAware, 0.0).expect("fit");
        assert!((km.hazard()[0] - 0.4).abs() < 1e-12);
        assert!((km.hazard()[1] - 4.0 / 6.0).abs() < 1e-12);
        assert!((km.hazard()[2] - 1.0).abs() < 1e-12);
        let pmf = km.pmf();
        assert!((pmf[0] - 0.4).abs() < 1e-12);
        assert!((pmf[1] - 0.4).abs() < 1e-12);
        assert!((pmf[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn censored_contribute_survival_only() {
        let bins = three_bins();
        // 1 event in bin 0; 1 censored in bin 1; 1 event in bin 2.
        let obs = vec![
            Observation::event(0),
            Observation::censored(1),
            Observation::event(2),
        ];
        let km = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoringAware, 0.0).expect("fit");
        // Bin 0: 1 event / 3 at risk.
        assert!((km.hazard()[0] - 1.0 / 3.0).abs() < 1e-12);
        // Bin 1: 0 events / 2 at risk (censored one still at risk in bin 1).
        assert!((km.hazard()[1] - 0.0).abs() < 1e-12);
        // Bin 2: 1 event / 1 at risk (censored one left the risk set).
        assert!((km.hazard()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drop_censored_biases_down_risk() {
        let bins = three_bins();
        let obs = vec![
            Observation::event(0),
            Observation::censored(2),
            Observation::censored(2),
            Observation::censored(2),
        ];
        let aware = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoringAware, 0.0).expect("fit");
        let drop = KaplanMeier::fit(&bins, &obs, CensoringPolicy::DropCensored, 0.0).expect("fit");
        // Aware: h(0) = 1/4; dropping censored: h(0) = 1/1 = 1.0 — biased up.
        assert!((aware.hazard()[0] - 0.25).abs() < 1e-12);
        assert!((drop.hazard()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn censored_as_terminated_adds_events() {
        let bins = three_bins();
        let obs = vec![Observation::censored(1), Observation::event(1)];
        let km = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoredAsTerminated, 0.0).expect("fit");
        assert!((km.hazard()[1] - 1.0).abs() < 1e-12);
        assert_eq!(km.events()[1], 2.0);
    }

    #[test]
    fn fallback_hazard_fills_unobserved_bins() {
        let bins = LifetimeBins::from_uppers(vec![10.0, 20.0, 30.0]);
        let obs = vec![Observation::event(0)];
        let km = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoringAware, 0.25).expect("fit");
        // After the only individual exits in bin 0, later bins use fallback.
        assert_eq!(km.hazard()[1], 0.25);
        assert_eq!(km.hazard()[2], 0.25);
    }

    #[test]
    fn survival_never_increases() {
        let bins = LifetimeBins::from_uppers(vec![1.0, 2.0, 3.0, 4.0]);
        let obs: Vec<Observation> = (0..5)
            .flat_map(|b| std::iter::repeat(Observation::event(b % 5)).take(3 - (b % 3)))
            .collect();
        let km = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoringAware, 0.0).expect("fit");
        let s = km.survival();
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn at_risk_decreases_by_exits() {
        let bins = three_bins();
        let obs = vec![
            Observation::event(0),
            Observation::event(0),
            Observation::censored(1),
        ];
        let km = KaplanMeier::fit(&bins, &obs, CensoringPolicy::CensoringAware, 0.0).expect("fit");
        assert_eq!(km.at_risk(), &[3.0, 1.0, 0.0]);
    }

    #[test]
    fn out_of_range_bin_is_error() {
        let bins = three_bins();
        let err = KaplanMeier::fit(
            &bins,
            &[Observation::event(7)],
            CensoringPolicy::CensoringAware,
            0.0,
        )
        .unwrap_err();
        assert_eq!(err, KmError::BinOutOfRange { bin: 7, bins: 3 });
        assert!(err.to_string().contains("out of range"));
    }
}
