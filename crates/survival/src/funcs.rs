//! Conversions between the discrete hazard, PMF, and survival functions.
//!
//! For bins `j = 0 … J-1` (0-based; the paper's §2.3.1 uses 1-based):
//!
//! - PMF `f(j)`: probability the lifetime falls in bin `j`.
//! - Survival `S(j)`: probability the lifetime falls in any bin `i > j`.
//! - Hazard `h(j)`: probability the lifetime falls in bin `j` given it did
//!   not fall in any bin `i < j`.
//!
//! The identities used throughout: `f(j) = h(j) · Π_{i<j} (1 − h(i))` and
//! `S(j) = Π_{i≤j} (1 − h(i))`.

use rand::Rng;

/// Converts a hazard function to the PMF over bins.
///
/// If the hazards do not exhaust all probability mass (i.e. survival past the
/// final bin is positive), the leftover mass is assigned to the final bin so
/// the result is a proper distribution — matching how samples from the hazard
/// chain are clamped into the final bin.
///
/// # Examples
///
/// ```
/// let pmf = survival::hazard_to_pmf(&[0.5, 0.5, 0.5]);
/// assert!((pmf[0] - 0.5).abs() < 1e-12);
/// assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `hazard` is empty or any value is outside `[0, 1]`.
pub fn hazard_to_pmf(hazard: &[f64]) -> Vec<f64> {
    assert!(!hazard.is_empty(), "empty hazard");
    let mut pmf = Vec::with_capacity(hazard.len());
    let mut surv = 1.0;
    for (&h, j) in hazard.iter().zip(0..) {
        assert!((0.0..=1.0).contains(&h), "hazard[{j}] = {h} outside [0,1]");
        pmf.push(surv * h);
        surv *= 1.0 - h;
    }
    // Fold residual survival mass into the final bin.
    // lint:allow(no-panic): pmf has one entry per hazard bin and hazards are non-empty here
    *pmf.last_mut().expect("non-empty") += surv;
    pmf
}

/// Converts a hazard function to the survival function `S(j)` (probability of
/// surviving *past* bin `j`).
///
/// # Panics
///
/// Panics if `hazard` is empty or any value is outside `[0, 1]`.
pub fn hazard_to_survival(hazard: &[f64]) -> Vec<f64> {
    assert!(!hazard.is_empty(), "empty hazard");
    let mut out = Vec::with_capacity(hazard.len());
    let mut surv = 1.0;
    for (&h, j) in hazard.iter().zip(0..) {
        assert!((0.0..=1.0).contains(&h), "hazard[{j}] = {h} outside [0,1]");
        surv *= 1.0 - h;
        out.push(surv);
    }
    out
}

/// Converts a PMF over bins to the hazard function.
///
/// Bins with no remaining probability mass get hazard 1.0 (the event must
/// have happened by then).
///
/// # Panics
///
/// Panics if `pmf` is empty, has negative entries, or sums to more than
/// `1 + 1e-9`.
pub fn pmf_to_hazard(pmf: &[f64]) -> Vec<f64> {
    assert!(!pmf.is_empty(), "empty pmf");
    let total: f64 = pmf.iter().sum();
    assert!(total <= 1.0 + 1e-9, "pmf sums to {total} > 1");
    let mut hazard = Vec::with_capacity(pmf.len());
    let mut remaining = 1.0;
    for (&p, j) in pmf.iter().zip(0..) {
        assert!(p >= 0.0, "pmf[{j}] negative");
        if remaining <= 1e-15 {
            hazard.push(1.0);
        } else {
            hazard.push((p / remaining).clamp(0.0, 1.0));
        }
        remaining -= p;
    }
    hazard
}

/// Samples a bin index by walking the hazard chain: at each bin, the event
/// fires with probability `h(j)`. If the chain survives every bin, the final
/// bin is returned (the final bin of a lifetime scheme is open-ended).
///
/// # Panics
///
/// Panics if `hazard` is empty.
pub fn sample_hazard_chain(hazard: &[f64], rng: &mut impl Rng) -> usize {
    assert!(!hazard.is_empty(), "empty hazard");
    for (j, &h) in hazard.iter().enumerate() {
        if rng.gen::<f64>() < h {
            return j;
        }
    }
    hazard.len() - 1
}

/// Expected bin index under the PMF (used as a cheap point prediction).
pub fn pmf_mean_bin(pmf: &[f64]) -> f64 {
    pmf.iter().zip(0..).map(|(&p, j)| p * j as f64).sum()
}

/// Index of the maximum-probability bin (ties break to the lowest index).
///
/// # Panics
///
/// Panics if `pmf` is empty.
pub fn pmf_argmax(pmf: &[f64]) -> usize {
    assert!(!pmf.is_empty(), "empty pmf");
    let mut best = 0;
    for (j, &p) in pmf.iter().enumerate() {
        if p > pmf[best] {
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_hazard_gives_geometric_pmf() {
        let h = vec![0.5; 4];
        let pmf = hazard_to_pmf(&h);
        assert!((pmf[0] - 0.5).abs() < 1e-12);
        assert!((pmf[1] - 0.25).abs() < 1e-12);
        assert!((pmf[2] - 0.125).abs() < 1e-12);
        // Final bin absorbs the residual: 0.0625 + 0.0625.
        assert!((pmf[3] - 0.125).abs() < 1e-12);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn survival_is_monotone_decreasing() {
        let h = vec![0.1, 0.3, 0.2, 0.6];
        let s = hazard_to_survival(&h);
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
        assert!((s[0] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn pmf_hazard_roundtrip() {
        let pmf = vec![0.2, 0.3, 0.1, 0.4];
        let h = pmf_to_hazard(&pmf);
        let back = hazard_to_pmf(&h);
        for (a, b) in pmf.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hazard_pmf_roundtrip() {
        let h = vec![0.25, 0.5, 0.75, 1.0];
        let pmf = hazard_to_pmf(&h);
        let back = pmf_to_hazard(&pmf);
        for (a, b) in h.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn exhausted_pmf_gets_hazard_one() {
        let pmf = vec![1.0, 0.0, 0.0];
        let h = pmf_to_hazard(&pmf);
        assert_eq!(h, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn sampling_matches_pmf_frequencies() {
        let h = vec![0.3, 0.5, 0.2, 0.9];
        let pmf = hazard_to_pmf(&h);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = vec![0usize; h.len()];
        for _ in 0..n {
            counts[sample_hazard_chain(&h, &mut rng)] += 1;
        }
        for (j, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - pmf[j]).abs() < 0.01,
                "bin {j}: {freq} vs {}",
                pmf[j]
            );
        }
    }

    #[test]
    fn zero_hazard_chain_lands_in_final_bin() {
        let h = vec![0.0; 5];
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_hazard_chain(&h, &mut rng), 4);
    }

    #[test]
    fn argmax_and_mean() {
        let pmf = vec![0.1, 0.6, 0.3];
        assert_eq!(pmf_argmax(&pmf), 1);
        assert!((pmf_mean_bin(&pmf) - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_invalid_hazard() {
        let _ = hazard_to_pmf(&[0.5, 1.5]);
    }
}
