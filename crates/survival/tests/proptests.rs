//! Property-based tests for the survival substrate.

use proptest::prelude::*;
use survival::bins::LifetimeBins;
use survival::funcs::{hazard_to_pmf, hazard_to_survival, pmf_to_hazard, sample_hazard_chain};
use survival::interp::{ContinuousSurvival, Interpolation};
use survival::km::{CensoringPolicy, KaplanMeier, Observation};

fn hazard_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..=1.0f64, 2..20)
}

proptest! {
    #[test]
    fn pmf_from_hazard_is_distribution(h in hazard_strategy()) {
        let pmf = hazard_to_pmf(&h);
        prop_assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(pmf.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn survival_from_hazard_is_monotone(h in hazard_strategy()) {
        let s = hazard_to_survival(&h);
        prop_assert!(s[0] <= 1.0 + 1e-12);
        for w in s.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn hazard_pmf_roundtrip(h in proptest::collection::vec(0.01..=0.99f64, 2..15)) {
        let pmf = hazard_to_pmf(&h);
        let h2 = pmf_to_hazard(&pmf);
        // The final bin absorbs residual mass, so compare all but the last.
        for (a, b) in h.iter().zip(&h2).take(h.len() - 1) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn sampled_bins_in_range(h in hazard_strategy(), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let b = sample_hazard_chain(&h, &mut rng);
        prop_assert!(b < h.len());
    }

    #[test]
    fn bin_of_is_consistent_with_bounds(
        uppers in proptest::collection::vec(1.0..1e6f64, 1..20),
        t in 0.0..2e6f64,
    ) {
        let mut u = uppers;
        u.sort_by(|a, b| a.partial_cmp(b).unwrap());
        u.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let bins = LifetimeBins::from_uppers(u);
        let j = bins.bin_of(t);
        prop_assert!(t >= bins.lower(j) || j == 0);
        if let Some(hi) = bins.upper(j) {
            prop_assert!(t < hi);
        }
    }

    #[test]
    fn km_hazard_in_unit_interval(
        events in proptest::collection::vec(0usize..5, 1..50),
        censored in proptest::collection::vec(any::<bool>(), 1..50),
    ) {
        let bins = LifetimeBins::from_uppers(vec![1.0, 2.0, 3.0, 4.0]);
        let obs: Vec<Observation> = events
            .iter()
            .zip(censored.iter().cycle())
            .map(|(&b, &c)| Observation { bin: b, censored: c })
            .collect();
        for policy in [
            CensoringPolicy::CensoringAware,
            CensoringPolicy::DropCensored,
            CensoringPolicy::CensoredAsTerminated,
        ] {
            let km = KaplanMeier::fit(&bins, &obs, policy, 0.0).expect("bins in range");
            prop_assert!(km.hazard().iter().all(|&h| (0.0..=1.0).contains(&h)));
        }
    }

    #[test]
    fn cdi_survival_bounded_and_monotone(h in proptest::collection::vec(0.0..=1.0f64, 3..10)) {
        let uppers: Vec<f64> = (1..h.len()).map(|i| i as f64 * 10.0).collect();
        let bins = LifetimeBins::from_uppers(uppers);
        let s = ContinuousSurvival::from_hazard(&bins, &h, Interpolation::Cdi, h.len() as f64 * 20.0);
        let mut prev = 1.0 + 1e-12;
        for i in 0..200 {
            let v = s.eval(i as f64);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            prop_assert!(v <= prev + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn stepped_matches_discrete_at_boundaries(h in proptest::collection::vec(0.0..=1.0f64, 3..8)) {
        let uppers: Vec<f64> = (1..h.len()).map(|i| i as f64 * 5.0).collect();
        let bins = LifetimeBins::from_uppers(uppers.clone());
        let s = ContinuousSurvival::from_hazard(&bins, &h, Interpolation::Stepped, 1e4);
        let disc = hazard_to_survival(&h);
        // Just after boundary j the stepped value equals S(j).
        for (j, &u) in uppers.iter().enumerate() {
            prop_assert!((s.eval(u + 1e-9) - disc[j]).abs() < 1e-9);
        }
    }
}
