//! `obsv` — the workspace's telemetry substrate.
//!
//! Training an RNN workload generator, sampling futures from it, and
//! replaying them through the scheduler substrate are all pipelines whose
//! health is invisible from their return values alone: a loss vector says
//! nothing about gradient explosions the clip silently absorbed, and a
//! generated trace says nothing about tokens-per-second. This crate gives
//! every layer one shared, dependency-light vocabulary for reporting what
//! happened:
//!
//! - [`Event`] — the closed set of typed telemetry events
//!   ([`EpochEvent`], [`GenEvent`], [`SchedEvent`], counters, gauges,
//!   spans);
//! - [`Recorder`] — the sink trait, with [`NullRecorder`] (off),
//!   [`MemoryRecorder`] (tests, in-process reports), and [`JsonlRecorder`]
//!   (one JSON object per line on disk, error-tolerant);
//! - [`Counter`], [`Gauge`], [`SpanTimer`], [`Histogram`] — measurement
//!   primitives (monotonic `Instant`-based timing, fixed-bucket quantiles);
//! - [`RunReport`] — aggregates an event stream into per-stage loss
//!   trajectories, epoch wall-time quantiles, generation throughput, and
//!   scheduler counters, rendered as JSON or an aligned table;
//! - [`profile`] — hierarchical nested spans with parent/thread ids, flop
//!   and byte work accounting, a Chrome `trace_event` exporter, and a
//!   RunReport "profile" section ranked by self-time.
//!
//! Hot paths take `&dyn Recorder`; passing `&NullRecorder` keeps the cost
//! to one virtual call per *epoch* (not per step), so telemetry-off runs
//! pay nothing measurable.

#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod report;

pub use event::{
    CheckpointEvent, CounterEvent, EpochEvent, Event, GaugeEvent, GenEvent, GuardEvent, LintEvent,
    ProfSpanEvent, SchedEvent, SpanEvent,
};
pub use metrics::{exact_quantile, Counter, Deadline, Gauge, Histogram, SpanTimer, Stopwatch};
pub use profile::{ProfSpanRecord, Profiler, SpanHandoff};
pub use recorder::{
    read_jsonl, JsonlRecorder, MemoryRecorder, NullRecorder, Recorder, StderrJsonlRecorder,
};
pub use report::{
    GenSummary, ProfileEntry, ProfileSummary, ResilienceSummary, RunReport, SchedSummary,
    SpanSummary, StageSummary,
};
