//! Hierarchical profiling: nested spans with parent/thread ids, flop and
//! byte work accounting, and a Chrome `trace_event` exporter.
//!
//! # Model
//!
//! A [`Profiler`] is a shared sink of completed [`ProfSpanRecord`]s. It is
//! *activated* on a thread with [`Profiler::activate`]; while active, every
//! [`span`] call on that thread opens a nested span whose parent is the
//! innermost span still open on the same thread. Worker threads join the
//! same trace through a [`SpanHandoff`] captured on the submitting thread:
//! the worker's spans get a fresh thread lane (`tid`) and are parented
//! under the span that was open at capture time, so fan-out work nests
//! correctly in the trace.
//!
//! # Work accounting
//!
//! Kernels report arithmetic work with [`add_flops`] / [`add_bytes`] —
//! unconditional thread-local adds, cheap enough to leave on always. A
//! span's `flops`/`bytes` are the *inclusive* deltas of these counters
//! between open and close on its own thread: exact for leaf kernel spans
//! (GEMM, LSTM gates, Adam), inclusive-of-children for enclosing spans.
//! Work done by other threads (e.g. pool workers) is attributed to the
//! worker's own spans, not the submitting span.
//!
//! # Overhead when off
//!
//! With no profiler active on the thread, [`span`] is one thread-local
//! flag read plus a branch and returns an inert guard — no allocation, no
//! lock, no clock read. The counters are plain thread-local `Cell` adds.

use crate::event::{Event, ProfSpanEvent};
use crate::recorder::Recorder;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

thread_local! {
    /// Fast-path flag: true iff a profiler is active on this thread.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
    static FLOPS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

struct ThreadCtx {
    profiler: Profiler,
    tid: u64,
    /// Innermost open span on this thread (the parent for the next one).
    open: Option<u64>,
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Adds floating-point operations to this thread's work counter.
///
/// Call once per kernel invocation with the kernel's analytic flop count
/// (e.g. `2·m·n·k` for GEMM); never per element.
#[inline]
pub fn add_flops(n: u64) {
    FLOPS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Adds bytes moved (reads + writes, analytic) to this thread's counter.
#[inline]
pub fn add_bytes(n: u64) {
    BYTES.with(|c| c.set(c.get().wrapping_add(n)));
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSpanRecord {
    /// Unique id within the profiler.
    pub id: u64,
    /// Enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Static span name (`"gemm"`, `"epoch"`, …).
    pub name: &'static str,
    /// Thread lane the span ran on (0 = first activation).
    pub tid: u64,
    /// Microseconds since the profiler's origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Flops accounted on this thread while the span was open (inclusive).
    pub flops: u64,
    /// Bytes accounted on this thread while the span was open (inclusive).
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct Sink {
    spans: Vec<ProfSpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    lanes: BTreeMap<u64, String>,
}

/// A shared profiling sink. Cloning is cheap (`Arc` handle).
#[derive(Debug, Clone)]
pub struct Profiler {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    origin: Instant,
    sink: Mutex<Sink>,
    next_id: AtomicU64,
    next_tid: AtomicU64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Creates an empty profiler; its clock origin is now.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                origin: Instant::now(),
                sink: Mutex::new(Sink::default()),
                next_id: AtomicU64::new(1),
                next_tid: AtomicU64::new(0),
            }),
        }
    }

    /// Microseconds since this profiler was created.
    fn us_since_origin(&self) -> u64 {
        u64::try_from(self.inner.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Activates this profiler on the current thread under `lane_name`
    /// (e.g. `"main"`). Spans opened while the guard lives are recorded;
    /// dropping the guard restores whatever was active before.
    pub fn activate(&self, lane_name: &str) -> ActivationGuard {
        self.activate_with_parent(lane_name, None)
    }

    fn activate_with_parent(&self, lane_name: &str, parent: Option<u64>) -> ActivationGuard {
        let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
        unpoison(self.inner.sink.lock())
            .lanes
            .insert(tid, lane_name.to_string());
        let prev_enabled = ENABLED.with(Cell::get);
        let prev = ACTIVE.with(|a| {
            a.borrow_mut().replace(ThreadCtx {
                profiler: self.clone(),
                tid,
                open: parent,
            })
        });
        ENABLED.with(|e| e.set(true));
        ActivationGuard {
            prev,
            prev_enabled,
            tid,
            _not_send: PhantomData,
        }
    }

    fn push(&self, rec: ProfSpanRecord) {
        unpoison(self.inner.sink.lock()).spans.push(rec);
    }

    /// Accumulates `delta` into a named counter (summed across calls).
    pub fn add_counter(&self, name: &str, delta: u64) {
        *unpoison(self.inner.sink.lock())
            .counters
            .entry(name.to_string())
            .or_insert(0) += delta;
    }

    /// Sets a named gauge (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        unpoison(self.inner.sink.lock())
            .gauges
            .insert(name.to_string(), value);
    }

    /// Snapshot of every completed span, in completion order.
    pub fn spans(&self) -> Vec<ProfSpanRecord> {
        unpoison(self.inner.sink.lock()).spans.clone()
    }

    /// The Chrome `trace_event` JSON for everything recorded so far.
    pub fn chrome_trace_json(&self) -> String {
        let sink = unpoison(self.inner.sink.lock());
        chrome_trace(&sink.spans, &sink.lanes)
    }

    /// Writes the Chrome trace to `path` (open in `chrome://tracing` or
    /// Perfetto).
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = self.chrome_trace_json();
        let mut f = std::fs::File::create(path)?;
        f.write_all(json.as_bytes())
    }

    /// Drains everything recorded so far into `rec`: one [`Event::Prof`]
    /// per span plus the accumulated counters and gauges. After this the
    /// profiler is empty (lane names are kept so a later flush still
    /// labels threads).
    pub fn flush_events(&self, rec: &dyn Recorder) {
        let (spans, counters, gauges) = {
            let mut sink = unpoison(self.inner.sink.lock());
            (
                std::mem::take(&mut sink.spans),
                std::mem::take(&mut sink.counters),
                std::mem::take(&mut sink.gauges),
            )
        };
        for s in spans {
            rec.record(Event::Prof(ProfSpanEvent {
                name: s.name.to_string(),
                id: s.id,
                parent: s.parent,
                tid: s.tid,
                start_us: s.start_us,
                dur_us: s.dur_us,
                flops: s.flops,
                bytes: s.bytes,
            }));
        }
        for (name, delta) in counters {
            rec.record(Event::Counter(crate::event::CounterEvent { name, delta }));
        }
        for (name, value) in gauges {
            rec.record(Event::Gauge(crate::event::GaugeEvent { name, value }));
        }
    }
}

/// Restores the thread's previous profiling state on drop.
///
/// Not `Send`: it must be dropped on the thread that created it. Spans
/// opened under this activation must close before the guard drops.
pub struct ActivationGuard {
    prev: Option<ThreadCtx>,
    prev_enabled: bool,
    tid: u64,
    _not_send: PhantomData<*const ()>,
}

impl ActivationGuard {
    /// The thread lane id this activation was assigned.
    pub fn tid(&self) -> u64 {
        self.tid
    }
}

impl Drop for ActivationGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
        ENABLED.with(|e| e.set(self.prev_enabled));
    }
}

/// Opens a span named `name` on the current thread.
///
/// With no active profiler this is one flag read and returns an inert
/// guard. The span closes (and is recorded) when the guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.with(Cell::get) {
        return SpanGuard { live: None };
    }
    open_span(name)
}

fn open_span(name: &'static str) -> SpanGuard {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let Some(ctx) = slot.as_mut() else {
            return SpanGuard { live: None };
        };
        let id = ctx.profiler.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = ctx.open.replace(id);
        SpanGuard {
            live: Some(LiveSpan {
                name,
                id,
                parent,
                start_us: ctx.profiler.us_since_origin(),
                flops0: FLOPS.with(Cell::get),
                bytes0: BYTES.with(Cell::get),
            }),
        }
    })
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start_us: u64,
    flops0: u64,
    bytes0: u64,
}

/// Closes its span on drop. Inert (and free) when profiling is off.
#[must_use = "a span closes when its guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(ctx) = slot.as_mut() else {
                // Activation ended before the span closed; drop it.
                return;
            };
            ctx.open = live.parent;
            let end_us = ctx.profiler.us_since_origin();
            let rec = ProfSpanRecord {
                id: live.id,
                parent: live.parent,
                name: live.name,
                tid: ctx.tid,
                start_us: live.start_us,
                dur_us: end_us.saturating_sub(live.start_us),
                flops: FLOPS.with(Cell::get).wrapping_sub(live.flops0),
                bytes: BYTES.with(Cell::get).wrapping_sub(live.bytes0),
            };
            let profiler = ctx.profiler.clone();
            drop(slot);
            profiler.push(rec);
        });
    }
}

/// Microseconds since the active profiler's origin, or `None` when
/// profiling is off. The sanctioned clock for non-`obsv` code that needs
/// raw timestamps (e.g. pool utilization arithmetic).
pub fn now_us() -> Option<u64> {
    if !ENABLED.with(Cell::get) {
        return None;
    }
    ACTIVE.with(|a| a.borrow().as_ref().map(|ctx| ctx.profiler.us_since_origin()))
}

/// The active profiler on this thread, if any.
pub fn current() -> Option<Profiler> {
    if !ENABLED.with(Cell::get) {
        return None;
    }
    ACTIVE.with(|a| a.borrow().as_ref().map(|ctx| ctx.profiler.clone()))
}

/// A capture of "the profiler and span that submitted this work", for
/// carrying a trace across a thread boundary.
#[derive(Debug, Clone)]
pub struct SpanHandoff {
    profiler: Profiler,
    parent: Option<u64>,
}

/// Captures the current profiler and innermost open span, or `None` when
/// profiling is off. Send the result to a worker thread and call
/// [`SpanHandoff::enter`] there.
pub fn handoff() -> Option<SpanHandoff> {
    if !ENABLED.with(Cell::get) {
        return None;
    }
    ACTIVE.with(|a| {
        a.borrow().as_ref().map(|ctx| SpanHandoff {
            profiler: ctx.profiler.clone(),
            parent: ctx.open,
        })
    })
}

impl SpanHandoff {
    /// Activates the captured profiler on the current (worker) thread under
    /// a fresh lane named `lane_name`; spans opened here are parented under
    /// the span that was open at capture time.
    pub fn enter(&self, lane_name: &str) -> ActivationGuard {
        self.profiler.activate_with_parent(lane_name, self.parent)
    }

    /// The owning profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }
}

/// Renders spans as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in an object), deterministically ordered by `(tid, start, id)`.
///
/// `lanes` maps thread ids to display names; missing ids get `thread-N`.
pub fn chrome_trace(spans: &[ProfSpanRecord], lanes: &BTreeMap<u64, String>) -> String {
    let mut events: Vec<serde_json::Value> = Vec::new();
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        let name = lanes
            .get(tid)
            .cloned()
            .unwrap_or_else(|| format!("thread-{tid}"));
        events.push(serde_json::json!({
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": name},
        }));
    }
    let mut ordered: Vec<&ProfSpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.tid, s.start_us, s.id));
    for s in ordered {
        events.push(serde_json::json!({
            "ph": "X",
            "pid": 1,
            "tid": s.tid,
            "name": s.name,
            "ts": s.start_us,
            "dur": s.dur_us,
            "args": {
                "id": s.id,
                "parent": s.parent,
                "flops": s.flops,
                "bytes": s.bytes,
            },
        }));
    }
    let doc = serde_json::json!({ "traceEvents": events });
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{\"traceEvents\":[]}".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn span_without_profiler_is_inert() {
        let g = span("nothing");
        assert!(g.live.is_none());
        drop(g);
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let p = Profiler::new();
        {
            let _act = p.activate("main");
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        let spans = p.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[0].tid, spans[1].tid);
        assert!(spans[0].start_us >= spans[1].start_us);
    }

    #[test]
    fn work_counters_attribute_inclusively() {
        let p = Profiler::new();
        {
            let _act = p.activate("main");
            let _outer = span("outer");
            add_flops(10);
            {
                let _inner = span("inner");
                add_flops(5);
                add_bytes(64);
            }
            add_flops(1);
        }
        let spans = p.spans();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.flops, 5);
        assert_eq!(inner.bytes, 64);
        assert_eq!(outer.flops, 16);
        assert_eq!(outer.bytes, 64);
    }

    #[test]
    fn handoff_parents_worker_spans_and_assigns_lanes() {
        let p = Profiler::new();
        let submit_id;
        {
            let _act = p.activate("main");
            let submit = span("submit");
            let h = handoff().expect("profiling active");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _worker = h.enter("worker-0");
                    let _s = span("work-item");
                });
            });
            drop(submit);
            submit_id = p.spans().iter().find(|s| s.name == "submit").map(|s| s.id);
        }
        let spans = p.spans();
        let item = spans.iter().find(|s| s.name == "work-item").unwrap();
        let submit = spans.iter().find(|s| s.name == "submit").unwrap();
        assert_eq!(item.parent, Some(submit.id));
        assert_eq!(submit_id, Some(submit.id));
        assert_ne!(item.tid, submit.tid);
    }

    #[test]
    fn activation_restores_previous_state() {
        assert!(now_us().is_none());
        let p = Profiler::new();
        {
            let _a = p.activate("main");
            assert!(now_us().is_some());
            assert!(current().is_some());
        }
        assert!(now_us().is_none());
        assert!(current().is_none());
        assert!(handoff().is_none());
    }

    #[test]
    fn flush_emits_prof_counter_and_gauge_events() {
        let p = Profiler::new();
        {
            let _a = p.activate("main");
            let _s = span("unit");
        }
        p.add_counter("pool.items", 3);
        p.add_counter("pool.items", 2);
        p.set_gauge("pool.w0.util", 0.75);
        let rec = MemoryRecorder::new();
        p.flush_events(&rec);
        let events = rec.events();
        assert!(events.iter().any(|e| matches!(e, Event::Prof(s) if s.name == "unit")));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Counter(c) if c.name == "pool.items" && c.delta == 5))
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Gauge(g) if g.name == "pool.w0.util"
                    && (g.value - 0.75).abs() < 1e-12))
        );
        // Flush drains.
        assert!(p.spans().is_empty());
    }
}
