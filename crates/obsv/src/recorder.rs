//! Event sinks: where telemetry goes.
//!
//! Recorders take `&self` so one recorder can be shared across the call
//! graph as a `&dyn Recorder`; implementations that accumulate state use
//! interior mutability. Recording must never fail loudly: a sink that loses
//! its backing store degrades to a no-op rather than panicking mid-training.

use crate::event::{Event, EpochEvent, GuardEvent};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A telemetry sink.
pub trait Recorder {
    /// Accepts one event. Implementations must not panic.
    fn record(&self, event: Event);
}

/// Discards every event (the default when telemetry is off).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}
}

/// Buffers events in memory, for tests and in-process report building.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every event recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        unpoison(self.events.lock()).clone()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        unpoison(self.events.lock()).len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The epoch events recorded so far, in order.
    pub fn epochs(&self) -> Vec<EpochEvent> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Epoch(ev) => Some(ev),
                _ => None,
            })
            .collect()
    }

    /// The guard events recorded so far, in order.
    pub fn guards(&self) -> Vec<GuardEvent> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Guard(ev) => Some(ev),
                _ => None,
            })
            .collect()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: Event) {
        unpoison(self.events.lock()).push(event);
    }
}

/// Writes one JSON object per line to a file.
///
/// Each event is flushed as it is recorded (events are low-rate — per epoch
/// or per simulated day — so durability beats buffering). Any I/O or
/// serialization error permanently degrades the recorder to
/// [`NullRecorder`] behavior: the error is reported to stderr once and
/// every later `record` is a no-op. A full disk must not kill a training
/// run that was going to succeed anyway.
#[derive(Debug)]
pub struct JsonlRecorder {
    path: PathBuf,
    writer: Mutex<Option<BufWriter<File>>>,
    warned: AtomicBool,
}

impl JsonlRecorder {
    /// Creates (truncating) a JSONL sink at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path.as_ref())?;
        Ok(Self::from_file(path.as_ref(), file))
    }

    /// Opens `path` for appending (creating it if missing), so a
    /// `generate` run can extend the telemetry of the `train` run that
    /// produced its model.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        Ok(Self::from_file(path.as_ref(), file))
    }

    fn from_file(path: &Path, file: File) -> Self {
        Self {
            path: path.to_path_buf(),
            writer: Mutex::new(Some(BufWriter::new(file))),
            warned: AtomicBool::new(false),
        }
    }

    /// The path this recorder writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True once an error has degraded this recorder to a no-op.
    pub fn is_degraded(&self) -> bool {
        unpoison(self.writer.lock()).is_none()
    }

    /// Flushes buffered output (also done on every record and on drop).
    pub fn flush(&self) -> std::io::Result<()> {
        match unpoison(self.writer.lock()).as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    fn warn_once(&self, what: &str) {
        if !self.warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: telemetry to {} disabled: {what}; continuing without it",
                self.path.display()
            );
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: Event) {
        let mut guard = unpoison(self.writer.lock());
        let Some(writer) = guard.as_mut() else {
            return;
        };
        let line = match serde_json::to_string(&event) {
            Ok(line) => line,
            Err(e) => {
                *guard = None;
                drop(guard);
                self.warn_once(&format!("serialization failed: {e}"));
                return;
            }
        };
        let wrote = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if let Err(e) = wrote {
            *guard = None;
            drop(guard);
            self.warn_once(&format!("write failed: {e}"));
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Writes one JSON object per line to standard error.
///
/// This sink exists for tools whose *stdout* is a machine-readable
/// document (`cloudgen-lint --json --telemetry -`): telemetry must never
/// interleave with the report stream, so it goes to the diagnostic stream
/// instead, where `lint --json | jq` cannot see it. Per the recorder
/// contract, serialization failures degrade to a silent no-op for that
/// event rather than panicking.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrJsonlRecorder;

impl StderrJsonlRecorder {
    /// Creates the sink (stateless; provided for constructor symmetry).
    pub fn new() -> Self {
        Self
    }
}

impl Recorder for StderrJsonlRecorder {
    fn record(&self, event: Event) {
        if let Ok(line) = serde_json::to_string(&event) {
            eprintln!("{line}");
        }
    }
}

/// Parses a JSONL telemetry file back into events.
///
/// Blank and unparseable lines are skipped (a crashed run may leave a torn
/// final line; forward-compatible readers should not choke on events they
/// do not know).
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<Event>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str(l).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GaugeEvent, GenEvent, SpanEvent};

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("obsv-test-{}-{name}", std::process::id()))
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Epoch(EpochEvent {
                stage: "flavor".into(),
                epoch: 0,
                mean_loss: 2.5,
                grad_norm_pre_clip: 4.0,
                grad_norm_pre_clip_max: 9.0,
                lr_factor: 1.0,
                tokens: 640,
                wall_ms: 10.0,
                skipped_steps: 0,
            }),
            Event::Gen(GenEvent {
                day: 6,
                periods: 288,
                batches: 40,
                jobs: 120,
                tokens: 170,
                wall_ms: 25.0,
                tokens_per_sec: 6800.0,
            }),
            Event::Gauge(GaugeEvent {
                name: "lr".into(),
                value: 3e-3,
            }),
            Event::Span(SpanEvent {
                name: "arrivals_fit".into(),
                wall_ms: 1.25,
            }),
        ]
    }

    #[test]
    fn null_recorder_accepts_everything() {
        let r = NullRecorder;
        for e in sample_events() {
            r.record(e);
        }
    }

    #[test]
    fn memory_recorder_preserves_order() {
        let r = MemoryRecorder::new();
        assert!(r.is_empty());
        for e in sample_events() {
            r.record(e);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.events(), sample_events());
        let epochs = r.epochs();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].stage, "flavor");
    }

    #[test]
    fn jsonl_round_trip() {
        let path = temp_path("roundtrip.jsonl");
        {
            let r = JsonlRecorder::create(&path).unwrap();
            for e in sample_events() {
                r.record(e);
            }
            assert!(!r.is_degraded());
        }
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, sample_events());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_append_extends_existing_file() {
        let path = temp_path("append.jsonl");
        let events = sample_events();
        {
            let r = JsonlRecorder::create(&path).unwrap();
            r.record(events[0].clone());
        }
        {
            let r = JsonlRecorder::append(&path).unwrap();
            r.record(events[1].clone());
        }
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, events[..2].to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_skips_torn_and_blank_lines() {
        let path = temp_path("torn.jsonl");
        let good = serde_json::to_string(&sample_events()[0]).unwrap();
        std::fs::write(&path, format!("{good}\n\n{{\"type\":\"Epo")).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn jsonl_degrades_instead_of_panicking_on_write_error() {
        // /dev/full reports ENOSPC on write: the recorder must warn and
        // degrade, not panic, and later records must be no-ops.
        let Ok(r) = JsonlRecorder::create("/dev/full") else {
            return; // environment without /dev/full
        };
        for e in sample_events() {
            r.record(e);
        }
        assert!(r.is_degraded());
        assert!(r.flush().is_ok());
    }
}
