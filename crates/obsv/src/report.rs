//! Run reports: aggregate a stream of events into per-stage training
//! summaries, generation throughput, and scheduler counters, rendered as
//! JSON or an aligned text table.

use crate::event::{Event, GuardEvent, LintEvent, ProfSpanEvent};
use crate::metrics::exact_quantile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Training summary for one model stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage name (`"flavor"`, `"lifetime"`).
    pub stage: String,
    /// Epochs recorded.
    pub epochs: usize,
    /// Mean loss of the first epoch.
    pub first_loss: f64,
    /// Mean loss of the last epoch.
    pub last_loss: f64,
    /// Mean pre-clip gradient norm across epochs.
    pub grad_norm_mean: f64,
    /// Max pre-clip gradient norm across epochs.
    pub grad_norm_max: f64,
    /// Total target tokens processed.
    pub tokens: usize,
    /// Total wall-clock training time, milliseconds.
    pub wall_ms_total: f64,
    /// Median epoch wall time, milliseconds.
    pub wall_ms_p50: f64,
    /// 95th-percentile epoch wall time, milliseconds.
    pub wall_ms_p95: f64,
    /// 99th-percentile epoch wall time, milliseconds.
    pub wall_ms_p99: f64,
}

/// Generation throughput summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenSummary {
    /// Simulated days covered by generation events.
    pub days: u64,
    /// Periods generated.
    pub periods: u64,
    /// Batches emitted.
    pub batches: u64,
    /// Jobs emitted.
    pub jobs: u64,
    /// Flavor tokens sampled.
    pub tokens: u64,
    /// Total generation wall time, milliseconds.
    pub wall_ms: f64,
    /// Jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Tokens per wall-clock second.
    pub tokens_per_sec: f64,
}

/// Scheduler-substrate summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedSummary {
    /// Jobs placed.
    pub placements: u64,
    /// Placement failures.
    pub rejections: u64,
    /// FFAR packing runs.
    pub ffar_evals: u64,
    /// Placement-cache hits.
    pub cache_hits: u64,
    /// Placement-cache misses.
    pub cache_misses: u64,
    /// Cache hit rate (0 if no accesses).
    pub cache_hit_rate: f64,
}

/// Aggregate of one named span across its occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpanSummary {
    /// Occurrences.
    pub count: u64,
    /// Total milliseconds.
    pub total_ms: f64,
    /// Longest single occurrence, milliseconds.
    pub max_ms: f64,
}

/// Aggregate of one profiler span name across its occurrences, with
/// work-derived rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Span name.
    pub name: String,
    /// Occurrences.
    pub count: u64,
    /// Total inclusive time, milliseconds.
    pub total_ms: f64,
    /// Total self time (inclusive minus same-thread children), milliseconds.
    pub self_ms: f64,
    /// Total flops accounted (inclusive).
    pub flops: u64,
    /// Total bytes moved accounted (inclusive).
    pub bytes: u64,
    /// Achieved GFLOP/s over the span's inclusive time (0 when no flops).
    pub gflops: f64,
    /// Arithmetic intensity, flops per byte (0 when no bytes).
    pub intensity: f64,
}

/// Profiler summary: span aggregates ranked by self-time, hottest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProfileSummary {
    /// Per-name aggregates, descending self-time.
    pub entries: Vec<ProfileEntry>,
}

impl ProfileSummary {
    fn from_prof_events(profs: &[&ProfSpanEvent]) -> Self {
        // Self time = inclusive duration minus the durations of direct
        // children, resolved through the parent links.
        let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
        for p in profs {
            if let Some(parent) = p.parent {
                *child_us.entry(parent).or_insert(0) += p.dur_us;
            }
        }
        #[derive(Default)]
        struct Acc {
            count: u64,
            total_us: u64,
            self_us: u64,
            flops: u64,
            bytes: u64,
        }
        let mut by_name: BTreeMap<&str, Acc> = BTreeMap::new();
        for p in profs {
            let a = by_name.entry(p.name.as_str()).or_default();
            a.count += 1;
            a.total_us += p.dur_us;
            a.self_us += p.dur_us.saturating_sub(child_us.get(&p.id).copied().unwrap_or(0));
            a.flops += p.flops;
            a.bytes += p.bytes;
        }
        let mut entries: Vec<ProfileEntry> = by_name
            .into_iter()
            .map(|(name, a)| {
                let total_s = a.total_us as f64 / 1e6;
                ProfileEntry {
                    name: name.to_string(),
                    count: a.count,
                    total_ms: a.total_us as f64 / 1e3,
                    self_ms: a.self_us as f64 / 1e3,
                    flops: a.flops,
                    bytes: a.bytes,
                    gflops: if a.flops > 0 && total_s > 0.0 {
                        a.flops as f64 / total_s / 1e9
                    } else {
                        0.0
                    },
                    intensity: if a.bytes > 0 {
                        a.flops as f64 / a.bytes as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        entries.sort_by(|a, b| b.self_ms.total_cmp(&a.self_ms).then(a.name.cmp(&b.name)));
        Self { entries }
    }
}

/// Resilience summary: guard interventions and checkpoint operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResilienceSummary {
    /// Guard interventions by action (`"rollback"`, `"lr-halved"`, …).
    pub guard_actions: BTreeMap<String, u64>,
    /// Total guard interventions.
    pub guard_total: u64,
    /// Checkpoint operations by kind (`"save"`, `"load"`, `"skip-corrupt"`).
    pub checkpoint_ops: BTreeMap<String, u64>,
    /// Total bytes written by `"save"` operations.
    pub checkpoint_bytes_saved: u64,
    /// The last few guard events verbatim, most recent last (capped so the
    /// report stays small on pathological runs).
    pub recent_guards: Vec<GuardEvent>,
}

impl ResilienceSummary {
    /// True when the run had no guard or checkpoint activity.
    pub fn is_empty(&self) -> bool {
        self.guard_actions.is_empty() && self.checkpoint_ops.is_empty()
    }
}

/// Everything a telemetry stream says about one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-stage training summaries (sorted by stage name).
    pub stages: Vec<StageSummary>,
    /// Generation throughput, if the run generated traces.
    pub generation: Option<GenSummary>,
    /// Scheduler counters, if the run exercised the scheduler substrate.
    pub scheduling: Option<SchedSummary>,
    /// Named counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Named gauges (last value wins).
    pub gauges: BTreeMap<String, f64>,
    /// Named span aggregates.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Most recent static-analysis run, if the stream recorded one.
    pub lint: Option<LintEvent>,
    /// Guard/checkpoint activity, if the run used the resilience layer.
    /// Defaults so reports serialized before this field existed still load.
    #[serde(default)]
    pub resilience: Option<ResilienceSummary>,
    /// Hierarchical-profiler span aggregates, if the run was profiled.
    /// Defaults so reports serialized before this field existed still load.
    #[serde(default)]
    pub profile: Option<ProfileSummary>,
}

impl RunReport {
    /// Builds a report from an event stream (any order, any mix).
    pub fn from_events(events: &[Event]) -> Self {
        let mut by_stage: BTreeMap<String, Vec<&crate::event::EpochEvent>> = BTreeMap::new();
        let mut gen: Option<GenSummary> = None;
        let mut sched: Option<SchedSummary> = None;
        let mut gen_days: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        let mut spans: BTreeMap<String, SpanSummary> = BTreeMap::new();
        let mut lint: Option<LintEvent> = None;
        let mut resilience: Option<ResilienceSummary> = None;
        let mut profs: Vec<&ProfSpanEvent> = Vec::new();
        /// Verbatim guard events kept in `recent_guards`.
        const RECENT_GUARDS_CAP: usize = 16;

        for event in events {
            match event {
                Event::Epoch(e) => by_stage.entry(e.stage.clone()).or_default().push(e),
                Event::Gen(e) => {
                    let g = gen.get_or_insert(GenSummary {
                        days: 0,
                        periods: 0,
                        batches: 0,
                        jobs: 0,
                        tokens: 0,
                        wall_ms: 0.0,
                        jobs_per_sec: 0.0,
                        tokens_per_sec: 0.0,
                    });
                    gen_days.insert(e.day);
                    g.periods += e.periods;
                    g.batches += e.batches;
                    g.jobs += e.jobs;
                    g.tokens += e.tokens;
                    g.wall_ms += e.wall_ms;
                }
                Event::Sched(e) => {
                    let s = sched.get_or_insert(SchedSummary {
                        placements: 0,
                        rejections: 0,
                        ffar_evals: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_hit_rate: 0.0,
                    });
                    s.placements += e.placements;
                    s.rejections += e.rejections;
                    s.ffar_evals += e.ffar_evals;
                    s.cache_hits += e.cache_hits;
                    s.cache_misses += e.cache_misses;
                }
                Event::Counter(e) => *counters.entry(e.name.clone()).or_insert(0) += e.delta,
                Event::Gauge(e) => {
                    gauges.insert(e.name.clone(), e.value);
                }
                Event::Span(e) => {
                    let s = spans.entry(e.name.clone()).or_insert(SpanSummary {
                        count: 0,
                        total_ms: 0.0,
                        max_ms: 0.0,
                    });
                    s.count += 1;
                    s.total_ms += e.wall_ms;
                    s.max_ms = s.max_ms.max(e.wall_ms);
                }
                Event::Lint(e) => lint = Some(e.clone()),
                Event::Guard(e) => {
                    let r = resilience.get_or_insert_with(ResilienceSummary::default);
                    *r.guard_actions.entry(e.action.clone()).or_insert(0) += 1;
                    r.guard_total += 1;
                    if r.recent_guards.len() == RECENT_GUARDS_CAP {
                        r.recent_guards.remove(0);
                    }
                    r.recent_guards.push(e.clone());
                }
                Event::Checkpoint(e) => {
                    let r = resilience.get_or_insert_with(ResilienceSummary::default);
                    *r.checkpoint_ops.entry(e.kind.clone()).or_insert(0) += 1;
                    if e.kind == "save" {
                        r.checkpoint_bytes_saved += e.bytes;
                    }
                }
                Event::Prof(e) => profs.push(e),
            }
        }

        let profile = if profs.is_empty() {
            None
        } else {
            Some(ProfileSummary::from_prof_events(&profs))
        };

        if let Some(g) = gen.as_mut() {
            g.days = gen_days.len() as u64;
            let secs = g.wall_ms / 1000.0;
            if secs > 0.0 {
                g.jobs_per_sec = g.jobs as f64 / secs;
                g.tokens_per_sec = g.tokens as f64 / secs;
            }
        }
        if let Some(s) = sched.as_mut() {
            let accesses = s.cache_hits + s.cache_misses;
            if accesses > 0 {
                s.cache_hit_rate = s.cache_hits as f64 / accesses as f64;
            }
        }

        let stages = by_stage
            .into_iter()
            .map(|(stage, epochs)| {
                let mut walls: Vec<f64> = epochs.iter().map(|e| e.wall_ms).collect();
                walls.sort_by(f64::total_cmp);
                let n = epochs.len();
                StageSummary {
                    stage,
                    epochs: n,
                    first_loss: epochs.first().map_or(0.0, |e| e.mean_loss),
                    last_loss: epochs.last().map_or(0.0, |e| e.mean_loss),
                    grad_norm_mean: epochs.iter().map(|e| e.grad_norm_pre_clip).sum::<f64>()
                        / n.max(1) as f64,
                    grad_norm_max: epochs
                        .iter()
                        .map(|e| e.grad_norm_pre_clip_max)
                        .fold(0.0, f64::max),
                    tokens: epochs.iter().map(|e| e.tokens).sum(),
                    wall_ms_total: walls.iter().sum(),
                    wall_ms_p50: exact_quantile(&walls, 0.50),
                    wall_ms_p95: exact_quantile(&walls, 0.95),
                    wall_ms_p99: exact_quantile(&walls, 0.99),
                }
            })
            .collect();

        Self {
            stages,
            generation: gen,
            scheduling: sched,
            counters,
            gauges,
            spans,
            lint,
            resilience,
            profile,
        }
    }

    /// True if the event stream contributed nothing reportable.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
            && self.generation.is_none()
            && self.scheduling.is_none()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.lint.is_none()
            && self.resilience.is_none()
            && self.profile.is_none()
    }

    /// The report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }

    /// The report as an aligned text table (also what `Display` prints).
    pub fn render_table(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "run report");
        let _ = writeln!(out, "==========");

        if !self.stages.is_empty() {
            let _ = writeln!(out, "\ntraining");
            let _ = writeln!(
                out,
                "  {:<10} {:>6} {:>11} {:>11} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
                "stage",
                "epochs",
                "first-loss",
                "last-loss",
                "grad-mean",
                "grad-max",
                "p50-ms",
                "p95-ms",
                "p99-ms",
                "tokens"
            );
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "  {:<10} {:>6} {:>11.4} {:>11.4} {:>10.3} {:>10.3} {:>9.1} {:>9.1} {:>9.1} {:>10}",
                    s.stage,
                    s.epochs,
                    s.first_loss,
                    s.last_loss,
                    s.grad_norm_mean,
                    s.grad_norm_max,
                    s.wall_ms_p50,
                    s.wall_ms_p95,
                    s.wall_ms_p99,
                    s.tokens
                );
            }
        }

        if let Some(g) = &self.generation {
            let _ = writeln!(out, "\ngeneration");
            let _ = writeln!(
                out,
                "  days {}  periods {}  batches {}  jobs {}  tokens {}",
                g.days, g.periods, g.batches, g.jobs, g.tokens
            );
            let _ = writeln!(
                out,
                "  wall {:.1} ms  jobs/s {:.1}  tokens/s {:.1}",
                g.wall_ms, g.jobs_per_sec, g.tokens_per_sec
            );
        }

        if let Some(s) = &self.scheduling {
            let _ = writeln!(out, "\nscheduling");
            let _ = writeln!(
                out,
                "  placements {}  rejections {}  ffar-evals {}",
                s.placements, s.rejections, s.ffar_evals
            );
            let _ = writeln!(
                out,
                "  cache {}/{} hits ({:.1}%)",
                s.cache_hits,
                s.cache_hits + s.cache_misses,
                s.cache_hit_rate * 100.0
            );
        }

        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<24} {v:>12}");
            }
        }

        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<24} {v:>12.4}");
            }
        }

        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nspans");
            let _ = writeln!(
                out,
                "  {:<24} {:>6} {:>12} {:>12}",
                "name", "count", "total-ms", "max-ms"
            );
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>6} {:>12.1} {:>12.1}",
                    name, s.count, s.total_ms, s.max_ms
                );
            }
        }

        if let Some(p) = &self.profile {
            let _ = writeln!(out, "\nprofile (by self-time)");
            let _ = writeln!(
                out,
                "  {:<18} {:>7} {:>11} {:>11} {:>9} {:>9}",
                "span", "count", "total-ms", "self-ms", "gflop/s", "flop/B"
            );
            for e in &p.entries {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>7} {:>11.2} {:>11.2} {:>9.2} {:>9.2}",
                    e.name, e.count, e.total_ms, e.self_ms, e.gflops, e.intensity
                );
            }
        }

        if let Some(r) = &self.resilience {
            let _ = writeln!(out, "\nresilience");
            if !r.guard_actions.is_empty() {
                let actions: Vec<String> = r
                    .guard_actions
                    .iter()
                    .map(|(k, v)| format!("{k} {v}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  guard events {} ({})",
                    r.guard_total,
                    actions.join(", ")
                );
            }
            if !r.checkpoint_ops.is_empty() {
                let ops: Vec<String> = r
                    .checkpoint_ops
                    .iter()
                    .map(|(k, v)| format!("{k} {v}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  checkpoints {} ({} bytes saved)",
                    ops.join(", "),
                    r.checkpoint_bytes_saved
                );
            }
            for g in &r.recent_guards {
                let _ = writeln!(
                    out,
                    "  [{} e{} try{}] {}: {}",
                    g.stage, g.epoch, g.attempt, g.action, g.detail
                );
            }
        }

        if let Some(l) = &self.lint {
            let _ = writeln!(out, "\nstatic analysis");
            let _ = writeln!(
                out,
                "  files {}  violations {}  suppressed {}  rules-hit {}  wall {:.1} ms",
                l.files, l.violations, l.suppressed, l.rules_hit, l.wall_ms
            );
        }

        if self.is_empty() {
            let _ = writeln!(out, "\n(no telemetry events)");
        }
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{
        CounterEvent, EpochEvent, GaugeEvent, GenEvent, SchedEvent, SpanEvent,
    };

    fn epoch(stage: &str, epoch: usize, loss: f64, wall: f64) -> Event {
        Event::Epoch(EpochEvent {
            stage: stage.into(),
            epoch,
            mean_loss: loss,
            grad_norm_pre_clip: 2.0,
            grad_norm_pre_clip_max: 5.0,
            lr_factor: 1.0,
            tokens: 100,
            wall_ms: wall,
            skipped_steps: 0,
        })
    }

    #[test]
    fn aggregates_stages_in_order() {
        let events = vec![
            epoch("lifetime", 0, 1.0, 10.0),
            epoch("flavor", 0, 3.0, 20.0),
            epoch("flavor", 1, 2.0, 40.0),
            epoch("lifetime", 1, 0.5, 30.0),
        ];
        let r = RunReport::from_events(&events);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].stage, "flavor");
        assert_eq!(r.stages[0].epochs, 2);
        assert!((r.stages[0].first_loss - 3.0).abs() < 1e-12);
        assert!((r.stages[0].last_loss - 2.0).abs() < 1e-12);
        assert!((r.stages[0].wall_ms_total - 60.0).abs() < 1e-12);
        assert!((r.stages[0].wall_ms_p50 - 30.0).abs() < 1e-12);
        assert_eq!(r.stages[0].tokens, 200);
        assert!((r.stages[0].grad_norm_max - 5.0).abs() < 1e-12);
        assert_eq!(r.stages[1].stage, "lifetime");
        assert!(r.generation.is_none());
        assert!(r.scheduling.is_none());
    }

    #[test]
    fn aggregates_generation_and_scheduling() {
        let events = vec![
            Event::Gen(GenEvent {
                day: 6,
                periods: 288,
                batches: 10,
                jobs: 30,
                tokens: 45,
                wall_ms: 500.0,
                tokens_per_sec: 90.0,
            }),
            Event::Gen(GenEvent {
                day: 7,
                periods: 288,
                batches: 20,
                jobs: 70,
                tokens: 105,
                wall_ms: 500.0,
                tokens_per_sec: 210.0,
            }),
            Event::Sched(SchedEvent {
                placements: 40,
                rejections: 1,
                ffar_evals: 1,
                cache_hits: 30,
                cache_misses: 10,
            }),
        ];
        let r = RunReport::from_events(&events);
        let g = r.generation.unwrap();
        assert_eq!(g.days, 2);
        assert_eq!(g.jobs, 100);
        assert_eq!(g.tokens, 150);
        assert!((g.jobs_per_sec - 100.0).abs() < 1e-9);
        assert!((g.tokens_per_sec - 150.0).abs() < 1e-9);
        let s = r.scheduling.unwrap();
        assert_eq!(s.placements, 40);
        assert!((s.cache_hit_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn aggregates_counters_gauges_spans() {
        let events = vec![
            Event::Counter(CounterEvent {
                name: "evals".into(),
                delta: 3,
            }),
            Event::Counter(CounterEvent {
                name: "evals".into(),
                delta: 2,
            }),
            Event::Gauge(GaugeEvent {
                name: "lr".into(),
                value: 1.0,
            }),
            Event::Gauge(GaugeEvent {
                name: "lr".into(),
                value: 0.1,
            }),
            Event::Span(SpanEvent {
                name: "fit".into(),
                wall_ms: 5.0,
            }),
            Event::Span(SpanEvent {
                name: "fit".into(),
                wall_ms: 7.0,
            }),
        ];
        let r = RunReport::from_events(&events);
        assert_eq!(r.counters["evals"], 5);
        assert!((r.gauges["lr"] - 0.1).abs() < 1e-12);
        let s = &r.spans["fit"];
        assert_eq!(s.count, 2);
        assert!((s.total_ms - 12.0).abs() < 1e-12);
        assert!((s.max_ms - 7.0).abs() < 1e-12);
    }

    #[test]
    fn renders_table_and_json() {
        let events = vec![epoch("flavor", 0, 3.0, 20.0), epoch("flavor", 1, 2.0, 40.0)];
        let r = RunReport::from_events(&events);
        let table = r.render_table();
        assert!(table.contains("run report"), "{table}");
        assert!(table.contains("flavor"), "{table}");
        assert!(table.contains("p95-ms"), "{table}");
        let json = r.to_json();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn lint_event_surfaces_in_report() {
        let events = vec![Event::Lint(crate::event::LintEvent {
            files: 110,
            violations: 0,
            suppressed: 41,
            rules_hit: 0,
            wall_ms: 6.5,
        })];
        let r = RunReport::from_events(&events);
        assert!(!r.is_empty());
        let lint = r.lint.as_ref().expect("lint section");
        assert_eq!(lint.files, 110);
        let table = r.render_table();
        assert!(table.contains("static analysis"), "{table}");
        assert!(table.contains("suppressed 41"), "{table}");
        let back: RunReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn guard_and_checkpoint_events_surface_in_report() {
        use crate::event::{CheckpointEvent, GuardEvent};
        let guard = |action: &str, attempt: u32| {
            Event::Guard(GuardEvent {
                stage: "flavor".into(),
                epoch: 2,
                action: action.into(),
                detail: "test".into(),
                grad_norm: Some(9.0),
                loss: None,
                attempt,
                lr_scale: 0.5,
            })
        };
        let ckpt = |kind: &str, bytes: u64| {
            Event::Checkpoint(CheckpointEvent {
                stage: "flavor".into(),
                epoch: 2,
                kind: kind.into(),
                bytes,
                wall_ms: 1.0,
            })
        };
        let events = vec![
            ckpt("save", 100),
            ckpt("save", 150),
            guard("grad-spike", 0),
            guard("rollback", 0),
            guard("lr-halved", 0),
            ckpt("skip-corrupt", 0),
            ckpt("load", 150),
        ];
        let r = RunReport::from_events(&events);
        assert!(!r.is_empty());
        let res = r.resilience.as_ref().expect("resilience section");
        assert_eq!(res.guard_total, 3);
        assert_eq!(res.guard_actions["rollback"], 1);
        assert_eq!(res.checkpoint_ops["save"], 2);
        assert_eq!(res.checkpoint_ops["skip-corrupt"], 1);
        assert_eq!(res.checkpoint_bytes_saved, 250);
        assert_eq!(res.recent_guards.len(), 3);
        let table = r.render_table();
        assert!(table.contains("resilience"), "{table}");
        assert!(table.contains("rollback"), "{table}");
        assert!(table.contains("250 bytes saved"), "{table}");
        let back: RunReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn recent_guards_are_capped() {
        use crate::event::GuardEvent;
        let events: Vec<Event> = (0..40)
            .map(|i| {
                Event::Guard(GuardEvent {
                    stage: "flavor".into(),
                    epoch: i,
                    action: "step-skipped".into(),
                    detail: String::new(),
                    grad_norm: None,
                    loss: None,
                    attempt: 0,
                    lr_scale: 1.0,
                })
            })
            .collect();
        let r = RunReport::from_events(&events);
        let res = r.resilience.unwrap();
        assert_eq!(res.guard_total, 40);
        assert_eq!(res.recent_guards.len(), 16);
        // Most recent kept: the last event's epoch survives.
        assert_eq!(res.recent_guards.last().unwrap().epoch, 39);
    }

    fn prof(name: &str, id: u64, parent: Option<u64>, dur_us: u64, flops: u64, bytes: u64) -> Event {
        Event::Prof(crate::event::ProfSpanEvent {
            name: name.into(),
            id,
            parent,
            tid: 0,
            start_us: 0,
            dur_us,
            flops,
            bytes,
        })
    }

    #[test]
    fn profile_section_ranks_by_self_time() {
        // epoch(10ms) ⊃ minibatch(8ms) ⊃ gemm(6ms): self times 2/2/6 ms.
        let events = vec![
            prof("epoch", 1, None, 10_000, 0, 0),
            prof("minibatch", 2, Some(1), 8_000, 0, 0),
            prof("gemm", 3, Some(2), 6_000, 12_000_000, 1_000_000),
        ];
        let r = RunReport::from_events(&events);
        let p = r.profile.as_ref().expect("profile section");
        assert_eq!(p.entries.len(), 3);
        // gemm has the largest self time and leads the ranking.
        assert_eq!(p.entries[0].name, "gemm");
        assert!((p.entries[0].self_ms - 6.0).abs() < 1e-9);
        assert!((p.entries[0].total_ms - 6.0).abs() < 1e-9);
        // 12 Mflop over 6 ms = 2 GFLOP/s; 12 flops per byte.
        assert!((p.entries[0].gflops - 2.0).abs() < 1e-9, "{}", p.entries[0].gflops);
        assert!((p.entries[0].intensity - 12.0).abs() < 1e-9);
        let epoch = p.entries.iter().find(|e| e.name == "epoch").unwrap();
        assert!((epoch.total_ms - 10.0).abs() < 1e-9);
        assert!((epoch.self_ms - 2.0).abs() < 1e-9);
        let table = r.render_table();
        assert!(table.contains("profile (by self-time)"), "{table}");
        assert!(table.contains("gemm"), "{table}");
        let back: RunReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn reports_without_profile_field_still_load() {
        let r = RunReport::from_events(&[epoch("flavor", 0, 1.0, 5.0)]);
        let mut json: serde_json::Value = serde_json::from_str(&r.to_json()).unwrap();
        json.as_object_mut().unwrap().remove("profile");
        let back: RunReport = serde_json::from_value(json).unwrap();
        assert!(back.profile.is_none());
        assert_eq!(back.stages, r.stages);
    }

    #[test]
    fn empty_report_says_so() {
        let r = RunReport::from_events(&[]);
        assert!(r.is_empty());
        assert!(r.render_table().contains("no telemetry events"));
    }
}
