//! Typed telemetry events.
//!
//! Every event is a flat struct of plain scalars so a JSONL sink stays one
//! self-describing object per line (`{"type": "Epoch", "stage": ...}`), and
//! downstream tooling (the `report` subcommand, notebooks, `jq`) can consume
//! it without a schema registry.

use serde::{Deserialize, Serialize};

/// One training epoch of an LSTM stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochEvent {
    /// Which model emitted this (`"flavor"` or `"lifetime"`).
    pub stage: String,
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's targets.
    pub mean_loss: f64,
    /// Mean pre-clip global gradient norm over the epoch's Adam steps.
    pub grad_norm_pre_clip: f64,
    /// Max pre-clip global gradient norm over the epoch's Adam steps.
    pub grad_norm_pre_clip_max: f64,
    /// Learning-rate multiplier applied this epoch (step decay).
    pub lr_factor: f64,
    /// Target tokens (flavor steps / masked hazard outputs) processed.
    pub tokens: usize,
    /// Wall-clock time spent in the epoch, milliseconds.
    pub wall_ms: f64,
    /// Optimizer steps skipped because the gradient norm was non-finite
    /// (the `nn::StepError` skip-step path).
    #[serde(default)]
    pub skipped_steps: usize,
}

/// Generation throughput over one simulated day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenEvent {
    /// Simulated day index (period * 300 s / 86 400 s).
    pub day: u64,
    /// Periods generated within the day.
    pub periods: u64,
    /// Batches emitted.
    pub batches: u64,
    /// Jobs emitted.
    pub jobs: u64,
    /// Flavor-LSTM tokens sampled (jobs + EOB tokens, including re-rolls).
    pub tokens: u64,
    /// Wall-clock time spent generating the day, milliseconds.
    pub wall_ms: f64,
    /// Sampling throughput, tokens per wall-clock second.
    pub tokens_per_sec: f64,
}

/// Scheduler-substrate counters from one packing run or cache sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedEvent {
    /// Jobs successfully placed on a server.
    pub placements: u64,
    /// Placement failures (first-failure stops a packing run).
    pub rejections: u64,
    /// FFAR packing runs evaluated.
    pub ffar_evals: u64,
    /// Placement-cache hits.
    pub cache_hits: u64,
    /// Placement-cache misses.
    pub cache_misses: u64,
}

/// A named monotonic counter increment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEvent {
    /// Counter name.
    pub name: String,
    /// Increment since the counter's last flush.
    pub delta: u64,
}

/// A named point-in-time measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEvent {
    /// Gauge name.
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// A completed wall-clock span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Elapsed wall-clock time, milliseconds.
    pub wall_ms: f64,
}

/// One `cloudgen-lint` run over the workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintEvent {
    /// `.rs` files scanned.
    pub files: u64,
    /// Violations that survived suppression.
    pub violations: u64,
    /// Violations silenced by an annotated `lint:allow`.
    pub suppressed: u64,
    /// Distinct rules with at least one violation.
    pub rules_hit: u64,
    /// Wall-clock time for the scan, milliseconds.
    pub wall_ms: f64,
}

/// A divergence-guard intervention during training.
///
/// Emitted by the resilience layer's `TrainGuard` whenever it observes or
/// reacts to instability: a non-finite loss, a gradient-norm spike, a
/// skipped optimizer step, a rollback to the last good state, a
/// learning-rate halving, or retry-budget exhaustion.
///
/// Loss and gradient-norm fields are `Option` because the values that trip
/// a guard are frequently NaN/Inf, which JSON cannot represent as numbers
/// (`serde_json` would write `null` and fail the round-trip on a plain
/// `f64`); `None` here means "not applicable", while a non-finite trigger is
/// described in `detail`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardEvent {
    /// Which model was training (`"flavor"` or `"lifetime"`).
    pub stage: String,
    /// Zero-based epoch index the intervention happened in.
    pub epoch: usize,
    /// What the guard did: `"nan-loss"`, `"grad-spike"`, `"step-skipped"`,
    /// `"rollback"`, `"lr-halved"`, or `"retry-exhausted"`.
    pub action: String,
    /// Human-readable context (threshold values, file names, etc.).
    pub detail: String,
    /// Pre-clip gradient norm at the trigger, when finite.
    pub grad_norm: Option<f64>,
    /// Step or epoch loss at the trigger, when finite.
    pub loss: Option<f64>,
    /// Retry attempt number for this epoch (0 on the first try).
    pub attempt: u32,
    /// Learning-rate scale in effect after the intervention (1.0 = nominal).
    pub lr_scale: f64,
}

/// One checkpoint-store operation (save, load, or corrupt-file skip).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEvent {
    /// Which model the checkpoint belongs to (`"flavor"` or `"lifetime"`).
    pub stage: String,
    /// Epoch cursor recorded in the checkpoint (next epoch to run).
    pub epoch: usize,
    /// Operation: `"save"`, `"load"`, or `"skip-corrupt"`.
    pub kind: String,
    /// Size of the checkpoint file in bytes (0 when unknown).
    pub bytes: u64,
    /// Wall-clock time for the operation, milliseconds.
    pub wall_ms: f64,
}

/// One completed profiling span from the hierarchical profiler
/// ([`crate::profile`]): a named interval with parent/thread linkage and
/// the flops/bytes accounted on its thread while it was open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfSpanEvent {
    /// Span name (`"gemm"`, `"epoch"`, …).
    pub name: String,
    /// Unique id within the run.
    pub id: u64,
    /// Enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Thread lane the span ran on.
    pub tid: u64,
    /// Start, microseconds since the profiler's origin.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Floating-point operations accounted while open (inclusive).
    pub flops: u64,
    /// Bytes moved accounted while open (inclusive).
    pub bytes: u64,
}

/// The closed set of telemetry events a [`crate::Recorder`] accepts.
///
/// Serialized internally tagged so each JSONL line carries its own `type`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum Event {
    /// Per-epoch training diagnostics.
    Epoch(EpochEvent),
    /// Per-simulated-day generation throughput.
    Gen(GenEvent),
    /// Scheduler placement/cache counters.
    Sched(SchedEvent),
    /// Counter increment.
    Counter(CounterEvent),
    /// Gauge sample.
    Gauge(GaugeEvent),
    /// Completed timer span.
    Span(SpanEvent),
    /// Static-analysis (`cloudgen-lint`) run summary.
    Lint(LintEvent),
    /// Divergence-guard intervention.
    Guard(GuardEvent),
    /// Checkpoint store operation.
    Checkpoint(CheckpointEvent),
    /// Completed hierarchical-profiler span.
    Prof(ProfSpanEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_tag_with_type() {
        let e = Event::Sched(SchedEvent {
            placements: 3,
            rejections: 1,
            ffar_evals: 1,
            cache_hits: 0,
            cache_misses: 0,
        });
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"type\":\"Sched\""), "{json}");
        assert!(json.contains("\"placements\":3"), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn lint_event_round_trips() {
        let e = Event::Lint(LintEvent {
            files: 110,
            violations: 2,
            suppressed: 41,
            rules_hit: 1,
            wall_ms: 8.25,
        });
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"type\":\"Lint\""), "{json}");
        assert!(json.contains("\"suppressed\":41"), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn epoch_event_round_trips() {
        let e = Event::Epoch(EpochEvent {
            stage: "flavor".into(),
            epoch: 4,
            mean_loss: 0.25,
            grad_norm_pre_clip: 1.5,
            grad_norm_pre_clip_max: 3.0,
            lr_factor: 0.3,
            tokens: 1024,
            wall_ms: 12.5,
            skipped_steps: 0,
        });
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn epoch_event_without_skipped_steps_defaults_to_zero() {
        // JSONL files written before the resilience layer lack the field.
        let json = r#"{"type":"Epoch","stage":"flavor","epoch":0,
            "mean_loss":1.0,"grad_norm_pre_clip":1.0,
            "grad_norm_pre_clip_max":2.0,"lr_factor":1.0,
            "tokens":10,"wall_ms":1.0}"#;
        let e: Event = serde_json::from_str(json).unwrap();
        match e {
            Event::Epoch(ep) => assert_eq!(ep.skipped_steps, 0),
            other => panic!("expected Epoch, got {other:?}"),
        }
    }

    #[test]
    fn guard_event_round_trips_with_none_fields() {
        let e = Event::Guard(GuardEvent {
            stage: "flavor".into(),
            epoch: 3,
            action: "rollback".into(),
            detail: "loss became non-finite at step 17".into(),
            grad_norm: None,
            loss: None,
            attempt: 1,
            lr_scale: 0.5,
        });
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"type\":\"Guard\""), "{json}");
        assert!(json.contains("\"action\":\"rollback\""), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn prof_span_event_round_trips() {
        let e = Event::Prof(ProfSpanEvent {
            name: "gemm".into(),
            id: 7,
            parent: Some(3),
            tid: 1,
            start_us: 120,
            dur_us: 48,
            flops: 524_288,
            bytes: 98_304,
        });
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"type\":\"Prof\""), "{json}");
        assert!(json.contains("\"flops\":524288"), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn checkpoint_event_round_trips() {
        let e = Event::Checkpoint(CheckpointEvent {
            stage: "lifetime".into(),
            epoch: 5,
            kind: "save".into(),
            bytes: 4096,
            wall_ms: 2.25,
        });
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"type\":\"Checkpoint\""), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
