//! Measurement primitives: counters, gauges, span timers, histograms.

use crate::event::{CounterEvent, Event, GaugeEvent, SpanEvent};
use crate::recorder::Recorder;
use std::time::Instant;

/// A named monotonic counter.
///
/// Increment locally (no recorder in the hot path); [`Counter::flush`]
/// emits the delta accumulated since the previous flush.
#[derive(Debug, Clone)]
pub struct Counter {
    name: String,
    total: u64,
    emitted: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            total: 0,
            emitted: 0,
        }
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.total += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.total
    }

    /// Emits the increment since the last flush (no event if unchanged).
    pub fn flush(&mut self, rec: &dyn Recorder) {
        let delta = self.total - self.emitted;
        if delta > 0 {
            rec.record(Event::Counter(CounterEvent {
                name: self.name.clone(),
                delta,
            }));
            self.emitted = self.total;
        }
    }
}

/// A named point-in-time value.
#[derive(Debug, Clone)]
pub struct Gauge {
    name: String,
    value: f64,
}

impl Gauge {
    /// Creates a gauge at 0.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: 0.0,
        }
    }

    /// Sets the current value.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Emits the current value.
    pub fn emit(&self, rec: &dyn Recorder) {
        rec.record(Event::Gauge(GaugeEvent {
            name: self.name.clone(),
            value: self.value,
        }));
    }
}

/// A plain monotonic stopwatch: [`SpanTimer`] without the name or the
/// event. This is the sanctioned way to measure wall time outside this
/// crate — the `ambient-time` lint rule flags direct `Instant::now()`
/// calls so all clock reads funnel through here.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed so far (monotonic: never decreases).
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_s() * 1000.0
    }
}

/// A wall-clock budget: a [`Stopwatch`] plus a millisecond allowance.
///
/// Like [`Stopwatch`], this is the sanctioned way for the rest of the
/// workspace to ask "has my time budget run out?" without reading the
/// ambient clock directly (`ambient-time` / `clock-stays-in-obsv`).
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Stopwatch,
    budget_ms: f64,
}

impl Deadline {
    /// Starts a deadline `budget_ms` milliseconds from now.
    pub fn after_ms(budget_ms: f64) -> Self {
        Self {
            start: Stopwatch::new(),
            budget_ms,
        }
    }

    /// The configured allowance, milliseconds.
    pub fn budget_ms(&self) -> f64 {
        self.budget_ms
    }

    /// Milliseconds spent since the deadline was armed.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed_ms()
    }

    /// Milliseconds left before expiry (0 once expired).
    pub fn remaining_ms(&self) -> f64 {
        (self.budget_ms - self.start.elapsed_ms()).max(0.0)
    }

    /// Whether the allowance has been spent.
    pub fn expired(&self) -> bool {
        self.start.elapsed_ms() >= self.budget_ms
    }
}

/// A wall-clock span backed by a monotonic [`Instant`].
#[derive(Debug, Clone)]
pub struct SpanTimer {
    name: String,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    pub fn start(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed so far (monotonic: never decreases).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }

    /// Stops the span, emits a [`SpanEvent`], and returns the elapsed
    /// milliseconds.
    pub fn finish(self, rec: &dyn Recorder) -> f64 {
        let wall_ms = self.elapsed_ms();
        rec.record(Event::Span(SpanEvent {
            name: self.name,
            wall_ms,
        }));
        wall_ms
    }
}

/// A fixed-bucket histogram with quantile queries.
///
/// Buckets are `(prev_upper, upper]` for each configured finite upper edge,
/// plus one open overflow bucket. Quantiles interpolate linearly within the
/// owning bucket, clamped to the observed min/max, so a histogram of `n`
/// uniform values over `k` buckets answers quantiles with at most one
/// bucket-width of error.
#[derive(Debug, Clone)]
pub struct Histogram {
    uppers: Vec<f64>,
    /// `uppers.len() + 1` buckets; the last is the open overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given finite bucket upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `uppers` is empty or not strictly increasing.
    pub fn new(uppers: Vec<f64>) -> Self {
        assert!(!uppers.is_empty(), "histogram needs at least one bucket");
        assert!(
            uppers.windows(2).all(|w| w[0] < w[1]),
            "bucket edges must be strictly increasing"
        );
        let n = uppers.len() + 1;
        Self {
            uppers,
            counts: vec![0; n],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` equal-width buckets spanning `[lo, hi]` (plus the overflow
    /// bucket above `hi`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && lo < hi, "invalid linear histogram spec");
        let width = (hi - lo) / n as f64;
        Self::new((1..=n).map(|i| lo + width * i as f64).collect())
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        let b = self.uppers.partition_point(|&u| u < v);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Per-bucket observation counts: one slot per configured upper edge
    /// (bucket `i` covers `(uppers[i-1], uppers[i]]`) plus the trailing
    /// open overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean of the recorded observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded observations,
    /// interpolated within the owning bucket. Returns 0 for an empty
    /// histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return 0.0;
        }
        // The extreme quantiles are known exactly: clamp to the observed
        // min/max rather than interpolating inside the owning bucket
        // (interpolation would report min + width/count for q = 0).
        // lint:allow(float-eq): only the exact literal q = 0.0 means "the minimum"; near-zero quantiles must interpolate
        if q == 0.0 {
            return self.min;
        }
        // lint:allow(float-eq): only the exact literal q = 1.0 means "the maximum"; near-one quantiles must interpolate
        if q == 1.0 {
            return self.max;
        }
        // Rank in 1..=total of the order statistic we want.
        // lint:allow(lossy-cast): q is validated in [0, 1], so the product is finite and non-negative
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lo = if b == 0 { self.min } else { self.uppers[b - 1] };
                let hi = if b < self.uppers.len() {
                    self.uppers[b]
                } else {
                    self.max
                };
                let lo = lo.max(self.min);
                let hi = hi.min(self.max);
                if hi <= lo {
                    return lo;
                }
                let frac = (target - cum) as f64 / c as f64;
                return lo + frac * (hi - lo);
            }
            cum += c;
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Exact linearly-interpolated quantile of an already-sorted slice
/// (0 for an empty slice). Used by run reports, where the full sample fits
/// in memory; use [`Histogram`] for streaming data.
pub fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    // lint:allow(lossy-cast): pos is finite and within [0, len-1] since q was validated
    let lo = pos.floor() as usize;
    // lint:allow(lossy-cast): pos is finite and within [0, len-1] since q was validated
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn counter_flushes_deltas() {
        let rec = MemoryRecorder::new();
        let mut c = Counter::new("placements");
        c.flush(&rec); // nothing yet: no event
        assert!(rec.is_empty());
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        c.flush(&rec);
        c.add(2);
        c.flush(&rec);
        let deltas: Vec<u64> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Counter(c) => Some(c.delta),
                _ => None,
            })
            .collect();
        assert_eq!(deltas, vec![5, 2]);
    }

    #[test]
    fn gauge_emits_current_value() {
        let rec = MemoryRecorder::new();
        let mut g = Gauge::new("lr");
        g.set(0.003);
        g.emit(&rec);
        match &rec.events()[0] {
            Event::Gauge(ev) => {
                assert_eq!(ev.name, "lr");
                assert!((ev.value - 0.003).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn span_timer_is_monotone() {
        let rec = MemoryRecorder::new();
        let span = SpanTimer::start("work");
        let a = span.elapsed_ms();
        // Burn a little time so the second reading strictly advances on
        // any realistic clock resolution.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        assert!(acc != 1, "keep the loop");
        let b = span.elapsed_ms();
        assert!(a >= 0.0);
        assert!(b >= a, "elapsed went backwards: {a} -> {b}");
        let total = span.finish(&rec);
        assert!(total >= b);
        match &rec.events()[0] {
            Event::Span(ev) => assert!((ev.wall_ms - total).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadline_expiry_and_remaining() {
        let d = Deadline::after_ms(1e9);
        assert!(!d.expired());
        assert!(d.remaining_ms() > 0.0);
        assert!((d.budget_ms() - 1e9).abs() < 1e-9);
        let expired = Deadline::after_ms(0.0);
        assert!(expired.expired());
        assert_eq!(expired.remaining_ms(), 0.0);
    }

    #[test]
    fn histogram_quantiles_on_uniform_data() {
        let mut h = Histogram::linear(0.0, 100.0, 10);
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert!((h.p50() - 50.0).abs() < 1e-9, "p50 {}", h.p50());
        assert!((h.p95() - 95.0).abs() < 1e-9, "p95 {}", h.p95());
        assert!((h.p99() - 99.0).abs() < 1e-9, "p99 {}", h.p99());
    }

    #[test]
    fn histogram_handles_point_mass_and_overflow() {
        let mut h = Histogram::new(vec![10.0, 20.0]);
        for _ in 0..5 {
            h.record(15.0);
        }
        // All mass in one bucket collapses interpolation to the point.
        assert!((h.p50() - 15.0).abs() < 1e-9);
        assert!((h.p99() - 15.0).abs() < 1e-9);
        // Overflow values land in the open bucket, bounded by the max.
        h.record(1000.0);
        assert!(h.quantile(1.0) <= 1000.0 + 1e-9);
        assert!(h.quantile(1.0) > 20.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::linear(0.0, 1.0, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn exact_quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exact_quantile(&xs, 0.0), 1.0);
        assert_eq!(exact_quantile(&xs, 1.0), 4.0);
        assert!((exact_quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(exact_quantile(&[], 0.5), 0.0);
    }
}
