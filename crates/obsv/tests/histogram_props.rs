//! Property tests for `Histogram` edge behavior: values exactly on bucket
//! upper edges must land deterministically in the bucket that edge closes
//! (`(prev, upper]` semantics), and the extreme quantiles must clamp to
//! the observed min/max.

use obsv::Histogram;
use proptest::prelude::*;

/// Strictly increasing finite bucket edges built from positive gaps.
fn edges() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.125f64..16.0, 1..8).prop_map(|gaps| {
        let mut edges = Vec::with_capacity(gaps.len());
        let mut acc = 0.0;
        for g in gaps {
            acc += g;
            edges.push(acc);
        }
        edges
    })
}

proptest! {
    /// A value exactly equal to an upper edge lands in the bucket that
    /// edge closes — never the one above — and repeated records of the
    /// same edge all land in that same bucket.
    #[test]
    fn upper_edge_lands_in_closing_bucket(edges in edges(), idx in 0usize..8, reps in 1u64..5) {
        let idx = idx % edges.len();
        let v = edges[idx];
        let mut h = Histogram::new(edges.clone());
        for _ in 0..reps {
            h.record(v);
        }
        let counts = h.bucket_counts();
        prop_assert_eq!(counts.len(), edges.len() + 1);
        prop_assert_eq!(counts[idx], reps);
        let elsewhere: u64 = counts
            .iter()
            .enumerate()
            .filter(|(b, _)| *b != idx)
            .map(|(_, c)| *c)
            .sum();
        prop_assert_eq!(elsewhere, 0);
    }

    /// A value just above an upper edge spills into the next bucket.
    #[test]
    fn value_above_edge_spills_to_next_bucket(edges in edges(), idx in 0usize..8) {
        let idx = idx % edges.len();
        let v = edges[idx] + 1e-9;
        let mut h = Histogram::new(edges.clone());
        h.record(v);
        prop_assert_eq!(h.bucket_counts()[idx + 1], 1);
    }

    /// `quantile(0.0)` is the observed minimum and `quantile(1.0)` the
    /// observed maximum, exactly, regardless of bucket layout.
    #[test]
    fn extreme_quantiles_clamp_to_observed_min_max(
        edges in edges(),
        values in prop::collection::vec(-4.0f64..128.0, 1..64),
    ) {
        let mut h = Histogram::new(edges);
        for &v in &values {
            h.record(v);
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.quantile(0.0), min);
        prop_assert_eq!(h.quantile(1.0), max);
    }

    /// Quantiles are monotone in `q` and bounded by the observed range.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        edges in edges(),
        values in prop::collection::vec(-4.0f64..128.0, 1..64),
        qs in prop::collection::vec(0.0f64..=1.0, 2..6),
    ) {
        let mut h = Histogram::new(edges);
        for &v in &values {
            h.record(v);
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= prev - 1e-12, "quantile({q}) = {v} < {prev}");
            prop_assert!(v >= min - 1e-12 && v <= max + 1e-12, "quantile({q}) = {v} outside [{min}, {max}]");
            prev = v;
        }
    }
}
