//! Chrome `trace_event` exporter tests: a byte-exact golden file for a
//! fixed span set, plus structural checks (nesting containment, thread
//! ids, monotone timestamps) on both the fixture and a live profiler.
//!
//! Regenerate the golden file after an intentional format change with:
//! `UPDATE_GOLDEN=1 cargo test -p obsv --test chrome_trace`

use obsv::profile::{chrome_trace, span, ProfSpanRecord, Profiler};
use std::collections::BTreeMap;

const GOLDEN_PATH: &str = "tests/golden/chrome_trace.json";

fn fixture_spans() -> Vec<ProfSpanRecord> {
    vec![
        ProfSpanRecord {
            id: 1,
            parent: None,
            name: "train",
            tid: 0,
            start_us: 0,
            dur_us: 10_000,
            flops: 524_288,
            bytes: 98_304,
        },
        ProfSpanRecord {
            id: 2,
            parent: Some(1),
            name: "epoch",
            tid: 0,
            start_us: 100,
            dur_us: 9_000,
            flops: 524_288,
            bytes: 98_304,
        },
        ProfSpanRecord {
            id: 3,
            parent: Some(2),
            name: "minibatch",
            tid: 0,
            start_us: 200,
            dur_us: 4_000,
            flops: 524_288,
            bytes: 98_304,
        },
        ProfSpanRecord {
            id: 4,
            parent: Some(3),
            name: "gemm",
            tid: 0,
            start_us: 300,
            dur_us: 1_000,
            flops: 524_288,
            bytes: 98_304,
        },
        ProfSpanRecord {
            id: 5,
            parent: Some(3),
            name: "pool-item",
            tid: 1,
            start_us: 250,
            dur_us: 3_000,
            flops: 0,
            bytes: 0,
        },
    ]
}

fn fixture_lanes() -> BTreeMap<u64, String> {
    BTreeMap::from([(0, "main".to_string()), (1, "worker-0".to_string())])
}

#[test]
fn chrome_trace_matches_golden_file() {
    let rendered = chrome_trace(&fixture_spans(), &fixture_lanes());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display()));
    // Content-exact comparison (whitespace-insensitive): the golden pins
    // event order, nesting links, lane names, and every field value.
    let rendered_v: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    let golden_v: serde_json::Value = serde_json::from_str(&golden).unwrap();
    assert_eq!(rendered_v, golden_v, "chrome trace drifted from golden file");
}

/// Structural invariants any emitted trace must satisfy.
fn assert_trace_invariants(json: &str) {
    let doc: serde_json::Value = serde_json::from_str(json).expect("trace parses");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let complete: Vec<&serde_json::Value> =
        events.iter().filter(|e| e["ph"] == "X").collect();
    assert!(!complete.is_empty(), "no complete events");
    // Every X event carries a tid that has a thread_name metadata event.
    let named_tids: Vec<i64> = events
        .iter()
        .filter(|e| e["ph"] == "M" && e["name"] == "thread_name")
        .map(|e| e["tid"].as_i64().unwrap())
        .collect();
    for e in &complete {
        assert!(
            named_tids.contains(&e["tid"].as_i64().unwrap()),
            "tid {} has no thread_name event",
            e["tid"]
        );
    }
    // Parent links resolve and children are contained in their parents'
    // intervals (same-lane children also nest in time).
    let by_id: BTreeMap<i64, &serde_json::Value> = complete
        .iter()
        .map(|e| (e["args"]["id"].as_i64().unwrap(), *e))
        .collect();
    for e in &complete {
        if let Some(pid) = e["args"]["parent"].as_i64() {
            let parent = by_id.get(&pid).expect("parent id resolves");
            let (ts, dur) = (e["ts"].as_i64().unwrap(), e["dur"].as_i64().unwrap());
            let (pts, pdur) = (parent["ts"].as_i64().unwrap(), parent["dur"].as_i64().unwrap());
            assert!(ts >= pts, "child starts before parent: {e}");
            assert!(ts + dur <= pts + pdur, "child outlives parent: {e}");
        }
    }
    // Within a lane, events are emitted in monotone start order.
    let mut last_start: BTreeMap<i64, i64> = BTreeMap::new();
    for e in &complete {
        let tid = e["tid"].as_i64().unwrap();
        let ts = e["ts"].as_i64().unwrap();
        let prev = last_start.insert(tid, ts).unwrap_or(i64::MIN);
        assert!(ts >= prev, "timestamps not monotone within lane {tid}");
    }
}

#[test]
fn fixture_trace_satisfies_invariants() {
    assert_trace_invariants(&chrome_trace(&fixture_spans(), &fixture_lanes()));
}

#[test]
fn live_profiler_trace_satisfies_invariants() {
    let p = Profiler::new();
    {
        let _act = p.activate("main");
        let _train = span("train");
        for _ in 0..2 {
            let _epoch = span("epoch");
            let _mb = span("minibatch");
            let _k = span("gemm");
        }
    }
    assert_trace_invariants(&p.chrome_trace_json());
}
