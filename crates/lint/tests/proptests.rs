//! Property-based tests for the lint lexer and rules.
//!
//! The load-bearing invariant of the hand-rolled lexer is that *literal and
//! comment contents are invisible to the rules*: a string containing
//! `"unwrap()"` or a comment discussing `panic!` must never produce a
//! violation. These properties hammer that invariant with arbitrary and
//! adversarial contents.

use cloudgen_lint::{scan_source, FileClass};
use proptest::prelude::*;

/// Escapes arbitrary text into a valid Rust string-literal body.
fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{{{:x}}}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A library-crate context where every rule is active.
fn lib_class() -> FileClass {
    FileClass::Lib {
        krate: "nn".to_string(),
    }
}

/// Wraps a string-literal body in an otherwise-clean library file.
fn file_with_string(body: &str) -> String {
    format!(
        "//! Fixture.\n#![forbid(unsafe_code)]\npub fn f() -> usize {{\n    let s = \"{body}\";\n    s.len()\n}}\n"
    )
}

/// Wraps a line-comment body in an otherwise-clean library file. The
/// `note:` prefix keeps randomly generated text from forming a
/// `lint:allow(...)` directive.
fn file_with_line_comment(body: &str) -> String {
    format!(
        "//! Fixture.\n#![forbid(unsafe_code)]\n// note: {body}\npub fn f() -> usize {{\n    1\n}}\n"
    )
}

/// Wraps a block-comment body in an otherwise-clean library file.
fn file_with_block_comment(body: &str) -> String {
    format!(
        "//! Fixture.\n#![forbid(unsafe_code)]\n/* note: {body} */\npub fn f() -> usize {{\n    1\n}}\n"
    )
}

/// Snippets that would each be a violation as code, but must be inert as
/// literal or comment content.
fn dangerous_snippet() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        ".unwrap()".to_string(),
        ".expect(\"boom\")".to_string(),
        "panic!(\"no\")".to_string(),
        "todo!()".to_string(),
        "unimplemented!()".to_string(),
        "thread_rng()".to_string(),
        "SystemTime::now()".to_string(),
        "Instant::now()".to_string(),
        "a == 0.0".to_string(),
        "b != 1.5".to_string(),
        "2.5 as u64".to_string(),
        "x.floor() as i32".to_string(),
        "x.round() as usize".to_string(),
    ])
}

/// Concatenation of several dangerous snippets with arbitrary glue.
fn dangerous_text() -> impl Strategy<Value = String> {
    proptest::collection::vec((dangerous_snippet(), "[ a-z]{0,6}"), 1..5).prop_map(|parts| {
        parts
            .into_iter()
            .map(|(snip, glue)| format!("{snip}{glue}"))
            .collect::<String>()
    })
}

/// Strips sequences the fixture wrappers cannot contain: block-comment
/// delimiters (which would change nesting) and newlines (which would end a
/// line comment).
fn comment_safe(s: &str) -> String {
    s.replace("*/", "* /")
        .replace("/*", "/ *")
        .replace(['\n', '\r'], " ")
}

proptest! {
    #[test]
    fn arbitrary_string_contents_are_inert(content in ".{0,60}") {
        let src = file_with_string(&escape_str(&content));
        let (violations, _) = scan_source("crates/nn/src/x.rs".to_string(), lib_class(), &src);
        prop_assert!(violations.is_empty(), "{violations:?} in {src:?}");
    }

    #[test]
    fn dangerous_string_contents_are_inert(content in dangerous_text()) {
        let src = file_with_string(&escape_str(&content));
        let (violations, _) = scan_source("crates/nn/src/x.rs".to_string(), lib_class(), &src);
        prop_assert!(violations.is_empty(), "{violations:?} in {src:?}");
    }

    #[test]
    fn arbitrary_line_comment_contents_are_inert(content in "[^\r\n]{0,60}") {
        let src = file_with_line_comment(&content);
        let (violations, _) = scan_source("crates/nn/src/x.rs".to_string(), lib_class(), &src);
        prop_assert!(violations.is_empty(), "{violations:?} in {src:?}");
    }

    #[test]
    fn dangerous_line_comment_contents_are_inert(content in dangerous_text()) {
        let src = file_with_line_comment(&comment_safe(&content));
        let (violations, _) = scan_source("crates/nn/src/x.rs".to_string(), lib_class(), &src);
        prop_assert!(violations.is_empty(), "{violations:?} in {src:?}");
    }

    #[test]
    fn dangerous_block_comment_contents_are_inert(content in dangerous_text()) {
        let src = file_with_block_comment(&comment_safe(&content));
        let (violations, _) = scan_source("crates/nn/src/x.rs".to_string(), lib_class(), &src);
        prop_assert!(violations.is_empty(), "{violations:?} in {src:?}");
    }

    #[test]
    fn raw_string_contents_are_inert(content in "[a-z .()!=]{0,40}") {
        // Raw strings take the content verbatim; the char class avoids `"#`.
        let src = format!(
            "//! Fixture.\n#![forbid(unsafe_code)]\npub fn f() -> usize {{\n    let s = r#\"{content}\"#;\n    s.len()\n}}\n"
        );
        let (violations, _) = scan_source("crates/nn/src/x.rs".to_string(), lib_class(), &src);
        prop_assert!(violations.is_empty(), "{violations:?} in {src:?}");
    }

    #[test]
    fn seeded_violation_is_always_caught(pad in "[a-z ]{0,20}") {
        // Sanity inverse: the same dangerous token OUTSIDE a literal fires
        // regardless of surrounding prose.
        let src = format!(
            "//! Fixture.\n#![forbid(unsafe_code)]\n// {pad}\npub fn f(v: Vec<u32>) -> u32 {{\n    v.first().copied().unwrap()\n}}\n"
        );
        let (violations, _) = scan_source("crates/nn/src/x.rs".to_string(), lib_class(), &src);
        prop_assert_eq!(violations.len(), 1, "{:?}", violations);
        prop_assert_eq!(violations[0].rule, "no-panic");
    }
}

// ---------------------------------------------------------------------------
// Interprocedural layer: graph construction and effect propagation must be
// total — any byte soup the lexer accepts must flow through call-graph
// indexing, SCC condensation, fixpoint propagation, and contract checking
// without panicking. The property bodies live in plain helpers so the
// deterministic smoke tests below compile and run them even when the
// proptest harness is unavailable.
// ---------------------------------------------------------------------------

/// Runs the full interprocedural pipeline over two arbitrary sources;
/// returns `(functions, sccs)` and panics only on an analyzer defect.
fn analyze_arbitrary_pair(a: &str, b: &str) -> (usize, usize) {
    use cloudgen_lint::scan::{analyze_ctxs, build_ctx, classify};

    let files = vec![
        build_ctx(
            "crates/linalg/src/a.rs".to_string(),
            classify("crates/linalg/src/a.rs").unwrap(),
            a,
        ),
        build_ctx(
            "crates/core/src/b.rs".to_string(),
            classify("crates/core/src/b.rs").unwrap(),
            b,
        ),
    ];
    let contracts = cloudgen_lint::parse_contracts(
        "[[barrier]]\nscope = [\"obsv::*\"]\nabsorbs = [\"time\"]\nreason = \"fixture\"\n\n\
         [[contract]]\nname = \"kernels-pure\"\nscope = [\"linalg::*\"]\nforbid = [\"rng\", \"time\"]\n\n\
         [[contract]]\nname = \"numeric-panic-free\"\nscope = [\"core::*\"]\nforbid = [\"panics\"]\n",
    )
    .expect("fixture contracts parse");
    let outcome = analyze_ctxs(&files, &contracts);
    (outcome.functions, outcome.sccs)
}

/// Builds a ring of `n` fns with arbitrary chords (every `f<i>` calls its
/// successor plus one other member) and checks the fixpoint terminates; when
/// `seeded`, `f0` reads the clock and the taint must cover the whole ring.
fn analyze_ring(n: usize, extra: &[usize], seeded: bool) -> usize {
    use cloudgen_lint::scan::{analyze_ctxs, build_ctx, classify};

    let mut src = String::from("//! Fixture.\n#![forbid(unsafe_code)]\n");
    for i in 0..n {
        let next = (i + 1) % n;
        let other = extra.get(i).copied().unwrap_or(0) % n;
        let body = if seeded && i == 0 {
            format!("let _t = std::time::Instant::now(); f{next}(); f{other}();")
        } else {
            format!("f{next}(); f{other}();")
        };
        src.push_str(&format!("pub fn f{i}() {{ {body} }}\n"));
    }
    let files = vec![build_ctx(
        "crates/linalg/src/ring.rs".to_string(),
        classify("crates/linalg/src/ring.rs").unwrap(),
        &src,
    )];
    let contracts = cloudgen_lint::parse_contracts(
        "[[contract]]\nname = \"kernels-pure\"\nscope = [\"linalg::*\"]\nforbid = [\"time\"]\n",
    )
    .expect("fixture contracts parse");
    let outcome = analyze_ctxs(&files, &contracts);
    assert_eq!(outcome.functions, n);
    outcome.contracts[0].violations
}

proptest! {
    #[test]
    fn graph_and_effects_never_panic_on_arbitrary_sources(
        a in "[a-zA-Z0-9_:;(){}.,<>&\\[\\]=!*+ \n-]{0,200}",
        b in "[a-zA-Z0-9_:;(){}.,<>&\\[\\]=!*+ \n-]{0,200}",
    ) {
        let (functions, sccs) = analyze_arbitrary_pair(&a, &b);
        prop_assert!(sccs <= functions.max(1));
    }

    #[test]
    fn effects_fixpoint_terminates_on_arbitrary_call_cycles(
        n in 2usize..12,
        extra in prop::collection::vec(0usize..12, 0..12),
        seeded in prop::bool::ANY,
    ) {
        let violations = analyze_ring(n, &extra, seeded);
        // With the clock seeded into the ring every member is tainted;
        // without it the contract must stay silent.
        prop_assert_eq!(violations, if seeded { n } else { 0 });
    }
}

// ---------------------------------------------------------------------------
// Allocation-flow layer: the memory pass must be total over the same byte
// soup, and allocation-looking text inside literals must stay invisible to
// site extraction.
// ---------------------------------------------------------------------------

/// Runs the allocation-flow pipeline over one arbitrary source; panics only
/// on an analyzer defect. Returns the count of memory-contract violations,
/// which must be zero under a `max = "unbounded-escape"` ceiling (nothing
/// exceeds the lattice top).
fn memory_analyze_arbitrary(a: &str) -> usize {
    use cloudgen_lint::scan::{analyze_memory_ctxs, build_ctx, classify};

    let files = vec![build_ctx(
        "crates/core/src/a.rs".to_string(),
        classify("crates/core/src/a.rs").unwrap(),
        a,
    )];
    let contracts = cloudgen_lint::parse_contracts(
        "[[absorber]]\nscope = [\"core::sink::*\"]\nreason = \"fixture\"\n\n\
         [[memory]]\nname = \"top\"\nscope = [\"core::*\"]\nmax = \"unbounded-escape\"\n",
    )
    .expect("fixture contracts parse");
    let outcome = analyze_memory_ctxs(&files, &contracts);
    outcome
        .report
        .violations
        .iter()
        .filter(|v| v.violation.rule == "memory-contract")
        .count()
}

/// Allocation-looking snippets that must be inert inside literals.
fn alloc_snippet() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "Vec::new()".to_string(),
        "Vec::with_capacity(n)".to_string(),
        "v.push(i)".to_string(),
        "v.extend(w)".to_string(),
        "xs.iter().collect::<Vec<u64>>()".to_string(),
        "std::fs::read_to_string(p)".to_string(),
        "for i in 0..n { out.push(i); }".to_string(),
        "Mat::zeros(r, c)".to_string(),
    ])
}

proptest! {
    #[test]
    fn memory_pass_never_panics_on_arbitrary_sources(
        a in "[a-zA-Z0-9_:;(){}.,<>&\\[\\]=!*+ \n-]{0,200}",
    ) {
        prop_assert_eq!(memory_analyze_arbitrary(&a), 0);
    }

    #[test]
    fn alloc_text_in_literals_is_invisible_to_site_extraction(
        content in proptest::collection::vec(alloc_snippet(), 1..4),
    ) {
        use cloudgen_lint::alloc_flow::intrinsic_allocs;
        use cloudgen_lint::graph::build_graph;
        use cloudgen_lint::scan::{build_ctx, classify};

        let body = escape_str(&content.join("; "));
        let src = format!(
            "//! Fixture.\n#![forbid(unsafe_code)]\npub fn f() -> usize {{\n    let s = \"{body}\";\n    s.len()\n}}\n"
        );
        let files = vec![build_ctx(
            "crates/core/src/a.rs".to_string(),
            classify("crates/core/src/a.rs").unwrap(),
            &src,
        )];
        let g = build_graph(&files);
        let intr = intrinsic_allocs(&g, &files);
        for (meta, s) in g.fns.iter().zip(&intr) {
            prop_assert!(
                s.sites.is_empty(),
                "literal text produced sites in `{}`: {s:?}",
                meta.path
            );
        }
    }
}

/// Deterministic pins of the two properties above: adversarial-looking
/// fragments through the full pipeline, and a dense 7-ring both clean and
/// clock-seeded.
#[test]
fn interprocedural_pipeline_smoke() {
    let (functions, sccs) =
        analyze_arbitrary_pair("fn f( { :: . unwrap ] } ;", "impl X for { fn fn fn ( ¤");
    assert!(sccs <= functions.max(1));
    let chords = [3usize, 5, 1, 6, 0, 2, 4];
    assert_eq!(analyze_ring(7, &chords, false), 0);
    assert_eq!(analyze_ring(7, &chords, true), 7);
}

/// Deterministic pins of the memory properties above: byte soup through the
/// allocation-flow pipeline, and alloc-looking text trapped in a literal.
#[test]
fn memory_pipeline_smoke() {
    use cloudgen_lint::alloc_flow::intrinsic_allocs;
    use cloudgen_lint::graph::build_graph;
    use cloudgen_lint::scan::{build_ctx, classify};

    assert_eq!(
        memory_analyze_arbitrary("fn f( { :: . push ] } ; Vec :: with_capacity for"),
        0
    );
    assert_eq!(
        memory_analyze_arbitrary(
            "pub fn g(n: usize) -> Vec<u64> { let mut v = Vec::new(); \
             for i in 0..n { v.push(i as u64); } v }"
        ),
        0
    );

    let src = "//! Fixture.\n#![forbid(unsafe_code)]\npub fn f() -> usize {\n    \
               let s = \"Vec::new(); v.push(i); for i in 0..n { out.extend(w); }\";\n    \
               s.len()\n}\n";
    let files = vec![build_ctx(
        "crates/core/src/a.rs".to_string(),
        classify("crates/core/src/a.rs").unwrap(),
        src,
    )];
    let g = build_graph(&files);
    let intr = intrinsic_allocs(&g, &files);
    for (meta, s) in g.fns.iter().zip(&intr) {
        assert!(s.sites.is_empty(), "literal text produced sites in `{}`: {s:?}", meta.path);
    }
}
