//! Golden-file test pinning the lint JSON output schema.
//!
//! `obsv::LintEvent` consumers, `scripts/check.sh`, and the CI gate all
//! parse `cloudgen-lint --json`; this test freezes the document shape
//! (field names, violation record layout, counts object) and the rule-id
//! vocabulary byte-for-byte. A deliberate schema change means regenerating
//! `tests/golden/report.json` and updating every consumer in the same PR.

use cloudgen_lint::{render_json, scan_source, FileClass, FileViolation, ScanReport, RULES};

/// A fixture exercising one violation from each rule family: legacy
/// (no-panic), determinism (unordered-iter), concurrency (raw-spawn),
/// observability (ambient-time), the hot-path allocation rule
/// (hot-loop-alloc), and the suppression audit (stale-allow), plus one
/// live suppression.
const FIXTURE: &str = r#"fn f(x: Option<u8>) -> u8 { x.unwrap() }
fn g() { let m = std::collections::HashMap::<u8, u8>::new(); }
fn h() { std::thread::spawn(|| {}); }
fn i(y: Option<u8>) -> Option<u8> {
    // lint:allow(no-panic): was an unwrap, refactored away in PR 5
    y
}
fn j(z: Option<u8>) -> u8 {
    // lint:allow(no-panic): fixture invariant, z is always Some
    z.unwrap()
}
fn k() { let t0 = std::time::Instant::now(); }
fn l() {
    let _prof = profile::span("fixture-kernel");
    for _q in 0..4 {
        let v: Vec<u8> = Vec::new();
        drop(v);
    }
}
fn m(steps: usize, batch: usize, hidden: usize) {
    // The pre-fusion LSTM step: a fresh matrix per timestep inside a
    // profiled sequence loop.
    let _prof = profile::span("fixture-seq");
    for _t in 0..steps {
        let c = Mat::zeros(batch, hidden);
        drop(c);
    }
}
"#;

#[test]
fn json_report_matches_golden() {
    let (violations, suppressed) = scan_source(
        "crates/nn/src/fixture.rs".to_string(),
        FileClass::Lib {
            krate: "nn".to_string(),
        },
        FIXTURE,
    );
    let report = ScanReport {
        files: 1,
        violations: violations
            .into_iter()
            .map(|violation| FileViolation {
                path: "crates/nn/src/fixture.rs".to_string(),
                violation,
            })
            .collect(),
        suppressed,
    };
    let rendered = render_json(&report);
    let golden = include_str!("golden/report.json");
    assert_eq!(
        rendered, golden,
        "lint JSON schema drifted from tests/golden/report.json; if the change is deliberate, \
         regenerate the golden file and update every --json consumer"
    );
}

#[test]
fn rule_vocabulary_is_pinned() {
    let ids: Vec<&str> = RULES.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        ids,
        [
            "ambient-rng",
            "no-panic",
            "float-eq",
            "lossy-cast",
            "forbid-unsafe",
            "fallible-entry",
            "unordered-iter",
            "raw-spawn",
            "unordered-reduce",
            "shared-mut-numeric",
            "ambient-parallelism",
            "ambient-time",
            "hot-loop-alloc",
            "effect-contract",
            "unbounded-blocking",
            "memory-contract",
            "allow-missing-reason",
            "stale-allow",
        ],
        "rule ids are part of the JSON schema; removing or renaming one breaks consumers"
    );
}

/// R15 fires only under `crates/serve/`, flags bare blocking calls, skips
/// `fn` definitions, and is paid down by a reasoned allow — the allow list
/// is the audit of every blocking point and its bound.
#[test]
fn unbounded_blocking_is_serve_scoped_and_paid_down() {
    const SERVE_FIXTURE: &str = r#"fn a(l: &std::net::TcpListener) { let _ = l.accept(); }
fn b(r: &mut impl std::io::BufRead, s: &mut String) {
    // lint:allow(unbounded-blocking): bounded by the caller's socket read timeout
    let _ = r.read_line(s);
}
fn read(x: u8) -> u8 { x }
"#;
    let (violations, suppressed) = scan_source(
        "crates/serve/src/fixture.rs".to_string(),
        FileClass::Bin {
            krate: "serve".to_string(),
        },
        SERVE_FIXTURE,
    );
    let ids: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    assert_eq!(
        ids,
        ["unbounded-blocking"],
        "expected exactly the bare accept() to fire: {violations:?}"
    );
    assert_eq!(violations[0].line, 1);
    assert_eq!(suppressed, 1, "the reasoned allow must pay down read_line");

    // Identical source outside the serving layer is silent.
    let (elsewhere, _) = scan_source(
        "crates/cli/src/fixture.rs".to_string(),
        FileClass::Bin {
            krate: "cli".to_string(),
        },
        SERVE_FIXTURE,
    );
    assert!(
        !elsewhere.iter().any(|v| v.rule == "unbounded-blocking"),
        "R15 must be scoped to crates/serve/: {elsewhere:?}"
    );
}
