//! Pinned regressions for the allocation-flow pass on tricky syntax.
//!
//! `tree_corners.rs` pins the item tree on adversarial *structure*; this
//! file pins `alloc_flow` site extraction on the syntax most likely to
//! confuse a token-level analysis: closures nested inside loop bodies,
//! match guards, turbofish `.collect::<...>()`, raw strings that *contain*
//! allocation-looking text, and `#[cfg(test)]` modules whose allocations
//! must never taint product summaries.

use cloudgen_lint::alloc_flow::{intrinsic_allocs, AllocSummary, Growth};
use cloudgen_lint::graph::build_graph;
use cloudgen_lint::scan::{build_ctx, classify, FileCtx};

fn ctx(rel: &str, src: &str) -> FileCtx {
    let class = classify(rel).unwrap_or_else(|| panic!("`{rel}` must classify"));
    build_ctx(rel.to_string(), class, src)
}

/// Intrinsic summaries for a one-file fixture, plus the graph for lookups.
fn summaries(rel: &str, src: &str) -> (cloudgen_lint::graph::CallGraph, Vec<AllocSummary>) {
    let ctxs = vec![ctx(rel, src)];
    let g = build_graph(&ctxs);
    let intr = intrinsic_allocs(&g, &ctxs);
    (g, intr)
}

fn class_of(rel: &str, src: &str, path: &str) -> Growth {
    let (g, intr) = summaries(rel, src);
    let id = g.id_of(path).unwrap_or_else(|| panic!("`{path}` not indexed"));
    intr[id as usize].growth
}

#[test]
fn push_through_nested_closures_in_a_loop_is_unbounded_escape() {
    // Two nested closures inside the loop body: their brace/pipe tokens
    // must not derail the loop-body mask or the receiver walk.
    let src = "pub fn deltas(xs: &[u64]) -> Vec<u64> {\n\
               \x20   let mut out = Vec::new();\n\
               \x20   for &x in xs {\n\
               \x20       let add = |v: u64| v + 1;\n\
               \x20       let go = |v: u64| add(v) * 2;\n\
               \x20       out.push(go(x));\n\
               \x20   }\n\
               \x20   out\n\
               }\n";
    assert_eq!(
        class_of("crates/core/src/a.rs", src, "core::a::deltas"),
        Growth::UnboundedEscape
    );
}

#[test]
fn closure_capturing_the_vec_inside_a_loop_still_counts() {
    // The growth op itself sits inside a closure body inside the loop.
    let src = "pub fn squares(xs: &[u64]) -> Vec<u64> {\n\
               \x20   let mut out = Vec::new();\n\
               \x20   for &x in xs {\n\
               \x20       let mut put = |v: u64| out.push(v * v);\n\
               \x20       put(x);\n\
               \x20   }\n\
               \x20   out\n\
               }\n";
    assert_eq!(
        class_of("crates/core/src/a.rs", src, "core::a::squares"),
        Growth::UnboundedEscape
    );
}

#[test]
fn match_guard_in_loop_body_keeps_the_site_in_loop() {
    // The guard's `if` must not be mistaken for a statement boundary that
    // ends the loop body early.
    let src = "pub fn evens(xs: &[u64]) -> Vec<u64> {\n\
               \x20   let mut out = Vec::new();\n\
               \x20   for &x in xs {\n\
               \x20       match x {\n\
               \x20           v if v % 2 == 0 => out.push(v),\n\
               \x20           _ => {}\n\
               \x20       }\n\
               \x20   }\n\
               \x20   out\n\
               }\n";
    assert_eq!(
        class_of("crates/core/src/a.rs", src, "core::a::evens"),
        Growth::UnboundedEscape
    );
}

#[test]
fn match_guard_accumulation_that_stays_local_is_loop_linear() {
    let src = "pub fn count_evens(xs: &[u64]) -> u64 {\n\
               \x20   let mut tmp = Vec::new();\n\
               \x20   for &x in xs {\n\
               \x20       match x {\n\
               \x20           v if v % 2 == 0 => tmp.push(v),\n\
               \x20           _ => {}\n\
               \x20       }\n\
               \x20   }\n\
               \x20   let n = tmp.len();\n\
               \x20   n as u64\n\
               }\n";
    assert_eq!(
        class_of("crates/core/src/a.rs", src, "core::a::count_evens"),
        Growth::LoopLinear
    );
}

#[test]
fn turbofish_collect_is_param_bounded() {
    // `.collect::<Vec<u64>>()` — the turbofish separates `collect` from its
    // call parens; the site must still register.
    let src = "pub fn doubled(xs: &[u64]) -> Vec<u64> {\n\
               \x20   xs.iter().map(|x| x * 2).collect::<Vec<u64>>()\n\
               }\n";
    let (g, intr) = summaries("crates/core/src/a.rs", src);
    let id = g.id_of("core::a::doubled").expect("indexed");
    let s = &intr[id as usize];
    assert_eq!(s.growth, Growth::ParamBounded, "{s:?}");
    assert_eq!(s.sites.len(), 1);
    assert_eq!(s.sites[0].what, ".collect()");
}

#[test]
fn raw_string_alloc_text_is_inert() {
    // A raw string spelling out a whole accumulation loop must produce no
    // sites: literal contents are invisible to the rules.
    let src = "pub fn banner() -> &'static str {\n\
               \x20   r#\"for i in 0..n { let mut v = Vec::new(); v.push(i); v.extend(w); }\"#\n\
               }\n";
    let (g, intr) = summaries("crates/core/src/a.rs", src);
    let id = g.id_of("core::a::banner").expect("indexed");
    let s = &intr[id as usize];
    assert_eq!(s.growth, Growth::Const, "{s:?}");
    assert!(s.sites.is_empty(), "{s:?}");
}

#[test]
fn cfg_test_allocations_never_taint_summaries() {
    // Accumulation inside `#[cfg(test)]` is test scaffolding: no fn in the
    // file may pick up growth from it.
    let src = "pub fn id(x: u64) -> u64 { x }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   pub fn accumulate(n: u64) -> Vec<u64> {\n\
               \x20       let mut v = Vec::new();\n\
               \x20       for i in 0..n {\n\
               \x20           v.push(i);\n\
               \x20       }\n\
               \x20       v\n\
               \x20   }\n\
               }\n";
    let (g, intr) = summaries("crates/core/src/a.rs", src);
    for (meta, s) in g.fns.iter().zip(&intr) {
        assert_eq!(
            s.growth,
            Growth::Const,
            "`{}` picked up growth from test code: {s:?}",
            meta.path
        );
    }
}

#[test]
fn nested_loops_with_mixed_corners_compose() {
    // Everything at once: nested loops, a closure, a guard, a turbofish
    // inside the inner body, and a reservation that bounds the outer push.
    let src = "pub fn shards(xs: &[u64], n: usize) -> Vec<Vec<u64>> {\n\
               \x20   let mut out = Vec::with_capacity(n);\n\
               \x20   for chunk in xs.chunks(n) {\n\
               \x20       let mut shard = Vec::new();\n\
               \x20       for &x in chunk {\n\
               \x20           match x {\n\
               \x20               v if v > 0 => shard.push(v),\n\
               \x20               _ => shard.extend(chunk.iter().map(|c| c + 1).collect::<Vec<u64>>()),\n\
               \x20           }\n\
               \x20       }\n\
               \x20       out.push(shard);\n\
               \x20   }\n\
               \x20   out\n\
               }\n";
    let (g, intr) = summaries("crates/core/src/a.rs", src);
    let id = g.id_of("core::a::shards").expect("indexed");
    let s = &intr[id as usize];
    // `shard` grows per inner iteration; the local-to-local handoff into
    // the *reserved* `out` is not escape-tracked (the heuristic follows
    // returns, `&mut` params, and `self` only), so the worst class is
    // loop-linear, while `out`'s own push stays capacity-bounded.
    assert_eq!(s.growth, Growth::LoopLinear, "{s:?}");
    let pushes: Vec<_> = s.sites.iter().filter(|site| site.what == ".push()").collect();
    assert_eq!(pushes.len(), 2, "{s:?}");
    assert!(
        pushes.iter().any(|site| site.growth == Growth::CapacityBounded)
            && pushes.iter().any(|site| site.growth == Growth::LoopLinear),
        "{s:?}"
    );
}
