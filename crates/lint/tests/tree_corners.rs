//! Regression tests for the lexer/tree corners the block tree's brace
//! matching depends on: raw strings, nested block comments, char literals
//! containing braces, and `#[cfg(test)]` module detection. Each fixture
//! would desynchronize a naive brace counter; the assertions check that
//! rule scoping (which runs on top of the tree) stays correct anyway.

use cloudgen_lint::{scan_source, FileClass};

fn lib(src: &str) -> Vec<cloudgen_lint::Violation> {
    scan_source(
        "crates/nn/src/x.rs".to_string(),
        FileClass::Lib {
            krate: "nn".to_string(),
        },
        src,
    )
    .0
}

#[test]
fn raw_string_with_braces_does_not_shift_fn_boundaries() {
    // If the `{` inside the raw string counted, `g`'s unwrap would appear
    // to be inside `f`'s body — either way it must still be flagged, and
    // exactly once, attributed to `g`.
    let src = r###"
        fn f() -> &'static str { r#"{ not a block { nor this"# }
        fn g(x: Option<u8>) -> u8 { x.unwrap() }
    "###;
    let v = lib(src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "no-panic");
    assert!(v[0].message.contains("fn g"), "{}", v[0].message);
}

#[test]
fn nested_block_comments_stay_opaque() {
    let src = r#"
        /* outer /* inner { */ still a comment } unwrap() */
        fn f(x: Option<u8>) -> u8 { x.unwrap() }
    "#;
    let v = lib(src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("fn f"), "{}", v[0].message);
}

#[test]
fn char_literals_with_braces_do_not_break_matching() {
    // `'{'` and `'}'` must not open or close blocks; the HashMap after
    // them must still be seen as library code (not swallowed by a
    // phantom unclosed block).
    let src = r#"
        fn delims() -> (char, char) { ('{', '}') }
        fn f() { let m = std::collections::HashMap::<u8, u8>::new(); }
    "#;
    let v = lib(src);
    assert!(
        v.iter().any(|v| v.rule == "unordered-iter" && v.message.contains("fn f")),
        "{v:?}"
    );
}

#[test]
fn lifetime_ticks_are_not_char_literals() {
    // `'a` must lex as a lifetime, not open a char literal that would
    // swallow the rest of the line (including the brace).
    let src = r#"
        fn first<'a>(xs: &'a [u8]) -> Option<&'a u8> { xs.first() }
        fn g(x: Option<u8>) -> u8 { x.unwrap() }
    "#;
    let v = lib(src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("fn g"), "{}", v[0].message);
}

#[test]
fn cfg_test_module_shields_all_new_rules() {
    let src = r#"
        fn lib_code() -> u8 { 1 }
        #[cfg(test)]
        mod tests {
            use std::collections::HashMap;
            use std::sync::Mutex;
            #[test]
            fn t() {
                let m: HashMap<u8, u8> = HashMap::new();
                let l = Mutex::new(0.0);
                std::thread::spawn(|| {});
                let n = std::thread::available_parallelism();
            }
        }
    "#;
    let v = lib(src);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn code_after_cfg_test_module_is_library_again() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { let m = std::collections::HashMap::<u8, u8>::new(); }
        }
        fn f() { let m = std::collections::HashMap::<u8, u8>::new(); }
    "#;
    let v = lib(src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "unordered-iter");
    assert!(v[0].message.contains("fn f"), "{}", v[0].message);
}
