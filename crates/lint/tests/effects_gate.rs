//! End-to-end tests for the interprocedural effects gate.
//!
//! Two layers are covered here:
//!
//! * **Graph corners** through the library API (`build_graph` /
//!   `analyze_ctxs`): aliased imports, trait-impl method resolution,
//!   same-name functions in different crates, and fixpoint termination on
//!   recursion — the resolution cases the per-file rules never see.
//! * **The CI gate contract** through the real binary
//!   (`CARGO_BIN_EXE_cloudgen-lint`) on throwaway workspaces: an ambient
//!   clock two calls below a kernel must fail `effects` while the plain
//!   per-file scan stays green, deleting a `lint:allow` must re-arm the
//!   gate, and `--json --telemetry -` must keep stdout a single clean JSON
//!   document.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

use cloudgen_lint::contracts::parse;
use cloudgen_lint::graph::build_graph;
use cloudgen_lint::scan::{analyze_ctxs, build_ctx, classify, FileCtx};

fn ctx(rel: &str, src: &str) -> FileCtx {
    let class = classify(rel).unwrap_or_else(|| panic!("`{rel}` must classify"));
    build_ctx(rel.to_string(), class, src)
}

fn callees<'g>(
    g: &'g cloudgen_lint::graph::CallGraph,
    path: &str,
) -> Vec<&'g str> {
    let id = g.id_of(path).unwrap_or_else(|| panic!("`{path}` not indexed"));
    let mut out: Vec<&str> = g.callees[id as usize]
        .iter()
        .map(|&c| g.fns[c as usize].path.as_str())
        .collect();
    out.sort_unstable();
    out
}

// ---------------------------------------------------------------------------
// Graph corners (library API)
// ---------------------------------------------------------------------------

#[test]
fn aliased_import_call_resolves_to_target() {
    let files = vec![
        ctx(
            "crates/linalg/src/kern.rs",
            "pub fn gemm(n: usize) -> usize { n }\n",
        ),
        ctx(
            "crates/nn/src/net.rs",
            "use linalg::kern::gemm as mm;\npub fn forward(n: usize) -> usize { mm(n) }\n",
        ),
    ];
    let g = build_graph(&files);
    assert_eq!(callees(&g, "nn::net::forward"), ["linalg::kern::gemm"]);
}

#[test]
fn trait_impl_method_resolves_to_the_impl_fn() {
    let files = vec![ctx(
        "crates/core/src/model.rs",
        "pub trait Model { fn emit(&self) -> u64; }\n\
         pub struct Lstm { n: u64 }\n\
         impl Model for Lstm { fn emit(&self) -> u64 { self.n } }\n\
         pub fn drive(m: &Lstm) -> u64 { m.emit() }\n",
    )];
    let g = build_graph(&files);
    assert_eq!(callees(&g, "core::model::drive"), ["core::model::Lstm::emit"]);
}

#[test]
fn same_name_fns_in_different_modules_stay_distinct() {
    let files = vec![
        ctx(
            "crates/glm/src/pois.rs",
            "pub fn density(x: f64) -> f64 { x }\n",
        ),
        ctx(
            "crates/survival/src/km.rs",
            "pub fn density(x: f64) -> f64 { x + 1.0 }\n\
             pub fn curve(x: f64) -> f64 { density(x) }\n",
        ),
    ];
    let g = build_graph(&files);
    // The plain call binds to the same-module `density`, never the one in
    // the other crate.
    assert_eq!(callees(&g, "survival::km::curve"), ["survival::km::density"]);
    assert!(g.id_of("glm::pois::density").is_some());
}

#[test]
fn recursive_workspace_reaches_fixpoint_and_flags_contract() {
    // Mutual recursion between two fns, one of which reads the clock: the
    // SCC fixpoint must terminate and taint both members.
    let files = vec![ctx(
        "crates/linalg/src/iter.rs",
        "pub fn refine(n: u64) -> u64 { if n == 0 { 0 } else { polish(n - 1) } }\n\
         // lint:allow(ambient-time): fixture clock read\n\
         pub fn polish(n: u64) -> u64 { let _t = std::time::Instant::now(); refine(n) }\n",
    )];
    let contracts = parse(
        "[[contract]]\nname = \"kernels-pure\"\nscope = [\"linalg::*\"]\nforbid = [\"time\"]\n",
    )
    .expect("contracts parse");
    let outcome = analyze_ctxs(&files, &contracts);
    assert_eq!(outcome.functions, 2);
    // Both SCC members carry the taint, so the contract anchors twice.
    let hits: Vec<_> = outcome
        .report
        .violations
        .iter()
        .filter(|v| v.violation.rule == "effect-contract")
        .collect();
    assert_eq!(hits.len(), 2, "{:?}", outcome.report.violations);
    let stat = &outcome.contracts[0];
    assert_eq!(stat.name, "kernels-pure");
    assert_eq!(stat.violations, 2);
}

// ---------------------------------------------------------------------------
// Binary-level gate tests (throwaway workspaces)
// ---------------------------------------------------------------------------

static WS_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Writes `files` (rel path, contents) under a fresh temp workspace root.
fn write_workspace(files: &[(&str, &str)]) -> PathBuf {
    let seq = WS_SEQ.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!(
        "cloudgen-lint-gate-{}-{seq}",
        std::process::id()
    ));
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, contents).expect("write fixture");
    }
    root
}

fn run_lint(root: &Path, args: &[&str]) -> Output {
    // `effects` must be the leading argument, so `--root` goes last.
    Command::new(env!("CARGO_BIN_EXE_cloudgen-lint"))
        .args(args)
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn cloudgen-lint")
}

const GATE_CONTRACTS: &str = "\
[[contract]]
name = \"kernels-pure\"
scope = [\"linalg::*\", \"nn::*\"]
forbid = [\"rng\", \"time\", \"io\"]

[[contract]]
name = \"numeric-panic-free\"
scope = [\"core::*\"]
forbid = [\"panics\"]
";

/// A clock read two calls below a `linalg` kernel: invisible to every
/// per-file rule (the read itself is annotated, in another crate), caught
/// only by transitive effect propagation.
const KERNEL_WS: &[(&str, &str)] = &[
    (
        "crates/linalg/src/lib.rs",
        "//! Fixture kernel crate.\n\
         #![forbid(unsafe_code)]\n\
         pub fn kernel(x: f64) -> f64 { helper(x) }\n\
         fn helper(x: f64) -> f64 { let _t = trace::clock::now(); x }\n",
    ),
    (
        "crates/trace/src/clock.rs",
        "//! Fixture clock module.\n\
         // lint:allow(ambient-time): fixture sanctioned clock read\n\
         pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    ),
    ("lint-contracts.toml", GATE_CONTRACTS),
];

#[test]
fn instant_now_two_calls_below_kernel_fails_effects_but_not_plain_scan() {
    let root = write_workspace(KERNEL_WS);
    let contracts = root.join("lint-contracts.toml");

    // Plain per-file scan: green. The clock read is annotated at its site.
    let plain = run_lint(&root, &[]);
    assert_eq!(
        plain.status.code(),
        Some(0),
        "plain scan should pass: {}",
        String::from_utf8_lossy(&plain.stdout)
    );

    // Effects gate: red, with the witness path in the diagnostic.
    let gated = run_lint(&root, &["effects", "--contracts", contracts.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert_eq!(gated.status.code(), Some(1), "gate should fail:\n{stdout}");
    assert!(stdout.contains("effect-contract"), "{stdout}");
    assert!(stdout.contains("kernels-pure"), "{stdout}");
    assert!(
        stdout.contains("kernel") && stdout.contains("helper") && stdout.contains("now"),
        "witness path should name the full call chain:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_a_panic_allow_rearms_the_gate() {
    let discharged = "//! Fixture numeric crate.\n\
                      #![forbid(unsafe_code)]\n\
                      pub fn predict(x: Option<f64>) -> f64 {\n\
                      \x20   // lint:allow(no-panic): fixture invariant, x is always Some\n\
                      \x20   x.unwrap()\n\
                      }\n";
    let root = write_workspace(&[
        ("crates/core/src/lib.rs", discharged),
        ("lint-contracts.toml", GATE_CONTRACTS),
    ]);
    let contracts_arg = root.join("lint-contracts.toml");
    let ok = run_lint(
        &root,
        &["effects", "--contracts", contracts_arg.to_str().unwrap()],
    );
    assert_eq!(
        ok.status.code(),
        Some(0),
        "discharged panic must pass: {}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // Delete the allow: the panic re-taints transitively and the contract
    // (plus the per-file rule) must fail the build.
    let raw = discharged.replace(
        "    // lint:allow(no-panic): fixture invariant, x is always Some\n",
        "",
    );
    std::fs::write(root.join("crates/core/src/lib.rs"), raw).expect("rewrite");
    let rearmed = run_lint(
        &root,
        &["effects", "--contracts", contracts_arg.to_str().unwrap()],
    );
    let stdout = String::from_utf8_lossy(&rearmed.stdout);
    assert_eq!(rearmed.status.code(), Some(1), "gate should re-arm:\n{stdout}");
    assert!(stdout.contains("numeric-panic-free"), "{stdout}");
    assert!(stdout.contains("effect-contract"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// stdout hygiene: `--json --telemetry -` must leave stdout parseable
// ---------------------------------------------------------------------------

/// Structural JSON check without a parser dependency: the document must be
/// exactly one `{...}` with braces balanced outside string literals —
/// any interleaved telemetry line would break this.
fn is_single_json_object(s: &str) -> bool {
    let t = s.trim_end();
    if !t.starts_with('{') {
        return false;
    }
    let (mut depth, mut in_str, mut escape) = (0i64, false, false);
    for (i, c) in t.char_indices() {
        if in_str {
            match (escape, c) {
                (true, _) => escape = false,
                (false, '\\') => escape = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth == 0 {
                    // Must be the final character: nothing trails the doc.
                    return i == t.len() - 1;
                }
            }
            _ => {}
        }
    }
    false
}

#[test]
fn json_stdout_stays_clean_with_stderr_telemetry() {
    let root = write_workspace(KERNEL_WS);
    let contracts = root.join("lint-contracts.toml");
    for args in [
        vec!["--json", "--telemetry", "-"],
        vec![
            "effects",
            "--contracts",
            contracts.to_str().unwrap(),
            "--json",
            "--telemetry",
            "-",
        ],
    ] {
        let out = run_lint(&root, &args);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            is_single_json_object(&stdout),
            "stdout must be one clean JSON document for {args:?}:\n{stdout}"
        );
        // `wall_ms` only exists in the telemetry event, never in the report
        // document, so its absence proves no event leaked onto stdout.
        assert!(
            !stdout.contains("wall_ms"),
            "telemetry leaked onto stdout for {args:?}:\n{stdout}"
        );
        // When the recorder emits anything (it is a no-op under the offline
        // serde stubs), the event must land on stderr, tagged and timed.
        if !stderr.trim().is_empty() {
            assert!(
                stderr.contains("wall_ms"),
                "stderr output is not the telemetry event for {args:?}:\n{stderr}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
