//! End-to-end tests for the interprocedural memory gate.
//!
//! Runs the real binary (`CARGO_BIN_EXE_cloudgen-lint`) on throwaway
//! workspaces, mirroring `effects_gate.rs` for the allocation-flow lattice:
//! a seeded unbounded accumulation two calls below a public entry must fail
//! `memory` while the plain per-file scan stays green, deleting a
//! `lint:allow(memory-contract)` must re-arm the gate (fails closed), an
//! `[[absorber]]` must mask callers without excusing the absorber itself,
//! and `--json --telemetry -` must keep stdout a single clean JSON document.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

static WS_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Writes `files` (rel path, contents) under a fresh temp workspace root.
fn write_workspace(files: &[(&str, &str)]) -> PathBuf {
    let seq = WS_SEQ.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!(
        "cloudgen-lint-memgate-{}-{seq}",
        std::process::id()
    ));
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, contents).expect("write fixture");
    }
    root
}

fn run_lint(root: &Path, args: &[&str]) -> Output {
    // `memory` must be the leading argument, so `--root` goes last.
    Command::new(env!("CARGO_BIN_EXE_cloudgen-lint"))
        .args(args)
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn cloudgen-lint")
}

const MEM_CONTRACTS: &str = "\
[[memory]]
name = \"streaming-bounded\"
scope = [\"core::*\", \"serve::*\"]
max = \"loop-linear\"
";

/// An unbounded accumulation one call below a public entry: `collect_all`
/// pushes in a loop and returns the Vec, so both it and its caller carry
/// `unbounded-escape` transitively. Invisible to every per-file rule
/// (`core` is not a profiled-kernel crate), caught only by the
/// allocation-flow fixpoint.
const ACCUM_WS: &[(&str, &str)] = &[
    (
        "crates/core/src/lib.rs",
        "//! Fixture accumulation crate.\n\
         #![forbid(unsafe_code)]\n\
         pub fn drive(n: u64) -> Vec<u64> { collect_all(n) }\n\
         fn collect_all(n: u64) -> Vec<u64> {\n\
         \x20   let mut out = Vec::new();\n\
         \x20   for i in 0..n {\n\
         \x20       out.push(i);\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    ),
    ("lint-contracts.toml", MEM_CONTRACTS),
];

#[test]
fn seeded_accumulation_fails_memory_but_not_plain_scan() {
    let root = write_workspace(ACCUM_WS);
    let contracts = root.join("lint-contracts.toml");

    // Plain per-file scan: green. The accumulation is not in a profiled
    // kernel, so no per-file rule sees it.
    let plain = run_lint(&root, &[]);
    assert_eq!(
        plain.status.code(),
        Some(0),
        "plain scan should pass: {}",
        String::from_utf8_lossy(&plain.stdout)
    );

    // Memory gate: red, with the witness call path and site in the
    // diagnostic.
    let gated = run_lint(&root, &["memory", "--contracts", contracts.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert_eq!(gated.status.code(), Some(1), "gate should fail:\n{stdout}");
    assert!(stdout.contains("memory-contract"), "{stdout}");
    assert!(stdout.contains("streaming-bounded"), "{stdout}");
    assert!(stdout.contains("unbounded-escape"), "{stdout}");
    assert!(
        stdout.contains("drive → collect_all"),
        "witness path should name the call chain to the sink:\n{stdout}"
    );
    assert!(
        stdout.contains("`.push()` in loop, escapes"),
        "diagnostic should carry the allocation site:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deleting_a_memory_allow_rearms_the_gate() {
    let discharged = "//! Fixture accumulation crate.\n\
                      #![forbid(unsafe_code)]\n\
                      // lint:allow(memory-contract): fixture, bounded by n\n\
                      pub fn drive(n: u64) -> Vec<u64> { collect_all(n) }\n\
                      // lint:allow(memory-contract): fixture, bounded by n\n\
                      fn collect_all(n: u64) -> Vec<u64> {\n\
                      \x20   let mut out = Vec::new();\n\
                      \x20   for i in 0..n {\n\
                      \x20       out.push(i);\n\
                      \x20   }\n\
                      \x20   out\n\
                      }\n";
    let root = write_workspace(&[
        ("crates/core/src/lib.rs", discharged),
        ("lint-contracts.toml", MEM_CONTRACTS),
    ]);
    let contracts_arg = root.join("lint-contracts.toml");

    // Memory-contract allows are deferred by the plain scan (the rule only
    // fires interprocedurally), so they must not read as stale there.
    let plain = run_lint(&root, &[]);
    assert_eq!(
        plain.status.code(),
        Some(0),
        "plain scan must not flag deferred memory allows as stale: {}",
        String::from_utf8_lossy(&plain.stdout)
    );

    let ok = run_lint(
        &root,
        &["memory", "--contracts", contracts_arg.to_str().unwrap()],
    );
    assert_eq!(
        ok.status.code(),
        Some(0),
        "discharged accumulation must pass: {}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // Delete one allow: the gate fails closed on the re-armed fn even
    // though the other allow is still live.
    let raw = discharged.replace(
        "// lint:allow(memory-contract): fixture, bounded by n\n\
         fn collect_all",
        "fn collect_all",
    );
    assert_ne!(raw, discharged, "replacement must hit");
    std::fs::write(root.join("crates/core/src/lib.rs"), raw).expect("rewrite");
    let rearmed = run_lint(
        &root,
        &["memory", "--contracts", contracts_arg.to_str().unwrap()],
    );
    let stdout = String::from_utf8_lossy(&rearmed.stdout);
    assert_eq!(rearmed.status.code(), Some(1), "gate should re-arm:\n{stdout}");
    assert!(stdout.contains("collect_all"), "{stdout}");
    assert!(stdout.contains("memory-contract"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

/// A sanctioned materialization point: with the `[[absorber]]` the caller
/// in another crate passes, but the absorber itself still needs its allow —
/// absorbing masks propagation, never the absorber's own summary.
const ABSORB_WS: &[(&str, &str)] = &[
    (
        "crates/core/src/sink.rs",
        "//! Fixture sink module.\n\
         // lint:allow(memory-contract): fixture materialization, bounded by n\n\
         pub fn materialize(n: u64) -> Vec<u64> {\n\
         \x20   let mut v = Vec::new();\n\
         \x20   for i in 0..n {\n\
         \x20       v.push(i);\n\
         \x20   }\n\
         \x20   v\n\
         }\n",
    ),
    (
        "crates/serve/src/lib.rs",
        "//! Fixture caller crate.\n\
         #![forbid(unsafe_code)]\n\
         pub fn caller(n: u64) -> u64 { core::sink::materialize(n).len() as u64 }\n",
    ),
    (
        "lint-contracts.toml",
        "[[absorber]]\n\
         scope = [\"core::sink::materialize\"]\n\
         reason = \"fixture sanctioned materialization point\"\n\
         \n\
         [[memory]]\n\
         name = \"streaming-bounded\"\n\
         scope = [\"core::*\", \"serve::*\"]\n\
         max = \"loop-linear\"\n",
    ),
];

#[test]
fn absorber_masks_callers_but_not_the_absorber_itself() {
    let root = write_workspace(ABSORB_WS);
    let contracts = root.join("lint-contracts.toml");

    // Absorber + allow on the sink: clean.
    let ok = run_lint(&root, &["memory", "--contracts", contracts.to_str().unwrap()]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "absorbed caller must pass: {}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // Drop the absorber table: the caller now inherits the sink's
    // unbounded-escape class and fails, anchored at `caller`.
    std::fs::write(
        root.join("lint-contracts.toml"),
        MEM_CONTRACTS,
    )
    .expect("rewrite contracts");
    let unmasked = run_lint(&root, &["memory", "--contracts", contracts.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&unmasked.stdout);
    assert_eq!(
        unmasked.status.code(),
        Some(1),
        "unmasked caller should fail:\n{stdout}"
    );
    assert!(stdout.contains("`serve::caller`"), "{stdout}");
    assert!(stdout.contains("caller → materialize"), "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

/// Structural JSON check without a parser dependency: the document must be
/// exactly one `{...}` with braces balanced outside string literals.
fn is_single_json_object(s: &str) -> bool {
    let t = s.trim_end();
    if !t.starts_with('{') {
        return false;
    }
    let (mut depth, mut in_str, mut escape) = (0i64, false, false);
    for (i, c) in t.char_indices() {
        if in_str {
            match (escape, c) {
                (true, _) => escape = false,
                (false, '\\') => escape = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth == 0 {
                    return i == t.len() - 1;
                }
            }
            _ => {}
        }
    }
    false
}

#[test]
fn memory_json_stdout_stays_clean_and_report_file_matches() {
    let root = write_workspace(ACCUM_WS);
    let contracts = root.join("lint-contracts.toml");
    let report = root.join("memory-report.json");
    let out = run_lint(
        &root,
        &[
            "memory",
            "--contracts",
            contracts.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
            "--json",
            "--telemetry",
            "-",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        is_single_json_object(&stdout),
        "stdout must be one clean JSON document:\n{stdout}"
    );
    assert!(
        !stdout.contains("wall_ms"),
        "telemetry leaked onto stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("\"memory_contracts\"") && stdout.contains("\"growth\""),
        "memory report sections missing:\n{stdout}"
    );
    // `--report` writes the same document the `--json` stdout carries.
    let written = std::fs::read_to_string(&report).expect("report file");
    assert_eq!(written, stdout, "--report must match --json stdout");
    let _ = std::fs::remove_dir_all(&root);
}
