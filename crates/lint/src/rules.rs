//! The lint rules.
//!
//! Every rule is a pattern over the token stream produced by
//! [`crate::lexer`] — R7–R12 additionally consult the item/block tree from
//! [`crate::tree`] to reason about *where* a pattern occurs (enclosing
//! function, impl block, `#[cfg(test)]` scope, `use` imports). None of them
//! parse Rust properly, and each one's documentation states the
//! approximation it makes. The rules encode the reproduction's numerics and
//! determinism policy:
//!
//! | id | scope | requirement |
//! |----|-------|-------------|
//! | `ambient-rng` (R1) | library crates, non-test | no `thread_rng()`, `rand::random()`, or `from_entropy()`; randomness must flow in from explicit seeds |
//! | `no-panic` (R2) | library crates, non-test | no `.unwrap()`, `.expect()`, `panic!`, `todo!`, `unimplemented!`, `unreachable!` |
//! | `float-eq` (R3) | all crates, non-test | no `==`/`!=` with a float literal (or `NAN`/`INFINITY` constant) operand |
//! | `lossy-cast` (R4) | library crates, non-test | no `<float literal> as <int>` and no `.floor()/.ceil()/.round()/.trunc() as <int>` without an annotation |
//! | `forbid-unsafe` (R5) | every crate root | `#![forbid(unsafe_code)]` present |
//! | `fallible-entry` (R6) | `nn`, `glm`, `survival`, `resilience`, non-test | `pub fn fit*/train*/solve*/factor*/checkpoint*/resume*` returns a `Result` |
//! | `unordered-iter` (R7) | `core`, `nn`, `glm`, `survival`, `sched`, `synth`, non-test | no `HashMap`/`HashSet`: hash containers iterate in nondeterministic order, which forks the trajectory the moment anyone loops over one; use `BTreeMap`/`BTreeSet` or annotate why the container is never iterated |
//! | `raw-spawn` (R8) | library crates except `linalg::pool`, non-test | no `std::thread::spawn` / `scope.spawn`: all parallelism goes through `linalg::WorkerPool`, whose item-index-ordered results are the determinism contract |
//! | `unordered-reduce` (R9) | library crates, non-test, inside `WorkerPool`-using functions | no `+=` into indexed/field state and no `.sum()` when merging shard results; gradient merging goes through `GradAccum`/`tree_reduce`, other merges must annotate their fixed order |
//! | `shared-mut-numeric` (R10) | numeric crates except `linalg::pool`, non-test | no `Mutex`/`RwLock`/`Condvar`/atomics: the numeric result path is single-writer by construction; shared mutable state reintroduces scheduling order |
//! | `ambient-parallelism` (R11) | library crates, non-test | no `available_parallelism()`: thread counts are explicit configuration (throughput knob), never ambient machine state |
//! | `ambient-time` (R12) | all crates except `obsv`, non-test | no `Instant::now()` / `SystemTime::now()`: wall-clock reads live in `obsv` (`Stopwatch`, profiling spans), so timing stays in one audited crate and can never leak into numerics |
//! | `hot-loop-alloc` (R13) | `linalg`/`nn` profiled kernel fns, non-test | no `Vec::new`/`Mat::zeros`/`Mat::filled`/`Mat::from_fn`/`.push()`/`.clone()`/`.to_vec()`/`format!` inside loop bodies of a fn that opens a `profile::span` — the profiler marks it hot, so per-iteration allocation is a measured cost; hoist buffers or annotate |
//! | `effect-contract` (R14) | whole workspace (`effects` subcommand only) | transitive effect sets ([`crate::effects`]) must satisfy every contract declared in `lint-contracts.toml` ([`crate::contracts`]) |
//! | `unbounded-blocking` (R15) | `crates/serve`, non-test | no `accept()`/`recv()`/`channel()`/`read*()` without an annotated bound: the serving layer's robustness contract is "bounded everything", so every blocking primitive must carry a timeout, byte cap, or nonblocking mode and say so |
//! | `memory-contract` (R16) | whole workspace (`memory` subcommand only) | transitive allocation growth classes ([`crate::alloc_flow`]) must satisfy every `[[memory]]` contract in `lint-contracts.toml`; diagnostics carry a witness call path to the worst allocation site |
//!
//! Violations are suppressed by `// lint:allow(rule-id): reason` on the same
//! or the preceding line (see [`crate::scan`]); a suppression that no longer
//! matches any violation is itself reported (`stale-allow`), so the
//! allow-list stays an accurate invariant log.

use crate::lexer::{Tok, TokKind};
use crate::scan::{FileClass, FileCtx};
use crate::tree::NodeKind;

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`no-panic`, ...).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule ids with one-line descriptions, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "ambient-rng",
        "ambient randomness in library code (R1)",
    ),
    (
        "no-panic",
        "panicking call in non-test library code (R2)",
    ),
    ("float-eq", "naked float equality comparison (R3)"),
    ("lossy-cast", "unannotated lossy float-to-int cast (R4)"),
    (
        "forbid-unsafe",
        "crate root missing #![forbid(unsafe_code)] (R5)",
    ),
    (
        "fallible-entry",
        "fallible numeric entry point does not return Result (R6)",
    ),
    (
        "unordered-iter",
        "hash-ordered container in a deterministic crate (R7)",
    ),
    (
        "raw-spawn",
        "thread spawn outside linalg::pool (R8)",
    ),
    (
        "unordered-reduce",
        "accumulation into shared state while merging shard results (R9)",
    ),
    (
        "shared-mut-numeric",
        "lock or atomic on the numeric result path (R10)",
    ),
    (
        "ambient-parallelism",
        "ambient thread-count query in library code (R11)",
    ),
    (
        "ambient-time",
        "ambient wall-clock read outside obsv (R12)",
    ),
    (
        "hot-loop-alloc",
        "allocation in a hot loop of a profiled kernel (R13)",
    ),
    (
        "effect-contract",
        "declared effect contract violated transitively (R14)",
    ),
    (
        "unbounded-blocking",
        "blocking primitive without an annotated bound in the serving layer (R15)",
    ),
    (
        "memory-contract",
        "declared memory contract violated transitively (R16)",
    ),
    (
        "allow-missing-reason",
        "lint:allow suppression without a reason string",
    ),
    (
        "stale-allow",
        "lint:allow suppression that no longer matches any violation",
    ),
];

/// Rule ids only the interprocedural `effects` mode can produce; the plain
/// per-file scan never fires them, so it must not judge their suppressions
/// stale either.
pub const EFFECT_RULES: &[&str] = &["effect-contract"];

/// Rule ids only the allocation-flow `memory` mode can produce; same
/// staleness-deferral treatment as [`EFFECT_RULES`].
pub const MEMORY_RULES: &[&str] = &["memory-contract"];

/// The rule ids a mode actually checks — the staleness domain for
/// `lint:allow` auditing (see [`crate::scan::apply_allows_checked`]).
pub fn checked_rules(include_effects: bool) -> Vec<&'static str> {
    checked_rules_for(include_effects, false)
}

/// Like [`checked_rules`], with the memory-mode rules also toggled —
/// only `cloudgen-lint memory` checks those.
pub fn checked_rules_for(include_effects: bool, include_memory: bool) -> Vec<&'static str> {
    RULES
        .iter()
        .map(|(id, _)| *id)
        .filter(|id| {
            (include_effects || !EFFECT_RULES.contains(id))
                && (include_memory || !MEMORY_RULES.contains(id))
        })
        .collect()
}

/// Crates whose profiled fns are hot kernels for R13.
const KERNEL_CRATES: &[&str] = &["linalg", "nn"];

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Zero-argument `f64` methods whose result is routinely truncated into an
/// index; casting them without an annotation is what R4 flags.
const FLOAT_TRUNC_METHODS: &[&str] = &["floor", "ceil", "round", "trunc"];

/// Crates whose public numeric entry points must return `Result` (R6).
/// `resilience` is included because its whole contract is recovering from
/// failure — a checkpoint or resume path that panics defeats the crate.
const RESULT_ENTRY_CRATES: &[&str] = &["nn", "glm", "survival", "resilience"];

/// Function-name prefixes R6 treats as fallible numeric entry points.
/// `checkpoint`/`resume` cover the fault-tolerance surface: both touch the
/// filesystem and partially-written state, so they can always fail.
const FALLIBLE_PREFIXES: &[&str] = &["fit", "train", "solve", "factor", "checkpoint", "resume"];

/// Crates whose outputs are part of the bit-for-bit reproducibility
/// contract (the shard layout is a numeric contract; any nondeterministic
/// iteration order silently forks the trajectory). R7 bans hash-ordered
/// containers here outright.
const DETERMINISTIC_CRATES: &[&str] = &["core", "nn", "glm", "survival", "sched", "synth"];

/// Crates on the numeric result path for R10. Everything in
/// [`DETERMINISTIC_CRATES`] plus the kernel and fault-tolerance layers;
/// `obsv` is deliberately excluded (telemetry sinks are allowed to lock —
/// they never feed numbers back into results).
const NUMERIC_SYNC_CRATES: &[&str] = &[
    "core", "nn", "glm", "survival", "sched", "synth", "linalg", "resilience",
];

/// The one file allowed to spawn threads and own synchronization
/// primitives: the deterministic worker pool, whose item-index-ordered
/// results are the workspace's entire concurrency surface.
const POOL_PATH: &str = "crates/linalg/src/pool.rs";

/// The one crate allowed to read the ambient clock (R12): observability
/// owns `Stopwatch`, `SpanTimer`, and the profiler's span clock, and its
/// outputs never feed back into numeric results.
const OBSV_PATH_PREFIX: &str = "crates/obsv/";

/// The serving layer for R15 — the one crate doing socket I/O, where an
/// unbounded blocking call lets a single slow peer wedge a worker thread.
const SERVE_PATH_PREFIX: &str = "crates/serve/";

/// Call names R15 treats as blocking primitives: socket accepts,
/// channel construction and receives, and the `Read` family.
/// `read_to_string` also catches filesystem loads — startup-time reads
/// annotate why they are off the request path.
const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "recv",
    "channel",
    "read",
    "read_line",
    "read_until",
    "read_exact",
    "read_to_end",
    "read_to_string",
];

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

fn violation(rule: &'static str, t: &Tok, message: String) -> Violation {
    Violation {
        rule,
        line: t.line,
        col: t.col,
        message,
    }
}

/// R1: `thread_rng` / `rand::random` / `from_entropy` in non-test library
/// code. Token-level: flags the identifiers wherever they appear outside
/// strings/comments, so even a re-export would be caught. Wall-clock reads
/// (`SystemTime::now`, `Instant::now`) used to live here too; they are now
/// R12's whole job ([`ambient_time`]), which also covers tool crates.
pub fn ambient_rng(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if ident(t, "thread_rng") || ident(t, "from_entropy") {
            out.push(violation(
                "ambient-rng",
                t,
                format!(
                    "`{}` seeds from the environment; thread an explicit seeded RNG instead",
                    t.text
                ),
            ));
        } else if ident(t, "rand")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "::"))
            && matches!(toks.get(i + 2), Some(n) if ident(n, "random"))
        {
            out.push(violation(
                "ambient-rng",
                t,
                "`rand::random()` uses the ambient thread RNG; thread an explicit seeded RNG"
                    .to_string(),
            ));
        }
    }
}

/// R2: `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` /
/// `unreachable!` in non-test library code. Method matches require a
/// preceding `.` so local functions named `unwrap` (there are none) would
/// not be flagged, and a following `(` so fields/paths are ignored.
/// `unreachable!` is included because an "impossible" arm that panics is
/// still a panic — the invariant making it impossible must be annotated.
pub fn no_panic(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let method = (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && punct(&toks[i - 1], ".")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "("));
        let macro_call = matches!(
            t.text.as_str(),
            "panic" | "todo" | "unimplemented" | "unreachable"
        ) && matches!(toks.get(i + 1), Some(n) if punct(n, "!"));
        if method {
            out.push(violation(
                "no-panic",
                t,
                format!(
                    "`.{}()`{} panics; return a typed error or annotate the invariant",
                    t.text,
                    in_fn(ctx, i)
                ),
            ));
        } else if macro_call {
            out.push(violation(
                "no-panic",
                t,
                format!(
                    "`{}!`{} in library code; return a typed error instead",
                    t.text,
                    in_fn(ctx, i)
                ),
            ));
        }
    }
}

/// R3: `==` or `!=` with a float literal (or `NAN`/`INFINITY` constant) on
/// either side, outside test code. Token-level approximation: comparisons
/// between two float *variables* are invisible to this rule — the rule
/// exists to catch the literal-tolerance idiom (`x == 0.3`) that breaks
/// under rounding.
pub fn float_eq(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || !(punct(t, "==") || punct(t, "!=")) {
            continue;
        }
        let float_operand = |n: Option<&Tok>| {
            n.is_some_and(|n| {
                n.kind == TokKind::Float
                    || (n.kind == TokKind::Ident && (n.text == "NAN" || n.text == "INFINITY"))
            })
        };
        // Next token, or the constant after `f64::`-style paths.
        let rhs = toks.get(i + 1);
        let rhs_const = if rhs.is_some_and(|n| n.kind == TokKind::Ident)
            && matches!(toks.get(i + 2), Some(n) if punct(n, "::"))
        {
            toks.get(i + 3)
        } else {
            rhs
        };
        let lhs = i.checked_sub(1).and_then(|j| toks.get(j));
        if float_operand(lhs) || float_operand(rhs) || float_operand(rhs_const) {
            out.push(violation(
                "float-eq",
                t,
                format!(
                    "float `{}` comparison; use a tolerance, `total_cmp`, or annotate why \
                     exactness is sound",
                    t.text
                ),
            ));
        }
    }
}

/// R4: lossy float-to-int casts in non-test library code. Two shapes:
/// `<float literal> as <int>` and `.floor()/.ceil()/.round()/.trunc() as
/// <int>` (the canonical binning idiom — `as` silently maps NaN to 0 and
/// saturates infinities, so each such site must be annotated with the
/// reason it is safe).
pub fn lossy_cast(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || !ident(t, "as") {
            continue;
        }
        let to_int = matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident
            && INT_TYPES.contains(&n.text.as_str()));
        if !to_int {
            continue;
        }
        let prev = match i.checked_sub(1).and_then(|j| toks.get(j)) {
            Some(p) => p,
            None => continue,
        };
        if prev.kind == TokKind::Float {
            out.push(violation(
                "lossy-cast",
                t,
                format!("float literal cast `{} as {}`", prev.text, toks[i + 1].text),
            ));
            continue;
        }
        // `.method() as int` with a known truncating float method.
        if punct(prev, ")") && i >= 4 {
            let open = &toks[i - 2];
            let name = &toks[i - 3];
            let dot = &toks[i - 4];
            if punct(open, "(")
                && punct(dot, ".")
                && name.kind == TokKind::Ident
                && FLOAT_TRUNC_METHODS.contains(&name.text.as_str())
            {
                out.push(violation(
                    "lossy-cast",
                    t,
                    format!(
                        "`.{}() as {}` silently maps NaN to 0; annotate why the value is finite \
                         or use a checked conversion",
                        name.text,
                        toks[i + 1].text
                    ),
                ));
            }
        }
    }
}

/// R5: crate roots (`src/lib.rs`, `src/main.rs`) must carry
/// `#![forbid(unsafe_code)]`. Matched as the token sequence `forbid (
/// unsafe_code )` anywhere in the file, which is exactly as strong as the
/// attribute itself (an outer `#[forbid]` on the first item would also
/// satisfy the tokens, but not survive `cargo build` semantics any
/// differently for a whole-crate lint).
pub fn forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.is_crate_root {
        return;
    }
    let toks = &ctx.toks;
    let found = toks.iter().enumerate().any(|(i, t)| {
        ident(t, "forbid")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "("))
            && matches!(toks.get(i + 2), Some(n) if ident(n, "unsafe_code"))
            && matches!(toks.get(i + 3), Some(n) if punct(n, ")"))
    });
    if !found {
        out.push(Violation {
            rule: "forbid-unsafe",
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// R6: in the numeric and fault-tolerance crates (`nn`, `glm`, `survival`,
/// `resilience`), a `pub fn` whose name starts with
/// `fit`/`train`/`solve`/`factor`/`checkpoint`/`resume` must mention
/// `Result` in its signature. These are the entry points that can fail on
/// valid-typed but numerically-degenerate input (or, for the
/// checkpoint/resume family, on torn files and mismatched state);
/// panicking there poisons every caller.
/// `pub(crate)` helpers are exempt (the `pub` must be directly followed by
/// `fn`).
pub fn fallible_entry(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let FileClass::Lib { krate } = &ctx.class else {
        return;
    };
    if !RESULT_ENTRY_CRATES.contains(&krate.as_str()) {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || !ident(&toks[i], "pub") {
            continue;
        }
        let (Some(fn_tok), Some(name)) = (toks.get(i + 1), toks.get(i + 2)) else {
            continue;
        };
        if !ident(fn_tok, "fn") || name.kind != TokKind::Ident {
            continue;
        }
        let matches_prefix = FALLIBLE_PREFIXES.iter().any(|p| {
            name.text == *p || name.text.starts_with(&format!("{p}_"))
        });
        if !matches_prefix {
            continue;
        }
        // Scan the signature up to the body `{` (or `;` for trait decls) at
        // paren/bracket depth 0, looking for `Result`.
        let mut depth = 0i32;
        let mut returns_result = false;
        for t in toks.iter().skip(i + 3) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident && t.text.contains("Result") {
                returns_result = true;
                break;
            }
        }
        if !returns_result {
            out.push(violation(
                "fallible-entry",
                name,
                format!(
                    "`pub fn {}` in crate `{krate}` is a fallible numeric entry point and must \
                     return a Result",
                    name.text
                ),
            ));
        }
    }
}

/// Formats " in `fn name`" for a token, when the tree knows the enclosing
/// function — so a violation message points at the item, not just a line.
fn in_fn(ctx: &FileCtx, i: usize) -> String {
    ctx.tree
        .enclosing_fn(i)
        .map(|f| format!(" in `fn {}`", f.name))
        .unwrap_or_default()
}

/// R7: `HashMap` / `HashSet` anywhere in non-test code of the deterministic
/// crates. Type-level approximation: the token stream cannot track what a
/// binding's type is at an `.iter()`/`for` site, so the rule bans the
/// container *mention* itself — declaration, import, or turbofish — which
/// is exactly the set of places a hash container can enter the crate. A
/// container that is provably never iterated keeps a `lint:allow` with the
/// invariant; everything else moves to `BTreeMap`/`BTreeSet`.
pub fn unordered_iter(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let FileClass::Lib { krate } = &ctx.class else {
        return;
    };
    if !DETERMINISTIC_CRATES.contains(&krate.as_str()) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            out.push(violation(
                "unordered-iter",
                t,
                format!(
                    "`{}`{} iterates in nondeterministic hash order; use `BTree{}` or annotate \
                     why it is never iterated",
                    t.text,
                    in_fn(ctx, i),
                    &t.text[4..]
                ),
            ));
        }
    }
}

/// R8: thread spawns outside `linalg::pool`. Matches `spawn(` calls
/// (`std::thread::spawn`, `scope.spawn`) and `use` imports whose path ends
/// in `thread::spawn` (via the tree's use table, so an aliased import
/// cannot hide the call site). Approximation: a local function named
/// `spawn` would be flagged too — name it something else or annotate.
pub fn raw_spawn(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) || ctx.path == POOL_PATH {
        return;
    }
    for u in &ctx.tree.uses {
        if !u.cfg_test && u.path.ends_with("thread::spawn") {
            out.push(Violation {
                rule: "raw-spawn",
                line: u.line,
                col: 1,
                message: format!(
                    "importing `{}`; all parallelism goes through `linalg::WorkerPool`",
                    u.path
                ),
            });
        }
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if ident(t, "spawn") && matches!(toks.get(i + 1), Some(n) if punct(n, "(")) {
            out.push(violation(
                "raw-spawn",
                t,
                format!(
                    "raw thread spawn{}; use `linalg::WorkerPool`, whose item-ordered results \
                     keep the numeric result independent of scheduling",
                    in_fn(ctx, i)
                ),
            ));
        }
    }
}

/// R9: inside a non-test function whose body uses `WorkerPool` (the only
/// sanctioned fan-out), accumulating into *addressed* state — `x[i] += …`,
/// `self.field += …` — or calling `.sum()` is flagged: those are the shapes
/// by which shard results get merged, and merge order is part of the
/// numeric result. Gradient merging is exempt where it is sanctioned
/// (`impl GradAccum` methods and `fn tree_reduce`); plain-local `+=`
/// (`acc += x` on a bare identifier) is allowed because the pool returns
/// results in item order, so a local fold over them is already fixed-order.
pub fn unordered_reduce(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) || ctx.path == POOL_PATH {
        return;
    }
    let toks = &ctx.toks;
    for (_, node) in ctx.tree.fn_nodes() {
        if node.cfg_test || node.name == "tree_reduce" {
            continue;
        }
        let Some((open, close)) = node.body else {
            continue;
        };
        if ctx
            .tree
            .enclosing_impl(open)
            .is_some_and(|im| im.name == "GradAccum")
        {
            continue;
        }
        // Header included: `fn run(pool: &WorkerPool)` fans out even when
        // the body only says `pool.map`.
        let parallel = toks[node.start..=close].iter().any(|t| ident(t, "WorkerPool"))
            || toks[open..close].iter().enumerate().any(|(k, t)| {
                ident(t, "spawn") && matches!(toks.get(open + k + 1), Some(n) if punct(n, "("))
            });
        if !parallel {
            continue;
        }
        for j in open..=close {
            if ctx.in_test[j] {
                continue;
            }
            // Tokens of a nested fn are that fn's own responsibility.
            if ctx.tree.enclosing(j, NodeKind::Fn).map(|f| f.start) != Some(node.start) {
                continue;
            }
            let t = &toks[j];
            if punct(t, "+=") && j >= 1 {
                let prev = &toks[j - 1];
                let addressed = punct(prev, "]")
                    || (prev.kind == TokKind::Ident
                        && j >= 2
                        && punct(&toks[j - 2], "."));
                if addressed {
                    out.push(violation(
                        "unordered-reduce",
                        t,
                        format!(
                            "`+=` into addressed state in parallel `fn {}`; merge through \
                             `GradAccum`/`tree_reduce` or annotate the fixed merge order",
                            node.name
                        ),
                    ));
                }
            } else if ident(t, "sum")
                && j >= 1
                && punct(&toks[j - 1], ".")
                && matches!(toks.get(j + 1), Some(n) if punct(n, "(") || punct(n, "::"))
            {
                out.push(violation(
                    "unordered-reduce",
                    t,
                    format!(
                        "`.sum()` in parallel `fn {}`; float summation order is part of the \
                         numeric result — reduce in fixed order or annotate why this sum is \
                         order-free",
                        node.name
                    ),
                ));
            }
        }
    }
}

/// R10: `Mutex` / `RwLock` / `Condvar` / `Atomic*` mentions in non-test
/// code of the numeric crates (outside `linalg::pool`). The data-parallel
/// design is share-nothing: shards own their state, results are merged in
/// fixed order, so a lock or atomic on the result path is either dead
/// weight or a scheduling-order leak. Telemetry (`obsv`) is out of scope —
/// its sinks may lock because they never feed numbers back.
pub fn shared_mut_numeric(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let FileClass::Lib { krate } = &ctx.class else {
        return;
    };
    if !NUMERIC_SYNC_CRATES.contains(&krate.as_str()) || ctx.path == POOL_PATH {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let sync_primitive = matches!(t.text.as_str(), "Mutex" | "RwLock" | "Condvar")
            || (t.text.starts_with("Atomic") && t.text.len() > "Atomic".len());
        if sync_primitive {
            out.push(violation(
                "shared-mut-numeric",
                t,
                format!(
                    "`{}`{} on the numeric result path; shards are share-nothing and merged in \
                     fixed order — move the shared state out or annotate why it cannot affect \
                     results",
                    t.text,
                    in_fn(ctx, i)
                ),
            ));
        }
    }
}

/// R11: `available_parallelism` in non-test library code. The thread count
/// is a throughput knob that callers pass in explicitly; reading it from
/// the machine inside a library couples behaviour (and, if it ever leaks
/// into a shard layout, results) to the host. Tool crates may query it.
pub fn ambient_parallelism(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if ident(t, "available_parallelism") {
            out.push(violation(
                "ambient-parallelism",
                t,
                format!(
                    "`available_parallelism()`{} reads ambient machine state; take the thread \
                     count as an argument",
                    in_fn(ctx, i)
                ),
            ));
        }
    }
}

/// R12: `Instant::now()` / `SystemTime::now()` anywhere outside
/// `crates/obsv` — library *and* tool crates, non-test. The observability
/// crate is the one audited home for wall-clock access (`Stopwatch`,
/// `SpanTimer`, the profiler's span clock); everything else times itself
/// through those wrappers, so a grep of `obsv` answers "where does time
/// come from" for the whole workspace and no clock read can sneak onto a
/// numeric path. Matched as the `Ident :: now` token sequence, so aliased
/// re-export paths (`time::Instant::now`) are caught at the call site.
pub fn ambient_time(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if matches!(ctx.class, FileClass::TestOrExample) || ctx.path.starts_with(OBSV_PATH_PREFIX) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if (ident(t, "Instant") || ident(t, "SystemTime"))
            && matches!(toks.get(i + 1), Some(n) if punct(n, "::"))
            && matches!(toks.get(i + 2), Some(n) if ident(n, "now"))
        {
            out.push(violation(
                "ambient-time",
                t,
                format!(
                    "`{}::now()`{} reads the ambient clock; wall-clock access lives in `obsv` — \
                     time with `obsv::Stopwatch` or a profiling span",
                    t.text,
                    in_fn(ctx, i)
                ),
            ));
        }
    }
}

/// R13: allocation inside a loop of a *profiled kernel* — a non-test fn in
/// `linalg`/`nn` whose own body opens a `profile::span`. The span marks the
/// fn as a measured hot path, so per-iteration `Vec::new`, `.push()`,
/// `.clone()`, `.to_vec()`, or `format!` is a cost the profiler is already
/// charging; hoist the buffer out of the loop, reuse scratch, or annotate
/// the invariant (e.g. "pushes into a pre-reserved Vec, no realloc").
/// Loop *headers* are excluded — `for r in rows.clone()` clones once per
/// call, not per iteration — and nested fns audit their own loops.
pub fn hot_loop_alloc(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let FileClass::Lib { krate } = &ctx.class else {
        return;
    };
    if !KERNEL_CRATES.contains(&krate.as_str()) {
        return;
    }
    let toks = &ctx.toks;
    for (_, node) in ctx.tree.fn_nodes() {
        if node.cfg_test {
            continue;
        }
        let Some((open, close)) = node.body else {
            continue;
        };
        let own =
            |j: usize| ctx.tree.enclosing(j, NodeKind::Fn).map(|f| f.start) == Some(node.start);
        let profiled = (open..close).any(|j| {
            own(j)
                && ident(&toks[j], "profile")
                && matches!(toks.get(j + 1), Some(n) if punct(n, "::"))
                && matches!(toks.get(j + 2), Some(n) if ident(n, "span"))
        });
        if !profiled {
            continue;
        }
        // Mark loop-body token ranges: keyword → the `{` at paren/bracket
        // depth 0 → its matching `}`.
        let mut in_loop = vec![false; close + 1];
        for j in open..close {
            if !own(j)
                || !(ident(&toks[j], "for") || ident(&toks[j], "while") || ident(&toks[j], "loop"))
            {
                continue;
            }
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut body_open = None;
            while k < close {
                let t = &toks[k];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            body_open = Some(k);
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                k += 1;
            }
            let Some(bo) = body_open else {
                continue;
            };
            let mut brace_depth = 0i32;
            let mut k = bo;
            while k < toks.len() {
                let t = &toks[k];
                if punct(t, "{") {
                    brace_depth += 1;
                } else if punct(t, "}") {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let body_close = k.min(close);
            for flag in in_loop.iter_mut().take(body_close).skip(bo + 1) {
                *flag = true;
            }
        }
        for j in open..close {
            if !in_loop.get(j).copied().unwrap_or(false) || !own(j) || ctx.in_test[j] {
                continue;
            }
            let t = &toks[j];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |p: &str| matches!(toks.get(j + 1), Some(n) if punct(n, p));
            let prev_dot = j >= 1 && punct(&toks[j - 1], ".");
            let what = if ident(t, "Vec")
                && next_is("::")
                && matches!(toks.get(j + 2), Some(n) if ident(n, "new"))
            {
                Some("Vec::new()".to_string())
            } else if ident(t, "Mat")
                && next_is("::")
                && matches!(toks.get(j + 2),
                    Some(n) if matches!(n.text.as_str(), "zeros" | "filled" | "from_fn"))
            {
                // The pre-fusion LSTM step allocated three fresh matrices
                // per timestep this way; constructor calls are as much an
                // allocation as Vec::new().
                Some(format!("Mat::{}()", toks[j + 2].text))
            } else if prev_dot
                && next_is("(")
                && matches!(t.text.as_str(), "push" | "clone" | "to_vec")
            {
                Some(format!(".{}()", t.text))
            } else if ident(t, "format") && next_is("!") {
                Some("format!".to_string())
            } else {
                None
            };
            if let Some(what) = what {
                out.push(violation(
                    "hot-loop-alloc",
                    t,
                    format!(
                        "`{what}` allocates inside a loop of profiled kernel `fn {}`; hoist the \
                         buffer out of the loop or reuse scratch, or annotate the invariant",
                        node.name
                    ),
                ));
            }
        }
    }
}

/// R15: potentially-unbounded blocking primitive in the serving layer.
/// `crates/serve` is the one crate doing socket I/O, and its robustness
/// contract is "bounded everything": every `accept`, `recv`, `channel`,
/// or `read*` must be tamed by a timeout, a byte cap, or nonblocking
/// mode, or one slow peer wedges a worker thread for good. The rule
/// cannot see the bound itself — it matches any call whose name is a
/// blocking primitive — so bounded sites annotate what bounds them
/// (`lint:allow(unbounded-blocking): bounded by ...`), turning the allow
/// list into an audit of every blocking point and its bound. Matched as
/// `name (` call sites; `fn name(` definitions are skipped.
pub fn unbounded_blocking(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.path.starts_with(SERVE_PATH_PREFIX) || matches!(ctx.class, FileClass::TestOrExample) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if t.kind != TokKind::Ident || !BLOCKING_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        if !matches!(toks.get(i + 1), Some(n) if punct(n, "(")) {
            continue;
        }
        if i > 0 && ident(&toks[i - 1], "fn") {
            continue;
        }
        out.push(violation(
            "unbounded-blocking",
            t,
            format!(
                "blocking `{}()`{} has no visible bound; give it a timeout, byte cap, or \
                 nonblocking mode and annotate the bound, or one slow peer can wedge the \
                 serving layer",
                t.text,
                in_fn(ctx, i)
            ),
        ));
    }
}

/// Runs every rule against one file.
pub fn run_all(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    ambient_rng(ctx, &mut out);
    no_panic(ctx, &mut out);
    float_eq(ctx, &mut out);
    lossy_cast(ctx, &mut out);
    forbid_unsafe(ctx, &mut out);
    fallible_entry(ctx, &mut out);
    unordered_iter(ctx, &mut out);
    raw_spawn(ctx, &mut out);
    unordered_reduce(ctx, &mut out);
    shared_mut_numeric(ctx, &mut out);
    ambient_parallelism(ctx, &mut out);
    ambient_time(ctx, &mut out);
    hot_loop_alloc(ctx, &mut out);
    unbounded_blocking(ctx, &mut out);
    out
}
