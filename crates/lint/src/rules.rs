//! The lint rules.
//!
//! Every rule is a pattern over the token stream produced by
//! [`crate::lexer`]; none of them parse Rust properly, and each one's
//! documentation states the approximation it makes. The rules encode the
//! reproduction's numerics policy:
//!
//! | id | scope | requirement |
//! |----|-------|-------------|
//! | `ambient-rng` (R1) | library crates, non-test | no `thread_rng()`, `SystemTime::now()`, `rand::random()`, or `from_entropy()`; randomness and wall-clock time must flow in from explicit seeds/arguments |
//! | `no-panic` (R2) | library crates, non-test | no `.unwrap()`, `.expect()`, `panic!`, `todo!`, `unimplemented!` |
//! | `float-eq` (R3) | all crates, non-test | no `==`/`!=` with a float literal (or `NAN`/`INFINITY` constant) operand |
//! | `lossy-cast` (R4) | library crates, non-test | no `<float literal> as <int>` and no `.floor()/.ceil()/.round()/.trunc() as <int>` without an annotation |
//! | `forbid-unsafe` (R5) | every crate root | `#![forbid(unsafe_code)]` present |
//! | `fallible-entry` (R6) | `nn`, `glm`, `survival`, `resilience`, non-test | `pub fn fit*/train*/solve*/factor*/checkpoint*/resume*` returns a `Result` |
//!
//! Violations are suppressed by `// lint:allow(rule-id): reason` on the same
//! or the preceding line (see [`crate::scan`]).

use crate::lexer::{Tok, TokKind};
use crate::scan::{FileClass, FileCtx};

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`no-panic`, ...).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule ids with one-line descriptions, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "ambient-rng",
        "ambient randomness or wall-clock time in library code (R1)",
    ),
    (
        "no-panic",
        "panicking call in non-test library code (R2)",
    ),
    ("float-eq", "naked float equality comparison (R3)"),
    ("lossy-cast", "unannotated lossy float-to-int cast (R4)"),
    (
        "forbid-unsafe",
        "crate root missing #![forbid(unsafe_code)] (R5)",
    ),
    (
        "fallible-entry",
        "fallible numeric entry point does not return Result (R6)",
    ),
    (
        "allow-missing-reason",
        "lint:allow suppression without a reason string",
    ),
];

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Zero-argument `f64` methods whose result is routinely truncated into an
/// index; casting them without an annotation is what R4 flags.
const FLOAT_TRUNC_METHODS: &[&str] = &["floor", "ceil", "round", "trunc"];

/// Crates whose public numeric entry points must return `Result` (R6).
/// `resilience` is included because its whole contract is recovering from
/// failure — a checkpoint or resume path that panics defeats the crate.
const RESULT_ENTRY_CRATES: &[&str] = &["nn", "glm", "survival", "resilience"];

/// Function-name prefixes R6 treats as fallible numeric entry points.
/// `checkpoint`/`resume` cover the fault-tolerance surface: both touch the
/// filesystem and partially-written state, so they can always fail.
const FALLIBLE_PREFIXES: &[&str] = &["fit", "train", "solve", "factor", "checkpoint", "resume"];

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

fn violation(rule: &'static str, t: &Tok, message: String) -> Violation {
    Violation {
        rule,
        line: t.line,
        col: t.col,
        message,
    }
}

/// R1: `thread_rng` / `SystemTime::now` / `rand::random` / `from_entropy`
/// in non-test library code. Token-level: flags the identifiers wherever
/// they appear outside strings/comments, so even a re-export would be
/// caught.
pub fn ambient_rng(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if ident(t, "thread_rng") || ident(t, "from_entropy") {
            out.push(violation(
                "ambient-rng",
                t,
                format!(
                    "`{}` seeds from the environment; thread an explicit seeded RNG instead",
                    t.text
                ),
            ));
        } else if ident(t, "SystemTime")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "::"))
            && matches!(toks.get(i + 2), Some(n) if ident(n, "now"))
        {
            out.push(violation(
                "ambient-rng",
                t,
                "`SystemTime::now()` makes output depend on wall-clock time; take the timestamp \
                 as an argument"
                    .to_string(),
            ));
        } else if ident(t, "rand")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "::"))
            && matches!(toks.get(i + 2), Some(n) if ident(n, "random"))
        {
            out.push(violation(
                "ambient-rng",
                t,
                "`rand::random()` uses the ambient thread RNG; thread an explicit seeded RNG"
                    .to_string(),
            ));
        }
    }
}

/// R2: `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` in
/// non-test library code. Method matches require a preceding `.` so local
/// functions named `unwrap` (there are none) would not be flagged, and a
/// following `(` so fields/paths are ignored.
pub fn no_panic(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let method = (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && punct(&toks[i - 1], ".")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "("));
        let macro_call = matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "!"));
        if method {
            out.push(violation(
                "no-panic",
                t,
                format!(
                    "`.{}()` panics; return a typed error or annotate the invariant",
                    t.text
                ),
            ));
        } else if macro_call {
            out.push(violation(
                "no-panic",
                t,
                format!("`{}!` in library code; return a typed error instead", t.text),
            ));
        }
    }
}

/// R3: `==` or `!=` with a float literal (or `NAN`/`INFINITY` constant) on
/// either side, outside test code. Token-level approximation: comparisons
/// between two float *variables* are invisible to this rule — the rule
/// exists to catch the literal-tolerance idiom (`x == 0.3`) that breaks
/// under rounding.
pub fn float_eq(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || !(punct(t, "==") || punct(t, "!=")) {
            continue;
        }
        let float_operand = |n: Option<&Tok>| {
            n.is_some_and(|n| {
                n.kind == TokKind::Float
                    || (n.kind == TokKind::Ident && (n.text == "NAN" || n.text == "INFINITY"))
            })
        };
        // Next token, or the constant after `f64::`-style paths.
        let rhs = toks.get(i + 1);
        let rhs_const = if rhs.is_some_and(|n| n.kind == TokKind::Ident)
            && matches!(toks.get(i + 2), Some(n) if punct(n, "::"))
        {
            toks.get(i + 3)
        } else {
            rhs
        };
        let lhs = i.checked_sub(1).and_then(|j| toks.get(j));
        if float_operand(lhs) || float_operand(rhs) || float_operand(rhs_const) {
            out.push(violation(
                "float-eq",
                t,
                format!(
                    "float `{}` comparison; use a tolerance, `total_cmp`, or annotate why \
                     exactness is sound",
                    t.text
                ),
            ));
        }
    }
}

/// R4: lossy float-to-int casts in non-test library code. Two shapes:
/// `<float literal> as <int>` and `.floor()/.ceil()/.round()/.trunc() as
/// <int>` (the canonical binning idiom — `as` silently maps NaN to 0 and
/// saturates infinities, so each such site must be annotated with the
/// reason it is safe).
pub fn lossy_cast(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !matches!(ctx.class, FileClass::Lib { .. }) {
        return;
    }
    let toks = &ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || !ident(t, "as") {
            continue;
        }
        let to_int = matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident
            && INT_TYPES.contains(&n.text.as_str()));
        if !to_int {
            continue;
        }
        let prev = match i.checked_sub(1).and_then(|j| toks.get(j)) {
            Some(p) => p,
            None => continue,
        };
        if prev.kind == TokKind::Float {
            out.push(violation(
                "lossy-cast",
                t,
                format!("float literal cast `{} as {}`", prev.text, toks[i + 1].text),
            ));
            continue;
        }
        // `.method() as int` with a known truncating float method.
        if punct(prev, ")") && i >= 4 {
            let open = &toks[i - 2];
            let name = &toks[i - 3];
            let dot = &toks[i - 4];
            if punct(open, "(")
                && punct(dot, ".")
                && name.kind == TokKind::Ident
                && FLOAT_TRUNC_METHODS.contains(&name.text.as_str())
            {
                out.push(violation(
                    "lossy-cast",
                    t,
                    format!(
                        "`.{}() as {}` silently maps NaN to 0; annotate why the value is finite \
                         or use a checked conversion",
                        name.text,
                        toks[i + 1].text
                    ),
                ));
            }
        }
    }
}

/// R5: crate roots (`src/lib.rs`, `src/main.rs`) must carry
/// `#![forbid(unsafe_code)]`. Matched as the token sequence `forbid (
/// unsafe_code )` anywhere in the file, which is exactly as strong as the
/// attribute itself (an outer `#[forbid]` on the first item would also
/// satisfy the tokens, but not survive `cargo build` semantics any
/// differently for a whole-crate lint).
pub fn forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.is_crate_root {
        return;
    }
    let toks = &ctx.toks;
    let found = toks.iter().enumerate().any(|(i, t)| {
        ident(t, "forbid")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "("))
            && matches!(toks.get(i + 2), Some(n) if ident(n, "unsafe_code"))
            && matches!(toks.get(i + 3), Some(n) if punct(n, ")"))
    });
    if !found {
        out.push(Violation {
            rule: "forbid-unsafe",
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// R6: in the numeric and fault-tolerance crates (`nn`, `glm`, `survival`,
/// `resilience`), a `pub fn` whose name starts with
/// `fit`/`train`/`solve`/`factor`/`checkpoint`/`resume` must mention
/// `Result` in its signature. These are the entry points that can fail on
/// valid-typed but numerically-degenerate input (or, for the
/// checkpoint/resume family, on torn files and mismatched state);
/// panicking there poisons every caller.
/// `pub(crate)` helpers are exempt (the `pub` must be directly followed by
/// `fn`).
pub fn fallible_entry(ctx: &FileCtx, out: &mut Vec<Violation>) {
    let FileClass::Lib { krate } = &ctx.class else {
        return;
    };
    if !RESULT_ENTRY_CRATES.contains(&krate.as_str()) {
        return;
    }
    let toks = &ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test[i] || !ident(&toks[i], "pub") {
            continue;
        }
        let (Some(fn_tok), Some(name)) = (toks.get(i + 1), toks.get(i + 2)) else {
            continue;
        };
        if !ident(fn_tok, "fn") || name.kind != TokKind::Ident {
            continue;
        }
        let matches_prefix = FALLIBLE_PREFIXES.iter().any(|p| {
            name.text == *p || name.text.starts_with(&format!("{p}_"))
        });
        if !matches_prefix {
            continue;
        }
        // Scan the signature up to the body `{` (or `;` for trait decls) at
        // paren/bracket depth 0, looking for `Result`.
        let mut depth = 0i32;
        let mut returns_result = false;
        for t in toks.iter().skip(i + 3) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            if t.kind == TokKind::Ident && t.text.contains("Result") {
                returns_result = true;
                break;
            }
        }
        if !returns_result {
            out.push(violation(
                "fallible-entry",
                name,
                format!(
                    "`pub fn {}` in crate `{krate}` is a fallible numeric entry point and must \
                     return a Result",
                    name.text
                ),
            ));
        }
    }
}

/// Runs every rule against one file.
pub fn run_all(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    ambient_rng(ctx, &mut out);
    no_panic(ctx, &mut out);
    float_eq(ctx, &mut out);
    lossy_cast(ctx, &mut out);
    forbid_unsafe(ctx, &mut out);
    fallible_entry(ctx, &mut out);
    out
}
