//! Workspace call graph over the per-file item trees.
//!
//! The file-local rules of PRs 2/5 answer "does this token appear here?";
//! the effect system ([`crate::effects`]) needs "what does this function
//! *reach*?". This module builds the reachability substrate: every `fn` in
//! the workspace is indexed by its crate/module path, and every call site
//! inside a function body is resolved to candidate callees, producing an
//! edge list the effect lattice is propagated over.
//!
//! ## Function paths
//!
//! A function's path is `<crate>::<modules>::[<Impl>::]<name>`, where
//! `<crate>` is the *directory* name under `crates/` (`core`, not the
//! package name `cloudgen`; the umbrella `src/` is `suite`), `<modules>`
//! come from the file's location under `src/` plus any inline `mod` nesting
//! from the item tree, and `<Impl>` is the enclosing impl/trait self-type
//! head when the fn is a method. `crates/nn/src/lstm.rs` therefore yields
//! paths like `nn::lstm::Lstm::forward`.
//!
//! ## Call resolution (documented approximations)
//!
//! * **Path calls** (`a::b::f(...)`): the head segment is normalized
//!   through `crate`/`self`/`super`/`Self`, the file's `use` table (so
//!   `use obsv::profile; profile::span(..)` resolves into `obsv`), and the
//!   package-name aliases (`cloudgen::generate` → crate dir `core`). The
//!   remaining segments are matched as a *suffix* of indexed fn paths
//!   within the named crate, so re-exports (`linalg::Mat::zeros` for
//!   `linalg::matrix::Mat::zeros`) still resolve.
//! * **Plain calls** (`f(...)`): resolved through the `use` table first,
//!   then against fns defined in the same file. Unqualified cross-file
//!   calls are impossible in Rust without an import, so nothing is missed
//!   by not guessing globally — and `std` names never produce false edges.
//! * **Method calls** (`recv.m(...)`): resolved by name against every
//!   indexed impl/trait method, narrowed by a receiver heuristic — a
//!   `self.m()` prefers the enclosing impl's own method, and an identifier
//!   receiver must loosely match the impl type name (`pool` ↔
//!   `WorkerPool`). Method names that collide with ubiquitous `std`
//!   methods ([`STD_METHODS`]) *require* a receiver match, so an iterator
//!   `.map(..)` never grows an edge to `WorkerPool::map`.
//! * Calls into `std` and external crates produce no edges; their effects
//!   are captured as *intrinsic* effects of the caller by
//!   [`crate::effects`] token patterns instead.
//!
//! The graph over-approximates (a method call may edge to several
//! same-named candidates) and under-approximates (macro-generated calls,
//! function pointers, and trait objects are invisible); both directions are
//! deliberate and documented here, and the effect contracts are written
//! against this resolution, not against rustc's.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::scan::{FileClass, FileCtx};
use crate::tree::NodeKind;

/// Extern-crate package names (underscored, as they appear in `use`
/// paths) mapped to crate directory names used in fn paths.
const CRATE_ALIASES: &[(&str, &str)] = &[
    ("cloudgen", "core"),
    ("cloudgen_cli", "cli"),
    ("cloudgen_lint", "lint"),
    ("cloudgen_bench", "bench"),
    ("cloudgen_suite", "suite"),
];

/// Method names so common on `std` types that a bare-name match would be
/// noise: these only resolve when the receiver identifier matches the
/// candidate impl type. Everything else resolves by name (with receiver
/// narrowing when a receiver identifier is present).
const STD_METHODS: &[&str] = &[
    "abs", "all", "and_then", "any", "as_mut", "as_mut_slice", "as_ref", "as_slice", "as_str",
    "borrow", "borrow_mut", "bytes", "ceil", "chain", "chars", "checked_add", "checked_sub",
    "chunks", "clamp", "clear", "clone", "cloned", "cmp", "collect", "contains", "contains_key",
    "copied", "copy_from_slice", "count", "display", "drain", "elapsed", "ends_with", "entry",
    "enumerate", "eq", "err", "exists", "exp", "extend", "fill", "filter", "filter_map", "find",
    "first", "flat_map", "flatten", "floor", "flush", "fmt", "fold", "get", "get_mut", "hash",
    "insert", "into", "into_iter", "is_dir", "is_empty", "is_file", "is_finite", "is_nan",
    "iter", "iter_mut", "join", "keys", "last", "len", "lines", "ln", "lock", "map", "map_err",
    "max", "max_by", "max_by_key", "min", "min_by", "min_by_key", "ne", "next", "ok", "or_else",
    "parse", "partial_cmp", "pop", "position", "powf", "powi", "product", "push", "push_str",
    "read", "read_to_string", "recv", "reduce", "remove", "replace", "resize", "retain", "rev",
    "rotate_left", "round", "rsplit", "saturating_add", "saturating_sub", "send", "skip",
    "skip_while", "sort", "sort_by", "sort_by_key", "split", "split_at", "split_at_mut",
    "splitn", "sqrt", "starts_with", "step_by", "sum", "swap", "take", "take_while", "then",
    "then_some", "to_owned", "to_string", "to_vec", "trim", "truncate", "unwrap", "unwrap_or",
    "unwrap_or_default", "unwrap_or_else", "values", "windows", "write", "write_all", "zip",
];

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnMeta {
    /// Full path, `::`-joined: `nn::lstm::Lstm::forward`.
    pub path: String,
    /// Crate directory name (`nn`, `core`, `suite`, ...).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Bare fn name.
    pub name: String,
    /// Enclosing impl/trait self-type head, when the fn is a method.
    pub impl_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when declared `pub` (exactly; `pub(crate)` is not public).
    pub is_pub: bool,
    /// True for library-crate code (vs tool binaries).
    pub is_lib: bool,
    /// Index of the owning [`FileCtx`] in the slice passed to [`build_graph`].
    pub file_idx: usize,
    /// Index of the fn's node in that file's item tree.
    pub node_idx: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Indexed functions; edge endpoints index into this.
    pub fns: Vec<FnMeta>,
    /// `callees[f]`: sorted, deduped callee ids of `f`.
    pub callees: Vec<Vec<u32>>,
    /// Fn ids by full path (first definition wins on the rare duplicate).
    by_path: BTreeMap<String, u32>,
    /// Fn ids by bare name.
    by_name: BTreeMap<String, Vec<u32>>,
    /// Method fn ids (those with an `impl_name`) by bare name.
    methods: BTreeMap<String, Vec<u32>>,
}

impl CallGraph {
    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }

    /// Looks up a fn id by its full path.
    pub fn id_of(&self, path: &str) -> Option<u32> {
        self.by_path.get(path).copied()
    }
}

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// Module path segments derived from a workspace-relative file path:
/// `crates/nn/src/lstm.rs` → `["nn", "lstm"]`; crate roots and `mod.rs`
/// files contribute no leaf segment; the umbrella `src/` is crate `suite`.
fn file_mod_segs(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, tail): (&str, &[&str]) = match parts.as_slice() {
        ["crates", krate, "src", tail @ ..] => (krate, tail),
        ["src", tail @ ..] => ("suite", tail),
        _ => return Vec::new(),
    };
    let mut segs = vec![krate.to_string()];
    for (i, part) in tail.iter().enumerate() {
        let last = i + 1 == tail.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if !matches!(stem, "lib" | "main" | "mod") {
                segs.push(stem.to_string());
            }
        } else if *part != "bin" {
            segs.push((*part).to_string());
        }
    }
    segs
}

/// Normalizes a path head through the package-name aliases.
fn normalize_crate(head: &str) -> &str {
    CRATE_ALIASES
        .iter()
        .find(|(pkg, _)| *pkg == head)
        .map(|(_, dir)| *dir)
        .unwrap_or(head)
}

/// Loose receiver-name ↔ type-name match: `pool` ↔ `WorkerPool`,
/// `cache` ↔ `PlacementCache`, `m` ↔ `Mat` only via exact match. Both
/// sides lowercased, receiver underscores dropped.
fn receiver_matches(receiver: &str, type_name: &str) -> bool {
    let r = receiver.to_lowercase().replace('_', "");
    let t = type_name.to_lowercase();
    if r.is_empty() {
        return false;
    }
    r == t || (r.len() >= 3 && (t.ends_with(&r) || r.ends_with(&t) || t.contains(&r)))
}

/// Builds the call graph for a set of scanned files. Only non-test code is
/// indexed (`#[cfg(test)]` fns neither appear as nodes nor as callees);
/// files classified [`FileClass::TestOrExample`] are skipped entirely.
pub fn build_graph(files: &[FileCtx]) -> CallGraph {
    let mut g = CallGraph::default();

    // Pass 1: index every fn definition.
    for (file_idx, ctx) in files.iter().enumerate() {
        let (krate, is_lib) = match &ctx.class {
            FileClass::Lib { krate } => (krate.clone(), true),
            FileClass::Bin { krate } => (krate.clone(), false),
            FileClass::TestOrExample => continue,
        };
        let mod_segs = file_mod_segs(&ctx.path);
        for (node_idx, node) in ctx.tree.fn_nodes() {
            if node.cfg_test || node.body.is_none() {
                continue;
            }
            // Inline `mod` chain and enclosing impl/trait from the tree.
            let mut inline_mods = Vec::new();
            let mut impl_name = None;
            let mut cur = node.parent;
            while let Some(p) = cur {
                let pn = &ctx.tree.nodes[p];
                match pn.kind {
                    NodeKind::Mod => inline_mods.push(pn.name.clone()),
                    NodeKind::Impl | NodeKind::Trait if impl_name.is_none() => {
                        impl_name = Some(pn.name.clone());
                    }
                    _ => {}
                }
                cur = pn.parent;
            }
            inline_mods.reverse();
            let mut segs = mod_segs.clone();
            segs.extend(inline_mods);
            if let Some(im) = &impl_name {
                segs.push(im.clone());
            }
            segs.push(node.name.clone());
            let path = segs.join("::");
            let is_pub = node
                .start
                .checked_sub(1)
                .and_then(|j| ctx.toks.get(j))
                .is_some_and(|t| ident(t, "pub"));
            let line = ctx.toks.get(node.start).map(|t| t.line).unwrap_or(1);
            let id = g.fns.len() as u32;
            g.fns.push(FnMeta {
                path: path.clone(),
                krate: krate.clone(),
                file: ctx.path.clone(),
                name: node.name.clone(),
                impl_name: impl_name.clone(),
                line,
                is_pub,
                is_lib,
                file_idx,
                node_idx,
            });
            g.by_path.entry(path).or_insert(id);
            g.by_name.entry(node.name.clone()).or_default().push(id);
            if impl_name.is_some() {
                g.methods.entry(node.name.clone()).or_default().push(id);
            }
        }
    }

    // Pass 2: resolve call sites.
    g.callees = vec![Vec::new(); g.fns.len()];
    for caller in 0..g.fns.len() {
        let meta = g.fns[caller].clone();
        let ctx = &files[meta.file_idx];
        let node = &ctx.tree.nodes[meta.node_idx];
        let Some((open, close)) = node.body else {
            continue;
        };
        let mut edges = Vec::new();
        for j in open + 1..close {
            // Tokens of a nested fn belong to the nested fn.
            if ctx.tree.enclosing(j, NodeKind::Fn).map(|f| f.start) != Some(node.start) {
                continue;
            }
            let t = &ctx.toks[j];
            if t.kind != TokKind::Ident || !is_called(&ctx.toks, j) {
                continue;
            }
            // Skip definition sites (`fn name(`) — `is_called` sees the `(`.
            if j >= 1 && ident(&ctx.toks[j - 1], "fn") {
                continue;
            }
            if j >= 1 && punct(&ctx.toks[j - 1], ".") {
                resolve_method(&g, ctx, &meta, j, &mut edges);
            } else if !matches!(ctx.toks.get(j + 1), Some(n) if punct(n, "::")) {
                // Last segment of a path (or a plain call): collect the
                // whole `a :: b :: f` chain backwards.
                let segs = path_chain(&ctx.toks, j);
                resolve_path_call(&g, ctx, &meta, &segs, &mut edges);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges.retain(|&c| c as usize != caller);
        g.callees[caller] = edges;
    }
    g
}

/// True when the ident at `j` is directly applied: followed by `(`,
/// optionally after a balanced `::<...>` turbofish.
fn is_called(toks: &[Tok], j: usize) -> bool {
    let mut k = j + 1;
    if matches!(toks.get(k), Some(n) if punct(n, "::"))
        && matches!(toks.get(k + 1), Some(n) if punct(n, "<"))
    {
        // Skip the turbofish group.
        let mut depth = 0i32;
        k += 1;
        while let Some(t) = toks.get(k) {
            if punct(t, "<") {
                depth += 1;
            } else if punct(t, ">") {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            } else if punct(t, "->") || punct(t, ";") || punct(t, "{") {
                return false;
            }
            k += 1;
        }
    }
    matches!(toks.get(k), Some(n) if punct(n, "("))
}

/// Collects the `::`-joined chain ending at the ident `j`, in source order.
fn path_chain(toks: &[Tok], j: usize) -> Vec<String> {
    let mut segs = vec![toks[j].text.clone()];
    let mut k = j;
    while k >= 2 && punct(&toks[k - 1], "::") && toks[k - 2].kind == TokKind::Ident {
        segs.push(toks[k - 2].text.clone());
        k -= 2;
    }
    segs.reverse();
    segs
}

/// Resolves `recv.m(...)` at ident index `j` (the method name).
fn resolve_method(g: &CallGraph, ctx: &FileCtx, caller: &FnMeta, j: usize, edges: &mut Vec<u32>) {
    let name = ctx.toks[j].text.as_str();
    let Some(candidates) = g.methods.get(name) else {
        return;
    };
    let receiver = j
        .checked_sub(2)
        .and_then(|k| ctx.toks.get(k))
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str());
    // `self.m(...)`: prefer the enclosing impl's own method.
    if receiver == Some("self") {
        if let Some(enclosing) = ctx
            .tree
            .nodes
            .get(caller.node_idx)
            .and_then(|n| ctx.tree.enclosing_impl(n.start + 1))
        {
            let own: Vec<u32> = candidates
                .iter()
                .copied()
                .filter(|&c| g.fns[c as usize].impl_name.as_deref() == Some(&enclosing.name))
                .collect();
            if !own.is_empty() {
                edges.extend(own);
                return;
            }
        }
    }
    // Identifier receiver: narrow candidates to loosely matching types.
    if let Some(recv) = receiver.filter(|r| *r != "self") {
        let matching: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&c| {
                g.fns[c as usize]
                    .impl_name
                    .as_deref()
                    .is_some_and(|t| receiver_matches(recv, t))
            })
            .collect();
        if !matching.is_empty() {
            edges.extend(matching);
            return;
        }
    }
    // No receiver evidence: ubiquitous std names stay edge-free; rarer
    // names over-approximate to every same-named method.
    if !STD_METHODS.contains(&name) {
        edges.extend(candidates.iter().copied());
    }
}

/// Resolves a plain or path call with source-order segments `segs`.
fn resolve_path_call(
    g: &CallGraph,
    ctx: &FileCtx,
    caller: &FnMeta,
    segs: &[String],
    edges: &mut Vec<u32>,
) {
    if segs.is_empty() {
        return;
    }
    if segs.len() == 1 {
        let name = segs[0].as_str();
        // `use`-imported (possibly `as`-renamed) free fn.
        if let Some(path) = ctx.tree.resolve_import(name) {
            let full: Vec<String> = path.split("::").map(str::to_string).collect();
            resolve_path_call(g, ctx, caller, &full, edges);
            return;
        }
        // Same-file definition (unqualified cross-file calls need imports).
        if let Some(ids) = g.by_name.get(name) {
            edges.extend(
                ids.iter()
                    .copied()
                    .filter(|&c| g.fns[c as usize].file_idx == caller.file_idx),
            );
        }
        return;
    }
    let head = segs[0].as_str();
    let rest = &segs[1..];
    // `Self::new(...)` → method of the enclosing impl type.
    if head == "Self" {
        if let Some(enclosing) = ctx
            .tree
            .nodes
            .get(caller.node_idx)
            .and_then(|n| ctx.tree.enclosing_impl(n.start + 1))
        {
            let full: Vec<String> = std::iter::once(enclosing.name.clone())
                .chain(rest.iter().cloned())
                .collect();
            resolve_type_method(g, &full, edges);
        }
        return;
    }
    // `crate::` / `self::` / `super::` prefixes.
    let crate_scoped: Option<Vec<String>> = match head {
        "crate" => Some(
            std::iter::once(caller.krate.clone())
                .chain(rest.iter().cloned())
                .collect(),
        ),
        "self" | "super" => {
            let mut base = file_mod_segs(&caller.file);
            if head == "super" {
                base.pop();
            }
            base.extend(rest.iter().cloned());
            Some(base)
        }
        _ => None,
    };
    if let Some(full) = crate_scoped {
        suffix_resolve(g, &full, edges);
        return;
    }
    // `use`-imported head (`use obsv::profile; profile::span(..)`).
    if let Some(path) = ctx.tree.resolve_import(head) {
        let full: Vec<String> = path
            .split("::")
            .map(str::to_string)
            .chain(rest.iter().cloned())
            .collect();
        // The import expansion changed the head; re-resolve once.
        if full.first().map(String::as_str) != Some(head) {
            resolve_path_call(g, ctx, caller, &full, edges);
            return;
        }
        suffix_resolve(g, &full, edges);
        return;
    }
    // Workspace crate head (after package-name normalization).
    let norm = normalize_crate(head);
    if g.fns.iter().any(|f| f.krate == norm) {
        let full: Vec<String> = std::iter::once(norm.to_string())
            .chain(rest.iter().cloned())
            .collect();
        suffix_resolve(g, &full, edges);
        return;
    }
    // `Type::method(...)` with no module qualifier.
    if head.chars().next().is_some_and(char::is_uppercase) {
        resolve_type_method(g, segs, edges);
    }
    // Anything else (`std::...`, external crates) has no workspace target.
}

/// Resolves `[.., Type, method]` via the method index.
fn resolve_type_method(g: &CallGraph, segs: &[String], edges: &mut Vec<u32>) {
    let [.., type_name, method] = segs else {
        return;
    };
    if let Some(ids) = g.methods.get(method.as_str()) {
        edges.extend(
            ids.iter()
                .copied()
                .filter(|&c| g.fns[c as usize].impl_name.as_deref() == Some(type_name)),
        );
    }
}

/// Matches `full` (crate head + trailing segments) against indexed fn
/// paths within that crate: the trailing segments must be a suffix of the
/// fn's path segments, so re-exports and partially-qualified module paths
/// still land on the definition.
fn suffix_resolve(g: &CallGraph, full: &[String], edges: &mut Vec<u32>) {
    let [krate, rest @ ..] = full else {
        return;
    };
    if rest.is_empty() {
        return;
    }
    let krate = normalize_crate(krate);
    // Cheap pre-filter through the name index.
    let Some(ids) = g.by_name.get(rest[rest.len() - 1].as_str()) else {
        return;
    };
    for &id in ids {
        let f = &g.fns[id as usize];
        if f.krate != krate {
            continue;
        }
        let fsegs: Vec<&str> = f.path.split("::").collect();
        if fsegs.len() < rest.len() + 1 {
            continue;
        }
        let tail = &fsegs[fsegs.len() - rest.len()..];
        if tail.iter().zip(rest.iter()).all(|(a, b)| *a == b.as_str()) {
            edges.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::build_ctx;

    fn ctx(path: &str, src: &str) -> FileCtx {
        let class = crate::scan::classify(path).expect("classifiable path");
        build_ctx(path.to_string(), class, src)
    }

    fn edges_of<'g>(g: &'g CallGraph, path: &str) -> Vec<&'g str> {
        let id = g.id_of(path).unwrap_or_else(|| panic!("no fn {path}"));
        g.callees[id as usize]
            .iter()
            .map(|&c| g.fns[c as usize].path.as_str())
            .collect()
    }

    #[test]
    fn mod_segs_from_paths() {
        assert_eq!(file_mod_segs("crates/nn/src/lstm.rs"), vec!["nn", "lstm"]);
        assert_eq!(file_mod_segs("crates/nn/src/lib.rs"), vec!["nn"]);
        assert_eq!(file_mod_segs("src/quickstart.rs"), vec!["suite", "quickstart"]);
        assert_eq!(
            file_mod_segs("crates/bench/src/bin/tool.rs"),
            vec!["bench", "tool"]
        );
    }

    #[test]
    fn plain_same_file_call() {
        let files = vec![ctx(
            "crates/nn/src/a.rs",
            "fn helper() {}\npub fn entry() { helper(); }\n",
        )];
        let g = build_graph(&files);
        assert_eq!(edges_of(&g, "nn::a::entry"), vec!["nn::a::helper"]);
    }

    #[test]
    fn cross_crate_path_call_and_reexport_suffix() {
        let files = vec![
            ctx(
                "crates/linalg/src/matrix.rs",
                "impl Mat { pub fn zeros() {} }\npub fn axpy() {}\n",
            ),
            ctx(
                "crates/nn/src/a.rs",
                "use linalg::matrix::axpy;\nfn f() { axpy(); linalg::Mat::zeros(); }\n",
            ),
        ];
        let g = build_graph(&files);
        let e = edges_of(&g, "nn::a::f");
        assert!(e.contains(&"linalg::matrix::axpy"), "{e:?}");
        assert!(e.contains(&"linalg::matrix::Mat::zeros"), "{e:?}");
    }

    #[test]
    fn self_method_prefers_enclosing_impl() {
        let src = "impl A { fn m(&self) {} fn run(&self) { self.m(); } }\nimpl B { fn m(&self) {} }\n";
        let files = vec![ctx("crates/nn/src/a.rs", src)];
        let g = build_graph(&files);
        assert_eq!(edges_of(&g, "nn::a::A::run"), vec!["nn::a::A::m"]);
    }

    #[test]
    fn receiver_heuristic_narrows_method_candidates() {
        let src = "impl WorkerPool { pub fn map(&self) {} }\n\
                   pub fn go(pool: &WorkerPool, xs: &[u8]) { pool.map(); let _ = xs.iter().map(|x| x); }\n";
        let files = vec![ctx("crates/linalg/src/pool.rs", src)];
        let g = build_graph(&files);
        // `pool.map()` edges to WorkerPool::map; the iterator `.map` does not.
        assert_eq!(
            edges_of(&g, "linalg::pool::go"),
            vec!["linalg::pool::WorkerPool::map"]
        );
    }

    #[test]
    fn std_method_without_receiver_evidence_is_edge_free() {
        let src = "impl WorkerPool { pub fn map(&self) {} }\n\
                   pub fn go(xs: &[u8]) { let _ = xs.iter().rev().map(|x| x); }\n";
        let files = vec![ctx("crates/linalg/src/pool.rs", src)];
        let g = build_graph(&files);
        assert!(edges_of(&g, "linalg::pool::go").is_empty());
    }

    #[test]
    fn cfg_test_fns_are_not_indexed() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests { fn t() { super::f(); } }\n";
        let files = vec![ctx("crates/nn/src/a.rs", src)];
        let g = build_graph(&files);
        assert!(g.id_of("nn::a::tests::t").is_none());
        assert!(g.id_of("nn::a::f").is_some());
    }

    #[test]
    fn pub_detection() {
        let src = "pub fn yes() {}\npub(crate) fn scoped() {}\nfn no() {}\n";
        let files = vec![ctx("crates/nn/src/a.rs", src)];
        let g = build_graph(&files);
        let by = |p: &str| g.fns[g.id_of(p).unwrap() as usize].is_pub;
        assert!(by("nn::a::yes"));
        assert!(!by("nn::a::scoped"));
        assert!(!by("nn::a::no"));
    }
}
