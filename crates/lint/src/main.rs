//! Command-line entry point for the workspace linter.
//!
//! ```text
//! cloudgen-lint [--root PATH] [--json] [--telemetry FILE]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations found (including `stale-allow`
//! audit findings — a rotted suppression fails the build like any other
//! violation), 2 = usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cloudgen_lint::{render_json, render_text, rule_counts, scan_workspace};
use obsv::{Event, JsonlRecorder, LintEvent, Recorder, Stopwatch};

struct Args {
    root: PathBuf,
    json: bool,
    telemetry: Option<PathBuf>,
}

const USAGE: &str = "usage: cloudgen-lint [--root PATH] [--json] [--telemetry FILE]\n\
\n\
Scans the workspace's .rs files for determinism, concurrency, panic-freedom,\n\
and numeric hygiene violations. Exits 0 when clean, 1 on violations (stale\n\
lint:allow annotations included), 2 on usage errors.\n\
\n\
  --root PATH        workspace root to scan (default: current directory)\n\
  --json             emit the report as JSON instead of text\n\
  --telemetry FILE   append a Lint event to a JSONL telemetry file\n";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        telemetry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--telemetry" => {
                args.telemetry = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--telemetry requires a file path".to_string())?,
                ));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("cloudgen-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if !args.root.is_dir() {
        eprintln!("cloudgen-lint: root `{}` is not a directory", args.root.display());
        return ExitCode::from(2);
    }

    let start = Stopwatch::new();
    let report = scan_workspace(&args.root);
    let wall_ms = start.elapsed_ms();

    if let Some(path) = &args.telemetry {
        match JsonlRecorder::append(path) {
            Ok(recorder) => {
                recorder.record(Event::Lint(LintEvent {
                    files: report.files as u64,
                    violations: report.violations.len() as u64,
                    suppressed: report.suppressed as u64,
                    rules_hit: rule_counts(&report).len() as u64,
                    wall_ms,
                }));
                if let Err(e) = recorder.flush() {
                    eprintln!("cloudgen-lint: telemetry flush failed: {e}");
                }
            }
            Err(e) => eprintln!(
                "cloudgen-lint: cannot open telemetry file `{}`: {e}",
                path.display()
            ),
        }
    }

    if args.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }

    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
