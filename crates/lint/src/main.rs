//! Command-line entry point for the workspace linter.
//!
//! ```text
//! cloudgen-lint [--root PATH] [--json] [--telemetry FILE|-]
//! cloudgen-lint effects --contracts PATH [--root PATH] [--json]
//!                       [--report FILE] [--budget-ms N] [--telemetry FILE|-]
//! cloudgen-lint memory  --contracts PATH [--root PATH] [--json]
//!                       [--report FILE] [--budget-ms N] [--telemetry FILE|-]
//! ```
//!
//! The bare invocation runs the per-file rules; `effects` additionally
//! builds the workspace call graph, propagates the effect lattice to a
//! fixpoint, enforces the contracts declared in `lint-contracts.toml`, and
//! emits the panic-reachability report. `memory` runs the allocation-flow
//! analysis over the same call graph: growth classes to a fixpoint,
//! `[[memory]]` contract enforcement, and the growth report.
//!
//! Exit codes: 0 = clean, 1 = violations found (including `stale-allow`
//! audit findings and unpaid `effect-contract` / `memory-contract`
//! violations) or the `--budget-ms` wall-clock budget exceeded,
//! 2 = usage/IO error.
//!
//! Telemetry goes to a JSONL file, or to *stderr* with `--telemetry -`:
//! stdout carries only the report, so `cloudgen-lint --json | jq` always
//! parses.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cloudgen_lint::{
    analyze_memory, analyze_workspace, parse_contracts, render_effects_json, render_effects_text,
    render_json, render_memory_json, render_memory_text, render_text, rule_counts, scan_workspace,
    ScanReport,
};
use obsv::{Event, JsonlRecorder, LintEvent, Recorder, StderrJsonlRecorder, Stopwatch};

enum Mode {
    Scan,
    Effects {
        contracts: PathBuf,
        report_file: Option<PathBuf>,
        budget_ms: Option<f64>,
    },
    Memory {
        contracts: PathBuf,
        report_file: Option<PathBuf>,
        budget_ms: Option<f64>,
    },
}

struct Args {
    root: PathBuf,
    json: bool,
    telemetry: Option<String>,
    mode: Mode,
}

const USAGE: &str = "usage: cloudgen-lint [--root PATH] [--json] [--telemetry FILE|-]\n\
\x20      cloudgen-lint effects --contracts PATH [--root PATH] [--json]\n\
\x20                            [--report FILE] [--budget-ms N] [--telemetry FILE|-]\n\
\x20      cloudgen-lint memory  --contracts PATH [--root PATH] [--json]\n\
\x20                            [--report FILE] [--budget-ms N] [--telemetry FILE|-]\n\
\n\
Scans the workspace's .rs files for determinism, concurrency, panic-freedom,\n\
and numeric hygiene violations. The `effects` subcommand additionally builds\n\
the workspace call graph, propagates the effect lattice to a fixpoint over\n\
SCCs, enforces the declared effect contracts, and reports panic reachability\n\
for every public library entry point. The `memory` subcommand runs the\n\
allocation-flow analysis over the same graph: per-fn growth classes to a\n\
fixpoint, [[memory]] contract enforcement, and a growth report with witness\n\
call paths to the worst allocation sites. Exits 0 when clean, 1 on\n\
violations (stale lint:allow annotations and unpaid effect or memory\n\
contracts included) or a blown --budget-ms, 2 on usage errors.\n\
\n\
  --root PATH        workspace root to scan (default: current directory)\n\
  --json             emit the report as JSON instead of text\n\
  --telemetry FILE   append a Lint event to a JSONL telemetry file;\n\
\x20                    `-` writes the event to stderr, keeping stdout clean\n\
  --contracts PATH   contract file (effects/memory modes, required)\n\
  --report FILE      also write the effects/memory report as JSON to FILE\n\
  --budget-ms N      fail (exit 1) if the analysis takes longer than N ms\n";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        telemetry: None,
        mode: Mode::Scan,
    };
    let mut contracts: Option<PathBuf> = None;
    let mut report_file: Option<PathBuf> = None;
    let mut budget_ms: Option<f64> = None;
    let mut subcommand: Option<&'static str> = None;
    let mut it = std::env::args().skip(1).peekable();
    match it.peek().map(String::as_str) {
        Some("effects") => {
            it.next();
            subcommand = Some("effects");
        }
        Some("memory") => {
            it.next();
            subcommand = Some("memory");
        }
        _ => {}
    }
    let interprocedural = subcommand.is_some();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root requires a path".to_string())?,
                );
            }
            "--telemetry" => {
                args.telemetry = Some(
                    it.next()
                        .ok_or_else(|| "--telemetry requires a file path or `-`".to_string())?,
                );
            }
            "--contracts" if interprocedural => {
                contracts = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--contracts requires a path".to_string())?,
                ));
            }
            "--report" if interprocedural => {
                report_file = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--report requires a path".to_string())?,
                ));
            }
            "--budget-ms" if interprocedural => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--budget-ms requires a number".to_string())?;
                budget_ms = Some(
                    raw.parse::<f64>()
                        .map_err(|_| format!("--budget-ms: `{raw}` is not a number"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if let Some(sub) = subcommand {
        let contracts =
            contracts.ok_or_else(|| format!("{sub} mode requires --contracts PATH"))?;
        args.mode = if sub == "effects" {
            Mode::Effects {
                contracts,
                report_file,
                budget_ms,
            }
        } else {
            Mode::Memory {
                contracts,
                report_file,
                budget_ms,
            }
        };
    }
    Ok(args)
}

/// Emits the Lint telemetry event to the configured sink: a JSONL file, or
/// stderr for `-` so a `--json` stdout stays a single clean document.
fn emit_telemetry(target: &str, report: &ScanReport, wall_ms: f64) {
    let event = Event::Lint(LintEvent {
        files: report.files as u64,
        violations: report.violations.len() as u64,
        suppressed: report.suppressed as u64,
        rules_hit: rule_counts(report).len() as u64,
        wall_ms,
    });
    if target == "-" {
        StderrJsonlRecorder::new().record(event);
        return;
    }
    match JsonlRecorder::append(target) {
        Ok(recorder) => {
            recorder.record(event);
            if let Err(e) = recorder.flush() {
                eprintln!("cloudgen-lint: telemetry flush failed: {e}");
            }
        }
        Err(e) => eprintln!("cloudgen-lint: cannot open telemetry file `{target}`: {e}"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("cloudgen-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if !args.root.is_dir() {
        eprintln!("cloudgen-lint: root `{}` is not a directory", args.root.display());
        return ExitCode::from(2);
    }

    match args.mode {
        Mode::Scan => {
            let start = Stopwatch::new();
            let report = scan_workspace(&args.root);
            let wall_ms = start.elapsed_ms();
            if let Some(target) = &args.telemetry {
                emit_telemetry(target, &report, wall_ms);
            }
            if args.json {
                print!("{}", render_json(&report));
            } else {
                print!("{}", render_text(&report));
            }
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Mode::Effects {
            contracts,
            report_file,
            budget_ms,
        } => {
            let text = match std::fs::read_to_string(&contracts) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "cloudgen-lint: cannot read contracts file `{}`: {e}",
                        contracts.display()
                    );
                    return ExitCode::from(2);
                }
            };
            let contracts = match parse_contracts(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cloudgen-lint: invalid contracts file: {e}");
                    return ExitCode::from(2);
                }
            };
            let start = Stopwatch::new();
            let outcome = analyze_workspace(&args.root, &contracts);
            let wall_ms = start.elapsed_ms();
            if let Some(target) = &args.telemetry {
                emit_telemetry(target, &outcome.report, wall_ms);
            }
            if let Some(path) = &report_file {
                if let Err(e) = std::fs::write(path, render_effects_json(&outcome)) {
                    eprintln!(
                        "cloudgen-lint: cannot write report `{}`: {e}",
                        path.display()
                    );
                    return ExitCode::from(2);
                }
            }
            if args.json {
                print!("{}", render_effects_json(&outcome));
            } else {
                print!("{}", render_effects_text(&outcome));
            }
            let mut failed = !outcome.report.violations.is_empty();
            if let Some(budget) = budget_ms {
                if wall_ms > budget {
                    eprintln!(
                        "cloudgen-lint: effects analysis took {wall_ms:.1} ms, over the \
                         {budget:.1} ms budget"
                    );
                    failed = true;
                }
            }
            if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Mode::Memory {
            contracts,
            report_file,
            budget_ms,
        } => {
            let text = match std::fs::read_to_string(&contracts) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "cloudgen-lint: cannot read contracts file `{}`: {e}",
                        contracts.display()
                    );
                    return ExitCode::from(2);
                }
            };
            let contracts = match parse_contracts(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cloudgen-lint: invalid contracts file: {e}");
                    return ExitCode::from(2);
                }
            };
            let start = Stopwatch::new();
            let outcome = analyze_memory(&args.root, &contracts);
            let wall_ms = start.elapsed_ms();
            if let Some(target) = &args.telemetry {
                emit_telemetry(target, &outcome.report, wall_ms);
            }
            if let Some(path) = &report_file {
                if let Err(e) = std::fs::write(path, render_memory_json(&outcome)) {
                    eprintln!(
                        "cloudgen-lint: cannot write report `{}`: {e}",
                        path.display()
                    );
                    return ExitCode::from(2);
                }
            }
            if args.json {
                print!("{}", render_memory_json(&outcome));
            } else {
                print!("{}", render_memory_text(&outcome));
            }
            let mut failed = !outcome.report.violations.is_empty();
            if let Some(budget) = budget_ms {
                if wall_ms > budget {
                    eprintln!(
                        "cloudgen-lint: memory analysis took {wall_ms:.1} ms, over the \
                         {budget:.1} ms budget"
                    );
                    failed = true;
                }
            }
            if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}
