//! Interprocedural allocation-flow analysis (`cloudgen-lint memory`).
//!
//! ROADMAP item 2 commits the workspace to generating and packing a
//! 2M-VM, 30-day `azure_like` world **in bounded memory** — but nothing in
//! the effect lattice distinguishes a 64-byte scratch `Vec` from a
//! `.collect()` that materializes a month of trace events. This module
//! adds the missing axis: every function gets an *allocation summary* —
//! its worst **growth class** plus the sites that produce it — and the
//! summaries are propagated to a fixpoint over the call-graph SCCs exactly
//! like effects, so "this path streams, it never materializes" becomes a
//! checkable contract (`[[memory]]` tables in `lint-contracts.toml`)
//! instead of a comment.
//!
//! ## The growth-class lattice
//!
//! Ordered, join = max; each class names how a function's retained
//! allocation scales:
//!
//! | class | meaning |
//! |-------|---------|
//! | `const` | fixed size, independent of input (empty `Vec::new`, `format!`, literal `vec!`) |
//! | `capacity-bounded` | growth into a reservation named at construction (`with_capacity`, `.reserve`) or discharged by a reasoned `lint:allow(hot-loop-alloc)` naming the bound |
//! | `param-bounded` | proportional to one input's size (`.collect()`, `.to_vec()`, `Mat::zeros(r, c)`) — one batch, one shard, one matrix |
//! | `loop-linear` | grows per loop iteration with no visible reservation (`.push()` in a `for` body), or slurps a whole input (`read_to_string`/`read_to_end`) |
//! | `unbounded-escape` | loop-linear growth that *escapes* the function — returned, pushed into a `&mut` out-param, or stored in `self` — i.e. accumulation the caller inherits |
//!
//! ## Approximations (deliberate, like the call graph's)
//!
//! The analysis is token-level: it does not track types or aliases.
//! Receivers resolve through field/index chains to a base identifier
//! (`out.rows[i].push(..)` → `out`); a constructor's owner is the `let`
//! binding opening its statement; escape is decided by a small intra-
//! function heuristic (`&mut` parameters, `self.` receivers, identifiers
//! in `return`/`Ok`/`Some`/`Err` payloads or the body's tail expression).
//! A site with loop growth and *no* identifiable owner is conservatively
//! treated as escaping. Propagation is context-insensitive: a callee's
//! class is joined into the caller as-is, so calling a `loop-linear`
//! helper from inside another loop does not escalate further — contracts
//! pick thresholds with that in mind. All of this over-approximates in
//! the strict direction: the gate can demand an annotation for code that
//! is actually fine, never the reverse silently.
//!
//! ## Absorbers
//!
//! An `[[absorber]]` scope in the contract file is a sanctioned
//! materialization point: calls *into* it contribute nothing to the
//! caller's class (the caller opted into materializing by calling it),
//! while the absorber's own summary stays truthful — the same masking
//! semantics as effect barriers.

use std::collections::VecDeque;

use crate::contracts::ContractsFile;
use crate::effects::allowed;
use crate::graph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::scan::FileCtx;
use crate::tree::NodeKind;

/// A retained-allocation growth class. Ordered: join is `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Growth {
    /// Fixed size, independent of input.
    Const = 0,
    /// Bounded by a reservation named at construction (or an audited
    /// `lint:allow(hot-loop-alloc)` naming the bound).
    CapacityBounded = 1,
    /// Proportional to one input's size (one batch / shard / matrix).
    ParamBounded = 2,
    /// Grows per loop iteration, or slurps a whole input, without escaping.
    LoopLinear = 3,
    /// Loop-linear growth that escapes the function.
    UnboundedEscape = 4,
}

/// Growth classes with their contract-file names, lattice order.
pub const GROWTH_NAMES: &[(Growth, &str)] = &[
    (Growth::Const, "const"),
    (Growth::CapacityBounded, "capacity-bounded"),
    (Growth::ParamBounded, "param-bounded"),
    (Growth::LoopLinear, "loop-linear"),
    (Growth::UnboundedEscape, "unbounded-escape"),
];

/// Parses one growth-class name (`"loop-linear"`).
pub fn parse_growth(name: &str) -> Option<Growth> {
    GROWTH_NAMES.iter().find(|(_, n)| *n == name).map(|(g, _)| *g)
}

/// Renders a growth class as its contract-file name.
pub fn growth_name(g: Growth) -> &'static str {
    GROWTH_NAMES
        .iter()
        .find(|(c, _)| *c == g)
        .map(|(_, n)| *n)
        .expect("every Growth variant is named")
}

/// One allocation or growth site in a fn body.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line.
    pub line: u32,
    /// What allocates: `.push()`, `.collect()`, `Mat::zeros()`, ...
    pub what: String,
    /// The site's growth class after loop/escape/discharge adjustment.
    pub growth: Growth,
    /// True when the site sits inside a loop body of its own fn.
    pub in_loop: bool,
    /// True when the grown value escapes the fn (heuristic).
    pub escapes: bool,
}

/// Intrinsic (own-body) allocation summary for one fn.
#[derive(Debug, Clone, Default)]
pub struct AllocSummary {
    /// Worst site class; `None` growth fields default to `Const`.
    pub growth: Growth,
    /// Every recorded site, token order.
    pub sites: Vec<AllocSite>,
}

impl Default for Growth {
    fn default() -> Self {
        Growth::Const
    }
}

impl AllocSummary {
    /// The first site achieving the summary's growth class.
    pub fn worst_site(&self) -> Option<&AllocSite> {
        self.sites.iter().find(|s| s.growth == self.growth)
    }
}

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// Marks loop-body token ranges inside `open..close`, exactly as R13 does:
/// `for`/`while`/`loop` keyword → the `{` at paren/bracket depth 0 → its
/// matching `}`. Loop *headers* (the iterator expression) stay unmarked.
fn loop_body_mask(
    toks: &[Tok],
    open: usize,
    close: usize,
    own: &dyn Fn(usize) -> bool,
) -> Vec<bool> {
    let mut in_loop = vec![false; close + 1];
    for j in open..close {
        if !own(j) || !(ident(&toks[j], "for") || ident(&toks[j], "while") || ident(&toks[j], "loop"))
        {
            continue;
        }
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut body_open = None;
        while k < close {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = Some(k);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(bo) = body_open else {
            continue;
        };
        let mut brace_depth = 0i32;
        let mut k = bo;
        while k < toks.len() {
            let t = &toks[k];
            if punct(t, "{") {
                brace_depth += 1;
            } else if punct(t, "}") {
                brace_depth -= 1;
                if brace_depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let body_close = k.min(close);
        for flag in in_loop.iter_mut().take(body_close).skip(bo + 1) {
            *flag = true;
        }
    }
    in_loop
}

/// Walks a method receiver backwards from the `.` before the method name,
/// through field chains and index groups (`out.rows[i].push` → `out`),
/// returning the base identifier. `None` when the receiver is not an
/// identifier chain (a temporary: `make().push(..)`).
fn receiver_base(toks: &[Tok], dot: usize) -> Option<String> {
    let mut m = dot.checked_sub(1)?;
    loop {
        let t = &toks[m];
        if punct(t, "]") {
            // Skip the index group to its matching `[`.
            let mut depth = 0i32;
            loop {
                let t = &toks[m];
                if punct(t, "]") {
                    depth += 1;
                } else if punct(t, "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                m = m.checked_sub(1)?;
            }
            m = m.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            if m >= 1 && punct(&toks[m - 1], ".") {
                m = m.checked_sub(2)?;
                continue;
            }
            return Some(t.text.clone());
        }
        return None;
    }
}

/// Finds the `let [mut] <ident>` opening the statement containing token
/// `site`: scans back to the nearest `;`/`{`/`}` and reads forward.
fn let_owner(toks: &[Tok], site: usize, open: usize) -> Option<String> {
    let mut m = site;
    while m > open {
        let t = &toks[m - 1];
        if punct(t, ";") || punct(t, "{") || punct(t, "}") {
            break;
        }
        m -= 1;
    }
    if !ident(&toks[m], "let") {
        return None;
    }
    let mut k = m + 1;
    if ident(&toks[k], "mut") {
        k += 1;
    }
    (toks[k].kind == TokKind::Ident).then(|| toks[k].text.clone())
}

/// True when the paren/bracket group opening at `start` (the `(`/`[`/`{`
/// token) contains any identifier before its matching close — i.e. the
/// size is an expression, not a literal.
fn group_has_ident(toks: &[Tok], start: usize) -> bool {
    let open = toks[start].text.as_str();
    let close = match open {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return false,
    };
    let mut depth = 0i32;
    let mut k = start;
    while k < toks.len() {
        let t = &toks[k];
        if punct(t, open) {
            depth += 1;
        } else if punct(t, close) {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.kind == TokKind::Ident {
            return true;
        }
        k += 1;
    }
    false
}

/// Collects the identifiers the escape heuristic treats as leaving the fn:
/// `&mut` parameters from the signature, payload identifiers of
/// `return`/`Ok(..)`/`Some(..)`/`Err(..)`, and the body's tail expression.
/// Field names (after `.`), call names (before `(`), and path heads
/// (before `::`) are skipped.
fn escape_idents(
    toks: &[Tok],
    sig_start: usize,
    open: usize,
    close: usize,
    own: &dyn Fn(usize) -> bool,
) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();

    // &mut parameters: `name : & ['a] mut` in the signature.
    for k in sig_start..open {
        if toks[k].kind != TokKind::Ident {
            continue;
        }
        let Some(colon) = toks.get(k + 1) else { continue };
        if !punct(colon, ":") {
            continue;
        }
        let mut m = k + 2;
        if matches!(toks.get(m), Some(t) if punct(t, "&")) {
            m += 1;
            if matches!(toks.get(m), Some(t) if t.kind == TokKind::Lifetime) {
                m += 1;
            }
            if matches!(toks.get(m), Some(t) if ident(t, "mut")) {
                out.push(toks[k].text.clone());
            }
        }
    }

    let mut push = |toks: &[Tok], k: usize| {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            return;
        }
        if k >= 1 && punct(&toks[k - 1], ".") {
            return; // field access: the base escapes, not the field name
        }
        if matches!(toks.get(k + 1), Some(n) if punct(n, "(") || punct(n, "::")) {
            return; // call or path, not a binding
        }
        out.push(t.text.clone());
    };

    for k in open + 1..close {
        if !own(k) {
            continue;
        }
        let t = &toks[k];
        // `return <expr...>` up to `;`: every plain ident in the expression.
        if ident(t, "return") {
            let mut m = k + 1;
            while m < close && !punct(&toks[m], ";") {
                push(toks, m);
                m += 1;
            }
        }
        // `Ok(..)` / `Some(..)` / `Err(..)` payloads.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "Ok" | "Some" | "Err")
            && matches!(toks.get(k + 1), Some(n) if punct(n, "("))
        {
            let mut depth = 0i32;
            let mut m = k + 1;
            while m < close {
                if punct(&toks[m], "(") {
                    depth += 1;
                } else if punct(&toks[m], ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push(toks, m);
                }
                m += 1;
            }
        }
    }

    // Tail expression: an ident (or parenthesized group) just before the
    // closing brace.
    if close > open + 1 {
        let last = close - 1;
        if toks[last].kind == TokKind::Ident {
            push(toks, last);
        } else if punct(&toks[last], ")") {
            let mut depth = 0i32;
            let mut m = last;
            loop {
                if punct(&toks[m], ")") {
                    depth += 1;
                } else if punct(&toks[m], "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push(toks, m);
                }
                if m == open {
                    break;
                }
                m -= 1;
            }
        }
    }
    out
}

/// Extracts the allocation summary for every fn in the graph, fn-id order.
/// Sites covered by a live, reasoned `lint:allow(hot-loop-alloc)` are
/// *discharged* to `capacity-bounded`: the annotation names the bound
/// (R13's audit), so the interprocedural pass trusts it instead of
/// re-reporting the site.
pub fn intrinsic_allocs(g: &CallGraph, files: &[FileCtx]) -> Vec<AllocSummary> {
    g.fns
        .iter()
        .map(|meta| {
            let ctx = &files[meta.file_idx];
            let node = &ctx.tree.nodes[meta.node_idx];
            let Some((open, close)) = node.body else {
                return AllocSummary::default();
            };
            summarize_fn(ctx, node.start, open, close)
        })
        .collect()
}

/// Summarizes one fn body (token range semantics as in [`crate::effects`]).
fn summarize_fn(ctx: &FileCtx, fn_start: usize, open: usize, close: usize) -> AllocSummary {
    let toks = &ctx.toks;
    let own = |j: usize| ctx.tree.enclosing(j, NodeKind::Fn).map(|f| f.start) == Some(fn_start);
    let in_loop = loop_body_mask(toks, open, close, &own);
    let escapes = escape_idents(toks, fn_start, open, close, &own);
    let escapes_ident = |id: &Option<String>| match id {
        Some(name) => name == "self" || escapes.iter().any(|e| e == name),
        // Loop growth with no identifiable owner (a temporary in return
        // position, a chained call) is conservatively treated as escaping.
        None => true,
    };

    // Pass 1: receivers with a visible reservation (`with_capacity` let
    // binding or a `.reserve()` call) — growth into them is
    // capacity-bounded, the idiom R13's paydowns annotate.
    let mut reserved: Vec<String> = Vec::new();
    for j in open + 1..close {
        if !own(j) || ctx.in_test[j] || toks[j].kind != TokKind::Ident {
            continue;
        }
        let name = toks[j].text.as_str();
        if name == "with_capacity" && matches!(toks.get(j + 1), Some(n) if punct(n, "(")) {
            if let Some(owner) = let_owner(toks, j, open) {
                reserved.push(owner);
            }
        }
        if matches!(name, "reserve" | "reserve_exact")
            && j >= 1
            && punct(&toks[j - 1], ".")
            && matches!(toks.get(j + 1), Some(n) if punct(n, "("))
        {
            if let Some(base) = receiver_base(toks, j - 1) {
                reserved.push(base);
            }
        }
    }

    // Pass 2: allocation and growth sites.
    let mut out = AllocSummary::default();
    for j in open + 1..close {
        if !own(j) || ctx.in_test[j] || toks[j].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[j];
        let name = t.text.as_str();
        let next_is = |p: &str| matches!(toks.get(j + 1), Some(n) if punct(n, p));
        let prev_dot = j >= 1 && punct(&toks[j - 1], ".");
        let looped = in_loop.get(j).copied().unwrap_or(false);

        // (what, base class, owner ident, is growth-or-slurp)
        let site: Option<(String, Growth, Option<String>, bool)> = if matches!(name, "Vec" | "String")
            && next_is("::")
            && matches!(toks.get(j + 2), Some(n) if n.kind == TokKind::Ident)
        {
            let ctor = toks[j + 2].text.as_str();
            match ctor {
                "new" => Some((
                    format!("{name}::new()"),
                    Growth::Const,
                    let_owner(toks, j, open),
                    false,
                )),
                "with_capacity" => {
                    // Literal capacity is const; an expression names a bound.
                    let lit = matches!(toks.get(j + 4), Some(n) if n.kind == TokKind::Int)
                        && matches!(toks.get(j + 5), Some(n) if punct(n, ")"));
                    Some((
                        format!("{name}::with_capacity()"),
                        if lit { Growth::Const } else { Growth::CapacityBounded },
                        let_owner(toks, j, open),
                        false,
                    ))
                }
                _ => None,
            }
        } else if name == "Mat"
            && next_is("::")
            && matches!(toks.get(j + 2),
                Some(n) if matches!(n.text.as_str(), "zeros" | "filled" | "from_fn"))
        {
            let g = if matches!(toks.get(j + 3), Some(n) if punct(n, "("))
                && group_has_ident(toks, j + 3)
            {
                Growth::ParamBounded
            } else {
                Growth::Const
            };
            Some((
                format!("Mat::{}()", toks[j + 2].text),
                g,
                let_owner(toks, j, open),
                false,
            ))
        } else if name == "vec" && next_is("!") {
            let g = if matches!(toks.get(j + 2), Some(n) if punct(n, "[") || punct(n, "("))
                && group_has_ident(toks, j + 2)
            {
                Growth::ParamBounded
            } else {
                Growth::Const
            };
            Some(("vec![]".to_string(), g, let_owner(toks, j, open), false))
        } else if name == "format" && next_is("!") {
            Some(("format!".to_string(), Growth::Const, None, false))
        } else if prev_dot && name == "collect" && (next_is("(") || next_is("::")) {
            Some((
                ".collect()".to_string(),
                Growth::ParamBounded,
                let_owner(toks, j, open),
                false,
            ))
        } else if prev_dot && name == "to_vec" && next_is("(") {
            Some((
                ".to_vec()".to_string(),
                Growth::ParamBounded,
                let_owner(toks, j, open),
                false,
            ))
        } else if prev_dot
            && matches!(name, "push" | "extend" | "push_str" | "append")
            && next_is("(")
        {
            Some((
                format!(".{name}()"),
                Growth::Const,
                receiver_base(toks, j - 1),
                true,
            ))
        } else if matches!(name, "read_to_string" | "read_to_end") && next_is("(") {
            // Whole-input slurp: grows with the input, no declared cap. The
            // buffer is the `&mut` argument (method form) or the let
            // binding (fs:: form).
            let mut owner = None;
            if matches!(toks.get(j + 2), Some(n) if punct(n, "&"))
                && matches!(toks.get(j + 3), Some(n) if ident(n, "mut"))
                && matches!(toks.get(j + 4), Some(n) if n.kind == TokKind::Ident)
            {
                owner = Some(toks[j + 4].text.clone());
            }
            if owner.is_none() {
                owner = let_owner(toks, j, open);
            }
            Some((format!("{name}()"), Growth::LoopLinear, owner, true))
        } else {
            None
        };

        let Some((what, base, owner, growth_op)) = site else {
            continue;
        };

        let mut cls = base;
        // Growth ops and slurps accumulate per iteration; constructors in a
        // loop make transient per-iteration values whose retention shows up
        // as a separate growth site.
        if looped && growth_op {
            cls = cls.max(Growth::LoopLinear);
        }
        if growth_op && cls >= Growth::LoopLinear {
            if let Some(o) = &owner {
                if reserved.iter().any(|r| r == o) {
                    cls = Growth::CapacityBounded;
                }
            }
        }
        if cls >= Growth::LoopLinear && escapes_ident(&owner) {
            cls = Growth::UnboundedEscape;
        }
        // R13 discharge: a live reasoned allow at the site names the bound.
        if cls >= Growth::LoopLinear && allowed(ctx, "hot-loop-alloc", t.line) {
            cls = Growth::CapacityBounded;
        }
        let escapes_flag = cls == Growth::UnboundedEscape;
        out.growth = out.growth.max(cls);
        out.sites.push(AllocSite {
            line: t.line,
            what,
            growth: cls,
            in_loop: looped,
            escapes: escapes_flag,
        });
    }
    out
}

/// Per-fn absorber flags: true when calls *into* this fn contribute
/// nothing to the caller's growth class.
pub fn absorber_masks(g: &CallGraph, contracts: &ContractsFile) -> Vec<bool> {
    g.fns
        .iter()
        .map(|f| contracts.memory_absorbed_at(&f.path))
        .collect()
}

/// Propagates growth classes to a transitive fixpoint over SCCs (join =
/// max, sinks first — the same iterative Tarjan shape as
/// [`crate::effects::propagate`]). Returns the transitive class per fn
/// plus `(scc_count, largest_scc)`.
pub fn propagate_growth(
    g: &CallGraph,
    intr: &[AllocSummary],
    absorb: &[bool],
) -> (Vec<Growth>, usize, usize) {
    let n = g.fns.len();
    let mut result: Vec<Growth> = intr.iter().map(|s| s.growth).collect();

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let callees = &g.callees[v as usize];
            if *pos < callees.len() {
                let w = callees[*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }

    let largest = sccs.iter().map(Vec::len).max().unwrap_or(0);
    for comp in &sccs {
        let mut cls = Growth::Const;
        for &m in comp {
            cls = cls.max(intr[m as usize].growth);
            for &c in &g.callees[m as usize] {
                if !absorb[c as usize] {
                    cls = cls.max(result[c as usize]);
                }
            }
        }
        for &m in comp {
            result[m as usize] = cls;
        }
    }
    (result, sccs.len(), largest)
}

/// Shortest call path (BFS over the absorber-masked graph) from `from` to
/// a fn whose *intrinsic* growth reaches `target`. Returns fn ids, `from`
/// first. The violating class is always achieved at some reachable fn's
/// own body, so a path exists whenever `trans[from] >= target`.
pub fn witness_growth(
    g: &CallGraph,
    intr: &[AllocSummary],
    absorb: &[bool],
    from: u32,
    target: Growth,
) -> Option<Vec<u32>> {
    let n = g.fns.len();
    let mut prev: Vec<u32> = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    queue.push_back(from);
    seen[from as usize] = true;
    while let Some(v) = queue.pop_front() {
        if intr[v as usize].growth >= target {
            let mut path = vec![v];
            let mut cur = v;
            while prev[cur as usize] != u32::MAX {
                cur = prev[cur as usize];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &w in &g.callees[v as usize] {
            if !seen[w as usize] && !absorb[w as usize] {
                seen[w as usize] = true;
                prev[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::scan::{build_ctx, classify};

    fn analyze(files: &[(&str, &str)]) -> (CallGraph, Vec<AllocSummary>, Vec<Growth>) {
        let ctxs: Vec<_> = files
            .iter()
            .map(|(p, s)| build_ctx((*p).to_string(), classify(p).unwrap(), s))
            .collect();
        let g = build_graph(&ctxs);
        let intr = intrinsic_allocs(&g, &ctxs);
        let absorb = vec![false; g.fns.len()];
        let (trans, _, _) = propagate_growth(&g, &intr, &absorb);
        (g, intr, trans)
    }

    fn summary<'a>(
        g: &CallGraph,
        intr: &'a [AllocSummary],
        path: &str,
    ) -> &'a AllocSummary {
        &intr[g.id_of(path).unwrap_or_else(|| panic!("`{path}` not indexed")) as usize]
    }

    fn class_of(g: &CallGraph, trans: &[Growth], path: &str) -> Growth {
        trans[g.id_of(path).unwrap_or_else(|| panic!("`{path}` not indexed")) as usize]
    }

    #[test]
    fn push_in_loop_returned_is_unbounded_escape() {
        let src = "pub fn all(n: usize) -> Vec<u64> {\n\
                   \x20   let mut out = Vec::new();\n\
                   \x20   for i in 0..n { out.push(i as u64); }\n\
                   \x20   out\n\
                   }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        let s = summary(&g, &intr, "core::a::all");
        assert_eq!(s.growth, Growth::UnboundedEscape, "{s:?}");
        let site = s.worst_site().unwrap();
        assert_eq!(site.what, ".push()");
        assert!(site.in_loop && site.escapes);
    }

    #[test]
    fn push_in_loop_local_only_is_loop_linear() {
        let src = "pub fn total(n: usize) -> u64 {\n\
                   \x20   let mut tmp = Vec::new();\n\
                   \x20   for i in 0..n { tmp.push(i as u64); }\n\
                   \x20   tmp.len() as u64\n\
                   }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(summary(&g, &intr, "core::a::total").growth, Growth::LoopLinear);
    }

    #[test]
    fn push_into_mut_out_param_escapes() {
        let src = "pub fn fill(n: usize, out: &mut Vec<u64>) {\n\
                   \x20   for i in 0..n { out.push(i as u64); }\n\
                   }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(summary(&g, &intr, "core::a::fill").growth, Growth::UnboundedEscape);
    }

    #[test]
    fn push_into_self_field_escapes() {
        let src = "pub struct Acc { xs: Vec<u64> }\n\
                   impl Acc {\n\
                   \x20   pub fn eat(&mut self, n: usize) {\n\
                   \x20       for i in 0..n { self.xs.push(i as u64); }\n\
                   \x20   }\n\
                   }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(summary(&g, &intr, "core::a::Acc::eat").growth, Growth::UnboundedEscape);
    }

    #[test]
    fn reserved_receiver_is_capacity_bounded() {
        let src = "pub fn sized(n: usize) -> Vec<u64> {\n\
                   \x20   let mut out = Vec::with_capacity(n);\n\
                   \x20   for i in 0..n { out.push(i as u64); }\n\
                   \x20   out\n\
                   }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(summary(&g, &intr, "core::a::sized").growth, Growth::CapacityBounded);
    }

    #[test]
    fn push_outside_loop_is_const() {
        let src = "pub fn one() -> Vec<u64> { let mut v = Vec::new(); v.push(1); v }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(summary(&g, &intr, "core::a::one").growth, Growth::Const);
    }

    #[test]
    fn collect_is_param_bounded() {
        let src = "pub fn copy(xs: &[u64]) -> Vec<u64> { xs.iter().copied().collect() }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(summary(&g, &intr, "core::a::copy").growth, Growth::ParamBounded);
    }

    #[test]
    fn read_to_string_is_a_slurp() {
        let src = "pub fn load(p: &str) -> std::io::Result<String> {\n\
                   \x20   let s = std::fs::read_to_string(p)?;\n\
                   \x20   Ok(s)\n\
                   }\n";
        let (g, intr, _) = analyze(&[("crates/core/src/a.rs", src)]);
        // The slurped buffer escapes via Ok(s).
        assert_eq!(summary(&g, &intr, "core::a::load").growth, Growth::UnboundedEscape);
    }

    #[test]
    fn growth_propagates_to_callers_and_absorbers_mask_it() {
        let files = [
            (
                "crates/trace/src/io.rs",
                "pub fn read_all(n: usize) -> Vec<u64> {\n\
                 \x20   let mut out = Vec::new();\n\
                 \x20   for i in 0..n { out.push(i as u64); }\n\
                 \x20   out\n\
                 }\n",
            ),
            (
                "crates/core/src/gen.rs",
                "use trace::io::read_all;\npub fn drive(n: usize) -> usize { read_all(n).len() }\n",
            ),
        ];
        let (g, intr, trans) = analyze(&files);
        assert_eq!(class_of(&g, &trans, "core::gen::drive"), Growth::UnboundedEscape);

        // With trace::io::* declared an absorber, the caller is clean while
        // the absorber's own summary stays truthful.
        let toml = "[[absorber]]\nscope = [\"trace::io::*\"]\n\
                    reason = \"sanctioned materialization point\"\n";
        let cf = crate::contracts::parse(toml).unwrap();
        let absorb = absorber_masks(&g, &cf);
        let (trans, _, _) = propagate_growth(&g, &intr, &absorb);
        assert_eq!(class_of(&g, &trans, "core::gen::drive"), Growth::Const);
        assert_eq!(class_of(&g, &trans, "trace::io::read_all"), Growth::UnboundedEscape);
    }

    #[test]
    fn witness_names_the_sink() {
        let files = [(
            "crates/core/src/a.rs",
            "fn sink(n: usize) -> Vec<u64> {\n\
             \x20   let mut out = Vec::new();\n\
             \x20   for i in 0..n { out.push(i as u64); }\n\
             \x20   out\n\
             }\n\
             fn mid(n: usize) -> usize { sink(n).len() }\n\
             pub fn top(n: usize) -> usize { mid(n) }\n",
        )];
        let (g, intr, trans) = analyze(&files);
        let top = g.id_of("core::a::top").unwrap();
        assert_eq!(trans[top as usize], Growth::UnboundedEscape);
        let absorb = vec![false; g.fns.len()];
        let path = witness_growth(&g, &intr, &absorb, top, Growth::UnboundedEscape).unwrap();
        let names: Vec<&str> = path.iter().map(|&i| g.fns[i as usize].name.as_str()).collect();
        assert_eq!(names, vec!["top", "mid", "sink"]);
    }

    #[test]
    fn hot_loop_alloc_allow_discharges_the_site() {
        let src = "pub fn bookkeep(n: usize) -> Vec<u64> {\n\
                   \x20   let mut out = Vec::new();\n\
                   \x20   for i in 0..n {\n\
                   \x20       // lint:allow(hot-loop-alloc): bounded by n <= threads\n\
                   \x20       out.push(i as u64);\n\
                   \x20   }\n\
                   \x20   out\n\
                   }\n";
        let (g, intr, _) = analyze(&[("crates/linalg/src/a.rs", src)]);
        assert_eq!(
            summary(&g, &intr, "linalg::a::bookkeep").growth,
            Growth::CapacityBounded
        );
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let src = "fn a(n: usize, out: &mut Vec<u64>) { if n > 0 { b(n - 1, out); } }\n\
                   fn b(n: usize, out: &mut Vec<u64>) {\n\
                   \x20   for i in 0..n { out.push(i as u64); }\n\
                   \x20   a(n, out);\n\
                   }\n";
        let (g, _, trans) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(class_of(&g, &trans, "core::a::a"), Growth::UnboundedEscape);
        assert_eq!(class_of(&g, &trans, "core::a::b"), Growth::UnboundedEscape);
    }

    #[test]
    fn growth_name_roundtrip() {
        for (g, name) in GROWTH_NAMES {
            assert_eq!(parse_growth(name), Some(*g));
            assert_eq!(growth_name(*g), *name);
        }
        assert_eq!(parse_growth("bounded"), None);
        assert!(Growth::Const < Growth::UnboundedEscape);
    }
}
