//! The effect lattice and its fixpoint over the call graph.
//!
//! Every function gets an *intrinsic* effect set from token patterns in its
//! own body, then a *transitive* set by propagating callee effects over
//! [`crate::graph`]'s edges to a fixpoint over strongly connected
//! components. The lattice is a bitset — union is join, so the fixpoint is
//! one pass over the SCC condensation in reverse topological order (Tarjan
//! emits components sinks-first, so each SCC is finalized before any of its
//! callers is processed; members of a cycle share the union of the whole
//! component).
//!
//! ## Effects
//!
//! | bit | sources (token patterns) |
//! |-----|--------------------------|
//! | `panics` | `.unwrap()`, `.expect(`, `panic!`, `todo!`, `unimplemented!`, `unreachable!` — exactly R2's set; `assert!` family is *not* counted (shape invariants would make every entry point panic-reachable and drown the signal) |
//! | `rng` | `thread_rng`, `from_entropy`, `rand::random` — ambient randomness only; taking `&mut impl Rng` is not an effect |
//! | `time` | `Instant::now`, `SystemTime::now` |
//! | `spawn` | `spawn(` calls and imports ending in `::spawn` |
//! | `unsafe` | the `unsafe` keyword |
//! | `alloc` | allocation constructors: `Vec::new`/`with_capacity`, `vec!`, `format!`, `String::new`/`from`, `Box::new`, `.to_vec(`, `.to_string(`, `.collect(` |
//! | `io` | `fs::`/`File::`/`OpenOptions` paths, `print!`-family macros, `stdin`/`stdout`/`stderr`, `read_to_string`/`read_dir`/`write_all`/`create_dir_all`/`remove_file` |
//!
//! ## Discharged panics
//!
//! A panic site covered by a live, reasoned `lint:allow(no-panic)` is an
//! *audited invariant*: the annotation argues the panic cannot fire, so it
//! does not taint callers with `panics` — deleting the annotation
//! immediately re-taints every transitive caller (which is what makes the
//! contract gate fail closed). Discharged sites still propagate on the
//! separate report-only [`PANICS_ANNOTATED`] bit, so the panic-reachability
//! report can show which entry points depend on which audited invariants.
//!
//! ## Barriers
//!
//! Contracts may declare *barriers* ([`crate::contracts`]): sanctioned
//! absorber scopes whose listed effects do not propagate to callers. The
//! canonical examples are `obsv::*` absorbing `time`/`io` (every crate
//! times itself through `obsv::Stopwatch` — the audit boundary is the
//! wrapper, not the clock) and `linalg::pool::*` absorbing `spawn` (the
//! deterministic `WorkerPool` is the one sanctioned parallelism surface).
//! A barrier masks the *edge into* the absorber; the absorber's own
//! transitive set stays truthful.

use std::collections::VecDeque;

use crate::contracts::ContractsFile;
use crate::graph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::scan::FileCtx;
use crate::tree::NodeKind;

/// A set of effects (bit union = lattice join).
pub type EffectSet = u16;

/// Reaches one of R2's panicking calls.
pub const PANICS: EffectSet = 1 << 0;
/// Reaches ambient randomness.
pub const RNG: EffectSet = 1 << 1;
/// Reaches an ambient wall-clock read.
pub const TIME: EffectSet = 1 << 2;
/// Reaches a raw thread spawn.
pub const SPAWN: EffectSet = 1 << 3;
/// Reaches an `unsafe` block.
pub const UNSAFE: EffectSet = 1 << 4;
/// Reaches a heap allocation constructor.
pub const ALLOC: EffectSet = 1 << 5;
/// Reaches filesystem or standard-stream I/O.
pub const IO: EffectSet = 1 << 6;
/// Report-only: reaches a panic site discharged by an annotated invariant.
/// Never forbiddable by a contract.
pub const PANICS_ANNOTATED: EffectSet = 1 << 7;

/// Nameable (contract-forbiddable) effects with their names.
pub const EFFECT_NAMES: &[(EffectSet, &str)] = &[
    (PANICS, "panics"),
    (RNG, "rng"),
    (TIME, "time"),
    (SPAWN, "spawn"),
    (UNSAFE, "unsafe"),
    (ALLOC, "alloc"),
    (IO, "io"),
];

/// Parses one effect name (`"time"`) into its bit.
pub fn parse_effect(name: &str) -> Option<EffectSet> {
    EFFECT_NAMES
        .iter()
        .find(|(_, n)| *n == name)
        .map(|(bit, _)| *bit)
}

/// Renders a set as `"rng+time"` (named bits only, `"-"` when empty).
pub fn effect_names(set: EffectSet) -> String {
    let names: Vec<&str> = EFFECT_NAMES
        .iter()
        .filter(|(bit, _)| set & bit != 0)
        .map(|(_, n)| *n)
        .collect();
    if names.is_empty() {
        "-".to_string()
    } else {
        names.join("+")
    }
}

/// One panic-capable token in a fn body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line of the call.
    pub line: u32,
    /// What panics: `unwrap`, `expect`, `panic!`, ...
    pub what: String,
    /// True when a reasoned `lint:allow(no-panic)` covers the line.
    pub discharged: bool,
}

/// Intrinsic (own-body) effect information for one fn.
#[derive(Debug, Clone, Default)]
pub struct Intrinsics {
    /// Effect bits sourced directly in the body.
    pub effects: EffectSet,
    /// First source line per effect bit (indexed by bit position).
    pub first_line: [u32; 8],
    /// Every panic-capable call, discharged or not.
    pub panic_sites: Vec<PanicSite>,
}

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// True when a reasoned `lint:allow` naming `rule` covers `line`.
pub(crate) fn allowed(ctx: &FileCtx, rule: &str, line: u32) -> bool {
    ctx.allows.iter().any(|a| {
        !a.reason.is_empty()
            && (a.line == line || a.line + 1 == line)
            && a.rules.iter().any(|r| r == rule)
    })
}

/// Extracts intrinsic effects for every fn in the graph, in fn-id order.
pub fn intrinsic_effects(g: &CallGraph, files: &[FileCtx]) -> Vec<Intrinsics> {
    g.fns
        .iter()
        .map(|meta| {
            let ctx = &files[meta.file_idx];
            let node = &ctx.tree.nodes[meta.node_idx];
            let Some((open, close)) = node.body else {
                return Intrinsics::default();
            };
            let mut out = Intrinsics::default();
            let add = |bit: EffectSet, line: u32, out: &mut Intrinsics| {
                out.effects |= bit;
                let slot = bit.trailing_zeros() as usize;
                if out.first_line[slot] == 0 {
                    out.first_line[slot] = line;
                }
            };
            for j in open + 1..close {
                if ctx.tree.enclosing(j, NodeKind::Fn).map(|f| f.start) != Some(node.start) {
                    continue;
                }
                let t = &ctx.toks[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let next = ctx.toks.get(j + 1);
                let next_is = |p: &str| matches!(next, Some(n) if punct(n, p));
                let prev_dot = j >= 1 && punct(&ctx.toks[j - 1], ".");
                let name = t.text.as_str();

                // panics (R2's exact set)
                let panic_method = matches!(name, "unwrap" | "expect") && prev_dot && next_is("(");
                let panic_macro = matches!(name, "panic" | "todo" | "unimplemented" | "unreachable")
                    && next_is("!");
                if panic_method || panic_macro {
                    let discharged = allowed(ctx, "no-panic", t.line);
                    let what = if panic_macro {
                        format!("{name}!")
                    } else {
                        format!(".{name}()")
                    };
                    out.panic_sites.push(PanicSite {
                        line: t.line,
                        what,
                        discharged,
                    });
                    if discharged {
                        add(PANICS_ANNOTATED, t.line, &mut out);
                    } else {
                        add(PANICS, t.line, &mut out);
                    }
                    continue;
                }
                // rng
                if name == "thread_rng"
                    || name == "from_entropy"
                    || (name == "rand"
                        && next_is("::")
                        && matches!(ctx.toks.get(j + 2), Some(n) if ident(n, "random")))
                {
                    add(RNG, t.line, &mut out);
                    continue;
                }
                // time
                if matches!(name, "Instant" | "SystemTime")
                    && next_is("::")
                    && matches!(ctx.toks.get(j + 2), Some(n) if ident(n, "now"))
                {
                    add(TIME, t.line, &mut out);
                    continue;
                }
                // spawn: direct calls plus `use std::thread::spawn as go; go(..)`.
                if next_is("(") {
                    let spawns = name == "spawn"
                        || ctx
                            .tree
                            .resolve_import(name)
                            .is_some_and(|p| p.ends_with("::spawn"));
                    if spawns {
                        add(SPAWN, t.line, &mut out);
                        continue;
                    }
                }
                // unsafe
                if name == "unsafe" {
                    add(UNSAFE, t.line, &mut out);
                    continue;
                }
                // alloc: explicit allocation constructors.
                let alloc_path = matches!(name, "Vec" | "String" | "Box")
                    && next_is("::")
                    && matches!(ctx.toks.get(j + 2), Some(n) if n.kind == TokKind::Ident
                        && matches!(n.text.as_str(), "new" | "with_capacity" | "from"));
                let alloc_macro = matches!(name, "vec" | "format") && next_is("!");
                let alloc_method =
                    matches!(name, "to_vec" | "to_string" | "collect") && prev_dot && next_is("(");
                if alloc_path || alloc_macro || alloc_method {
                    add(ALLOC, t.line, &mut out);
                    continue;
                }
                // io
                let io_macro = matches!(name, "println" | "print" | "eprintln" | "eprint")
                    && next_is("!");
                let io_path = matches!(name, "fs" | "File" | "OpenOptions") && next_is("::");
                let io_call = matches!(name, "stdin" | "stdout" | "stderr") && next_is("(");
                let io_method = matches!(
                    name,
                    "read_to_string" | "read_dir" | "write_all" | "create_dir_all" | "remove_file"
                );
                if io_macro || io_path || io_call || io_method {
                    add(IO, t.line, &mut out);
                }
            }
            out
        })
        .collect()
}

/// Per-fn barrier masks: bits absorbed when this fn is *called*.
pub fn barrier_masks(g: &CallGraph, contracts: &ContractsFile) -> Vec<EffectSet> {
    g.fns
        .iter()
        .map(|f| contracts.absorbed_at(&f.path))
        .collect()
}

/// Propagates intrinsic effects to a transitive fixpoint over SCCs.
/// Returns the transitive effect set per fn, plus `(scc_count,
/// largest_scc)` for the report. The Tarjan walk is iterative, so deep or
/// adversarial graphs cannot overflow the stack.
pub fn propagate(
    g: &CallGraph,
    intrinsics: &[Intrinsics],
    masks: &[EffectSet],
) -> (Vec<EffectSet>, usize, usize) {
    let n = g.fns.len();
    let mut result: Vec<EffectSet> = intrinsics.iter().map(|i| i.effects).collect();

    // Iterative Tarjan.
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    // (node, next-callee-position)
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let callees = &g.callees[v as usize];
            if *pos < callees.len() {
                let w = callees[*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }

    // Tarjan emits SCCs sinks-first: every callee component is already
    // final when its caller component is processed, so one pass suffices.
    let largest = sccs.iter().map(Vec::len).max().unwrap_or(0);
    for comp in &sccs {
        let mut eff: EffectSet = 0;
        for &m in comp {
            eff |= intrinsics[m as usize].effects;
            for &c in &g.callees[m as usize] {
                eff |= result[c as usize] & !masks[c as usize];
            }
        }
        for &m in comp {
            result[m as usize] = eff;
        }
    }
    (result, sccs.len(), largest)
}

/// Shortest call path (BFS over the masked graph) from `from` to a fn with
/// an intrinsic source of `effect`. Returns fn ids, `from` first. `None`
/// when the effect is not actually reachable (e.g. it was intrinsic to a
/// barrier-masked callee).
pub fn witness_path(
    g: &CallGraph,
    intrinsics: &[Intrinsics],
    masks: &[EffectSet],
    from: u32,
    effect: EffectSet,
) -> Option<Vec<u32>> {
    let n = g.fns.len();
    let mut prev: Vec<u32> = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    queue.push_back(from);
    seen[from as usize] = true;
    while let Some(v) = queue.pop_front() {
        if intrinsics[v as usize].effects & effect != 0 {
            let mut path = vec![v];
            let mut cur = v;
            while prev[cur as usize] != u32::MAX {
                cur = prev[cur as usize];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &w in &g.callees[v as usize] {
            if !seen[w as usize] && masks[w as usize] & effect == 0 {
                seen[w as usize] = true;
                prev[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts;
    use crate::graph::build_graph;
    use crate::scan::{build_ctx, classify};

    fn analyze(files: &[(&str, &str)]) -> (CallGraph, Vec<Intrinsics>, Vec<EffectSet>) {
        let ctxs: Vec<_> = files
            .iter()
            .map(|(p, s)| build_ctx((*p).to_string(), classify(p).unwrap(), s))
            .collect();
        let g = build_graph(&ctxs);
        let intr = intrinsic_effects(&g, &ctxs);
        let masks = vec![0; g.fns.len()];
        let (trans, _, _) = propagate(&g, &intr, &masks);
        (g, intr, trans)
    }

    fn effects_of(g: &CallGraph, trans: &[EffectSet], path: &str) -> EffectSet {
        trans[g.id_of(path).unwrap() as usize]
    }

    #[test]
    fn transitive_time_two_calls_deep() {
        let src = "fn low() { let t = std::time::Instant::now(); }\n\
                   fn mid() { low(); }\n\
                   pub fn kernel() { mid(); }\n";
        let (g, _, trans) = analyze(&[("crates/linalg/src/a.rs", src)]);
        assert_eq!(effects_of(&g, &trans, "linalg::a::kernel") & TIME, TIME);
    }

    #[test]
    fn recursive_scc_reaches_fixpoint() {
        let src = "fn a(x: u8) { if x > 0 { b(x - 1); } }\n\
                   fn b(x: u8) { let v: Vec<u8> = Vec::new(); a(x); }\n";
        let (g, _, trans) = analyze(&[("crates/nn/src/a.rs", src)]);
        assert_eq!(effects_of(&g, &trans, "nn::a::a") & ALLOC, ALLOC);
        assert_eq!(effects_of(&g, &trans, "nn::a::b") & ALLOC, ALLOC);
    }

    #[test]
    fn discharged_panic_is_annotated_not_tainting() {
        let src = "fn inner(x: Option<u8>) -> u8 {\n\
                   \x20   // lint:allow(no-panic): checked by caller\n\
                   \x20   x.unwrap()\n\
                   }\n\
                   pub fn outer(x: Option<u8>) -> u8 { inner(x) }\n";
        let (g, intr, trans) = analyze(&[("crates/core/src/a.rs", src)]);
        let outer = effects_of(&g, &trans, "core::a::outer");
        assert_eq!(outer & PANICS, 0, "discharged panic must not taint");
        assert_eq!(outer & PANICS_ANNOTATED, PANICS_ANNOTATED);
        let inner_id = g.id_of("core::a::inner").unwrap() as usize;
        assert!(intr[inner_id].panic_sites[0].discharged);
    }

    #[test]
    fn undischarged_panic_taints_transitively() {
        let src = "fn inner(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   pub fn outer(x: Option<u8>) -> u8 { inner(x) }\n";
        let (g, intr, trans) = analyze(&[("crates/core/src/a.rs", src)]);
        assert_eq!(effects_of(&g, &trans, "core::a::outer") & PANICS, PANICS);
        let masks = vec![0; g.fns.len()];
        let outer = g.id_of("core::a::outer").unwrap();
        let path = witness_path(&g, &intr, &masks, outer, PANICS).unwrap();
        let names: Vec<&str> = path.iter().map(|&i| g.fns[i as usize].name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn barrier_absorbs_effect_at_the_edge() {
        let toml = "[[barrier]]\nscope = [\"obsv::*\"]\nabsorbs = [\"time\"]\n\
                    reason = \"obsv owns the audited clock\"\n";
        let cf = contracts::parse(toml).unwrap();
        let files = [
            (
                "crates/obsv/src/metrics.rs",
                "pub fn start() { let t = std::time::Instant::now(); }",
            ),
            (
                "crates/nn/src/a.rs",
                "use obsv::metrics::start;\npub fn kernel() { start(); }",
            ),
        ];
        let ctxs: Vec<_> = files
            .iter()
            .map(|(p, s)| build_ctx((*p).to_string(), classify(p).unwrap(), s))
            .collect();
        let g = build_graph(&ctxs);
        let intr = intrinsic_effects(&g, &ctxs);
        let masks = barrier_masks(&g, &cf);
        let (trans, _, _) = propagate(&g, &intr, &masks);
        // obsv keeps its own truthful TIME; the caller is clean.
        assert_eq!(effects_of(&g, &trans, "obsv::metrics::start") & TIME, TIME);
        assert_eq!(effects_of(&g, &trans, "nn::a::kernel") & TIME, 0);
    }

    #[test]
    fn effect_name_roundtrip() {
        for (bit, name) in EFFECT_NAMES {
            assert_eq!(parse_effect(name), Some(*bit));
        }
        assert_eq!(effect_names(RNG | TIME), "rng+time");
        assert_eq!(effect_names(0), "-");
    }
}
