//! `cloudgen-lint`: a workspace static-analysis pass enforcing determinism,
//! panic-freedom, and numeric hygiene across the cloudgen crates.
//!
//! The reproduction's correctness claims — bit-identical traces from a
//! seed, library code that degrades into typed errors instead of panics,
//! numerics that survive NaN/rounding — are properties `cargo test` cannot
//! enforce by itself. This crate enforces them at the source level with a
//! hand-rolled, comment/string-aware Rust lexer ([`lexer`]), a brace-matched
//! item/block tree built over the token stream ([`tree`]: function and impl
//! boundaries, `#[cfg(test)]` scopes, flattened use-paths), and a set of
//! syntax-aware rules ([`rules`]); [`scan`] decides which rules apply
//! where, and [`report`] renders text or JSON for humans and CI.
//!
//! On top of the per-file pass sits an *interprocedural* analysis: a
//! workspace call graph ([`graph`]) built from the item trees and use
//! tables, an effect lattice propagated to a fixpoint over its SCCs
//! ([`effects`]), and declared effect contracts with sanctioned absorber
//! barriers ([`contracts`], `lint-contracts.toml`) — run via the
//! `cloudgen-lint effects` subcommand, which also emits the
//! panic-reachability report for every public library entry point.
//!
//! The same machinery carries a second lattice: per-function *allocation
//! summaries* classified on a growth-class scale ([`alloc_flow`]),
//! propagated over the same SCC fixpoint and checked against declared
//! `[[memory]]` contracts with `[[absorber]]` materialization points —
//! run via `cloudgen-lint memory`, which emits a growth report with a
//! witness call path from each public entry to its worst allocation site.
//!
//! The linter is deliberately dependency-free (it links only `obsv`, for
//! telemetry emission from the binary): it must keep working in offline
//! build environments and must never be the slowest step of
//! `scripts/check.sh`.
//!
//! Suppressions are inline and auditable: `// lint:allow(rule-id): reason`
//! silences the named rules on its own line and the next, an allow
//! without a reason is itself a violation, and an allow that no longer
//! suppresses anything is flagged as `stale-allow` so the annotation log
//! cannot rot.

#![forbid(unsafe_code)]

pub mod alloc_flow;
pub mod contracts;
pub mod effects;
pub mod graph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod tree;

pub use alloc_flow::{growth_name, parse_growth, Growth};
pub use contracts::{parse as parse_contracts, ContractsFile};
pub use report::{
    render_effects_json, render_effects_text, render_json, render_memory_json,
    render_memory_text, render_text, rule_counts,
};
pub use rules::{checked_rules, checked_rules_for, Violation, RULES};
pub use scan::{
    analyze_memory, analyze_workspace, classify, scan_source, scan_workspace, ContractStat,
    EffectsOutcome, FileClass, FileViolation, MemoryEntry, MemoryOutcome, PanicEntry, ScanReport,
};
