//! `cloudgen-lint`: a workspace static-analysis pass enforcing determinism,
//! panic-freedom, and numeric hygiene across the cloudgen crates.
//!
//! The reproduction's correctness claims — bit-identical traces from a
//! seed, library code that degrades into typed errors instead of panics,
//! numerics that survive NaN/rounding — are properties `cargo test` cannot
//! enforce by itself. This crate enforces them at the source level with a
//! hand-rolled, comment/string-aware Rust lexer ([`lexer`]), a brace-matched
//! item/block tree built over the token stream ([`tree`]: function and impl
//! boundaries, `#[cfg(test)]` scopes, flattened use-paths), and a set of
//! syntax-aware rules ([`rules`]); [`scan`] decides which rules apply
//! where, and [`report`] renders text or JSON for humans and CI.
//!
//! The linter is deliberately dependency-free (it links only `obsv`, for
//! telemetry emission from the binary): it must keep working in offline
//! build environments and must never be the slowest step of
//! `scripts/check.sh`.
//!
//! Suppressions are inline and auditable: `// lint:allow(rule-id): reason`
//! silences the named rules on its own line and the next, an allow
//! without a reason is itself a violation, and an allow that no longer
//! suppresses anything is flagged as `stale-allow` so the annotation log
//! cannot rot.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod tree;

pub use report::{render_json, render_text, rule_counts};
pub use rules::{Violation, RULES};
pub use scan::{classify, scan_source, scan_workspace, FileClass, FileViolation, ScanReport};
