//! Rendering a [`ScanReport`] as human-readable text or JSON.
//!
//! JSON output is hand-rolled (the linter deliberately has no heavyweight
//! dependencies) with full string escaping, so editor/CI integrations can
//! consume `cloudgen-lint --json` without surprises.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::RULES;
use crate::scan::{EffectsOutcome, MemoryOutcome, ScanReport};

/// Per-rule violation counts in [`RULES`] order, skipping zero rules.
pub fn rule_counts(report: &ScanReport) -> Vec<(&'static str, usize)> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for fv in &report.violations {
        *counts.entry(fv.violation.rule).or_insert(0) += 1;
    }
    RULES
        .iter()
        .filter_map(|(id, _)| counts.get(id).map(|&n| (*id, n)))
        .collect()
}

/// Renders the `path:line:col: error[rule]: message` listing plus a
/// per-rule summary block.
pub fn render_text(report: &ScanReport) -> String {
    let mut out = String::new();
    for fv in &report.violations {
        let v = &fv.violation;
        let _ = writeln!(
            out,
            "{}:{}:{}: error[{}]: {}",
            fv.path, v.line, v.col, v.rule, v.message
        );
    }
    if !report.violations.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "cloudgen-lint: {} file(s) scanned, {} violation(s), {} suppressed",
        report.files,
        report.violations.len(),
        report.suppressed
    );
    for (rule, n) in rule_counts(report) {
        let _ = writeln!(out, "  {rule}: {n}");
    }
    out
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a JSON document:
///
/// ```json
/// {
///   "files": 42,
///   "violations": [{"path": "...", "line": 1, "col": 1, "rule": "...", "message": "..."}],
///   "suppressed": 3,
///   "counts": {"no-panic": 2}
/// }
/// ```
pub fn render_json(report: &ScanReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files\": {},", report.files);
    out.push_str("  \"violations\": [");
    for (i, fv) in report.violations.iter().enumerate() {
        let v = &fv.violation;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&fv.path),
            v.line,
            v.col,
            json_escape(v.rule),
            json_escape(&v.message)
        );
    }
    if report.violations.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    let _ = writeln!(out, "  \"suppressed\": {},", report.suppressed);
    out.push_str("  \"counts\": {");
    let counts = rule_counts(report);
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", json_escape(rule), n);
    }
    out.push_str("}\n}\n");
    out
}

/// Renders the interprocedural analysis as text: the base violation
/// listing, call-graph statistics, per-contract results, and the
/// panic-reachability section (every public library entry point with a
/// shortest witness path to a panic site).
pub fn render_effects_text(outcome: &EffectsOutcome) -> String {
    let mut out = render_text(&outcome.report);
    out.push('\n');
    let _ = writeln!(
        out,
        "call graph: {} fn(s), {} edge(s), {} SCC(s) (largest {})",
        outcome.functions, outcome.edges, outcome.sccs, outcome.largest_scc
    );
    out.push_str("contracts:\n");
    for c in &outcome.contracts {
        let verdict = if c.violations == 0 { "ok" } else { "FAIL" };
        let _ = writeln!(
            out,
            "  {}: {} — {} fn(s) checked, {} unpaid violation(s)",
            c.name, verdict, c.checked, c.violations
        );
    }
    let _ = writeln!(
        out,
        "panic-reachability: {} public entry point(s) can reach a panic",
        outcome.reachability.len()
    );
    for e in &outcome.reachability {
        let kind = if e.annotated {
            "annotated-only"
        } else {
            "raw panic"
        };
        let _ = writeln!(
            out,
            "  {} ({}:{}) [{kind}]\n    via {}\n    {} at {}:{}",
            e.entry,
            e.file,
            e.line,
            e.call_path.join(" → "),
            e.site_what,
            e.site_file,
            e.site_line
        );
    }
    out
}

/// Renders the interprocedural analysis as JSON: the base report schema
/// plus `graph`, `contracts`, and `panic_reachability` sections. The
/// document carries no timings, so it is byte-stable across runs and
/// diffable as a CI artifact.
pub fn render_effects_json(outcome: &EffectsOutcome) -> String {
    let base = render_json(&outcome.report);
    // Splice the extra sections before the closing `}`: the base renderer
    // ends with "}\n}\n" (counts object then document).
    let mut out = base
        .strip_suffix("}\n")
        .expect("render_json ends with its closing brace")
        .to_string();
    out.pop(); // trailing newline after the counts object
    out.push_str(",\n");
    let _ = writeln!(
        out,
        "  \"graph\": {{\"functions\": {}, \"edges\": {}, \"sccs\": {}, \"largest_scc\": {}}},",
        outcome.functions, outcome.edges, outcome.sccs, outcome.largest_scc
    );
    out.push_str("  \"contracts\": [");
    for (i, c) in outcome.contracts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"checked\": {}, \"violations\": {}}}",
            json_escape(&c.name),
            c.checked,
            c.violations
        );
    }
    if outcome.contracts.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"panic_reachability\": [");
    for (i, e) in outcome.reachability.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let path: Vec<String> = e
            .call_path
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect();
        let _ = write!(
            out,
            "\n    {{\"entry\": \"{}\", \"file\": \"{}\", \"line\": {}, \"annotated\": {}, \
             \"call_path\": [{}], \"site\": {{\"file\": \"{}\", \"line\": {}, \"what\": \"{}\"}}}}",
            json_escape(&e.entry),
            json_escape(&e.file),
            e.line,
            e.annotated,
            path.join(", "),
            json_escape(&e.site_file),
            e.site_line,
            json_escape(&e.site_what)
        );
    }
    if outcome.reachability.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Renders the allocation-flow analysis as text: the base violation
/// listing, call-graph statistics, per-memory-contract results, and the
/// growth section (every public library entry point whose transitive
/// growth class is `loop-linear` or worse, with a shortest witness path
/// to the allocating site).
pub fn render_memory_text(outcome: &MemoryOutcome) -> String {
    let mut out = render_text(&outcome.report);
    out.push('\n');
    let _ = writeln!(
        out,
        "call graph: {} fn(s), {} edge(s), {} SCC(s) (largest {})",
        outcome.functions, outcome.edges, outcome.sccs, outcome.largest_scc
    );
    out.push_str("memory contracts:\n");
    for c in &outcome.contracts {
        let verdict = if c.violations == 0 { "ok" } else { "FAIL" };
        let _ = writeln!(
            out,
            "  {}: {} — {} fn(s) checked, {} unpaid violation(s)",
            c.name, verdict, c.checked, c.violations
        );
    }
    let _ = writeln!(
        out,
        "growth: {} public entry point(s) reach loop-linear or worse",
        outcome.growth.len()
    );
    for e in &outcome.growth {
        let mut quals = Vec::new();
        if e.site_in_loop {
            quals.push("in loop");
        }
        if e.site_escapes {
            quals.push("escapes");
        }
        let quals = if quals.is_empty() {
            String::new()
        } else {
            format!(" ({})", quals.join(", "))
        };
        let _ = writeln!(
            out,
            "  {} ({}:{}) [{}]\n    via {}\n    {}{} at {}:{}",
            e.entry,
            e.file,
            e.line,
            e.class,
            e.call_path.join(" → "),
            e.site_what,
            quals,
            e.site_file,
            e.site_line
        );
    }
    out
}

/// Renders the allocation-flow analysis as JSON: the base report schema
/// plus `graph`, `memory_contracts`, and `growth` sections. Like the
/// effects document, it carries no timings and is byte-stable across runs.
pub fn render_memory_json(outcome: &MemoryOutcome) -> String {
    let base = render_json(&outcome.report);
    let mut out = base
        .strip_suffix("}\n")
        .expect("render_json ends with its closing brace")
        .to_string();
    out.pop(); // trailing newline after the counts object
    out.push_str(",\n");
    let _ = writeln!(
        out,
        "  \"graph\": {{\"functions\": {}, \"edges\": {}, \"sccs\": {}, \"largest_scc\": {}}},",
        outcome.functions, outcome.edges, outcome.sccs, outcome.largest_scc
    );
    out.push_str("  \"memory_contracts\": [");
    for (i, c) in outcome.contracts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"checked\": {}, \"violations\": {}}}",
            json_escape(&c.name),
            c.checked,
            c.violations
        );
    }
    if outcome.contracts.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"growth\": [");
    for (i, e) in outcome.growth.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let path: Vec<String> = e
            .call_path
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect();
        let _ = write!(
            out,
            "\n    {{\"entry\": \"{}\", \"file\": \"{}\", \"line\": {}, \"class\": \"{}\", \
             \"call_path\": [{}], \"site\": {{\"file\": \"{}\", \"line\": {}, \"what\": \"{}\", \
             \"in_loop\": {}, \"escapes\": {}}}}}",
            json_escape(&e.entry),
            json_escape(&e.file),
            e.line,
            json_escape(e.class),
            path.join(", "),
            json_escape(&e.site_file),
            e.site_line,
            json_escape(&e.site_what),
            e.site_in_loop,
            e.site_escapes
        );
    }
    if outcome.growth.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;
    use crate::scan::FileViolation;

    fn sample() -> ScanReport {
        ScanReport {
            files: 2,
            violations: vec![FileViolation {
                path: "crates/nn/src/x.rs".to_string(),
                violation: Violation {
                    rule: "no-panic",
                    line: 3,
                    col: 7,
                    message: "`.unwrap()` panics; say \"why\"".to_string(),
                },
            }],
            suppressed: 1,
        }
    }

    #[test]
    fn text_has_location_and_summary() {
        let text = render_text(&sample());
        assert!(text.contains("crates/nn/src/x.rs:3:7: error[no-panic]:"));
        assert!(text.contains("2 file(s) scanned, 1 violation(s), 1 suppressed"));
        assert!(text.contains("no-panic: 1"));
    }

    #[test]
    fn json_escapes_quotes() {
        let json = render_json(&sample());
        assert!(json.contains("\\\"why\\\""));
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"suppressed\": 1"));
    }

    #[test]
    fn json_empty_report() {
        let json = render_json(&ScanReport::default());
        assert!(json.contains("\"violations\": [],"));
        assert!(json.contains("\"counts\": {}"));
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(json_escape("a\nb\t\"c\\"), "a\\nb\\t\\\"c\\\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
