//! A small hand-rolled Rust lexer: just enough token structure for the
//! workspace lint rules, with exact handling of the places where naive
//! regex-style scanning goes wrong — comments (line, nested block), string
//! literals (plain, raw, byte, C), char literals vs. lifetimes, and numeric
//! literals.
//!
//! The lexer deliberately does not build a syntax tree. Every rule in
//! [`crate::rules`] is a pattern over the token stream, which keeps the
//! whole pass dependency-free and fast enough to run on every `check.sh`
//! invocation.
//!
//! Inline suppressions are collected during lexing: a line comment of the
//! form `// lint:allow(rule-id, other-rule): reason` suppresses the named
//! rules on its own line and on the following line. The reason string is
//! mandatory; [`Allow::reason`] being empty is reported as a violation by
//! the scanner rather than silently honored.

/// Token classification. Coarse on purpose: rules match identifier text and
/// punctuation shapes, not grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `pub`, `fn`, ...).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Integer literal (any base, with or without suffix).
    Int,
    /// Float literal (`0.5`, `1e-3`, `2f64`, ...).
    Float,
    /// String literal of any flavor (plain, raw, byte, C). Content opaque.
    Str,
    /// Char or byte-char literal. Content opaque.
    Char,
    /// Punctuation; multi-character operators in [`COMPOUND_OPS`] are fused.
    Punct,
}

/// Multi-character operators the lexer fuses into one [`TokKind::Punct`]
/// token. Order matters: longest match first within each leading byte.
pub const COMPOUND_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "..", "+=", "-=", "*=", "/=",
];

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Str`] and [`TokKind::Char`] this is the
    /// empty string: rules must never match on literal contents.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// A parsed `lint:allow` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the comment appears on (suppresses this line and the next).
    pub line: u32,
    /// Rule ids named inside the parentheses.
    pub rules: Vec<String>,
    /// Reason text after the closing `): `. Empty when the author omitted it.
    pub reason: String,
}

/// Output of [`lex`]: the token stream plus side tables.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Suppression comments in source order.
    pub allows: Vec<Allow>,
    /// Set when the source ends inside an unterminated string or block
    /// comment; rules still run on what was lexed.
    pub truncated: bool,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if !f(b) {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a plain (escape-aware) string or char body after the opening
    /// quote. Returns false if the input ended first.
    fn eat_escaped_until(&mut self, quote: u8) -> bool {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                _ if b == quote => return true,
                _ => {}
            }
        }
        false
    }

    /// Consumes a raw string body after `r` / `br` / `cr`, starting at the
    /// `#`s or the opening quote. Returns false if unterminated.
    fn eat_raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            // `r#ident` raw identifier path: nothing string-like to consume.
            return true;
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => return false,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return true;
                    }
                }
                Some(_) => {}
            }
        }
    }
}

/// True if the identifier just lexed, when immediately followed by a quote
/// or `#"`, is a string-literal prefix (`r`, `b`, `br`, `c`, `cr`, `rb` is
/// not valid Rust and is not treated as one).
fn is_string_prefix(ident: &str) -> bool {
    matches!(ident, "r" | "b" | "br" | "c" | "cr")
}

/// Parses a suppression directive out of a line comment body, if present.
/// The directive must be the first thing in the comment (after the `//`
/// markers and whitespace): a suppression is a directive, not prose, so a
/// sentence that merely *mentions* the syntax never fires.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let body = comment.trim_start_matches('/').trim_start_matches('!').trim_start();
    let rest = body.strip_prefix("lint:allow(")?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let after = &rest[close + 1..];
    let reason = after
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some(Allow {
        line,
        rules,
        reason,
    })
}

/// Lexes one source file.
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                // Line comment (incl. doc comments). Capture text for
                // lint:allow parsing.
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = std::str::from_utf8(&cur.bytes[start..cur.pos]).unwrap_or("");
                if let Some(allow) = parse_allow(text, line) {
                    out.allows.push(allow);
                }
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                // Block comment, nested.
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                loop {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => {
                            out.truncated = true;
                            break;
                        }
                    }
                }
            }
            b'"' => {
                cur.bump();
                if !cur.eat_escaped_until(b'"') {
                    out.truncated = true;
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            b'\'' => {
                // Lifetime vs char literal.
                cur.bump();
                match cur.peek(0) {
                    Some(b'\\') => {
                        // Escaped char literal.
                        if !cur.eat_escaped_until(b'\'') {
                            out.truncated = true;
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line,
                            col,
                        });
                    }
                    Some(c) if is_ident_start(c) && cur.peek(1) != Some(b'\'') => {
                        // Lifetime: 'ident not closed by a quote.
                        let start = cur.pos;
                        cur.eat_while(is_ident_continue);
                        let text =
                            std::str::from_utf8(&cur.bytes[start..cur.pos]).unwrap_or("");
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: text.to_string(),
                            line,
                            col,
                        });
                    }
                    Some(_) => {
                        // 'x' char literal (any single non-escape char).
                        cur.bump();
                        if cur.peek(0) == Some(b'\'') {
                            cur.bump();
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line,
                            col,
                        });
                    }
                    None => {
                        out.truncated = true;
                    }
                }
            }
            b'0'..=b'9' => {
                let start = cur.pos;
                let mut kind = TokKind::Int;
                let radix_prefixed = b == b'0'
                    && matches!(cur.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
                if radix_prefixed {
                    cur.bump();
                    cur.bump();
                    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == b'_');
                } else {
                    cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
                    // Fraction: `.` followed by a digit, or a bare trailing
                    // `.` not starting `..` / a method call / a field access.
                    if cur.peek(0) == Some(b'.') {
                        match cur.peek(1) {
                            Some(d) if d.is_ascii_digit() => {
                                kind = TokKind::Float;
                                cur.bump();
                                cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
                            }
                            Some(d) if d == b'.' || is_ident_start(d) => {}
                            _ => {
                                kind = TokKind::Float;
                                cur.bump();
                            }
                        }
                    }
                    // Exponent.
                    if matches!(cur.peek(0), Some(b'e' | b'E')) {
                        let sign = matches!(cur.peek(1), Some(b'+' | b'-'));
                        let digit_at = if sign { 2 } else { 1 };
                        if matches!(cur.peek(digit_at), Some(d) if d.is_ascii_digit()) {
                            kind = TokKind::Float;
                            cur.bump();
                            if sign {
                                cur.bump();
                            }
                            cur.eat_while(|c| c.is_ascii_digit() || c == b'_');
                        }
                    }
                    // Suffix (`f64` forces float, `u32` etc. stay int).
                    if matches!(cur.peek(0), Some(c) if is_ident_start(c)) {
                        let sstart = cur.pos;
                        cur.eat_while(is_ident_continue);
                        let suffix =
                            std::str::from_utf8(&cur.bytes[sstart..cur.pos]).unwrap_or("");
                        if suffix == "f32" || suffix == "f64" {
                            kind = TokKind::Float;
                        }
                    }
                }
                let text = std::str::from_utf8(&cur.bytes[start..cur.pos]).unwrap_or("");
                out.toks.push(Tok {
                    kind,
                    text: text.to_string(),
                    line,
                    col,
                });
            }
            c if is_ident_start(c) => {
                let start = cur.pos;
                cur.eat_while(is_ident_continue);
                let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
                    .unwrap_or("")
                    .to_string();
                // String-literal prefixes: r"..." br#"..."# b"..." c"..."
                // and raw identifiers r#ident.
                let next = cur.peek(0);
                if is_string_prefix(&text) && matches!(next, Some(b'"' | b'#')) {
                    let raw = text != "b" && text != "c";
                    if raw {
                        if !cur.eat_raw_string() {
                            out.truncated = true;
                        }
                        // `r#ident`: eat_raw_string consumed the hashes but
                        // found no quote; lex the identifier it prefixes.
                        if matches!(cur.peek(0), Some(c2) if is_ident_start(c2)) {
                            let istart = cur.pos;
                            cur.eat_while(is_ident_continue);
                            let itext = std::str::from_utf8(&cur.bytes[istart..cur.pos])
                                .unwrap_or("")
                                .to_string();
                            out.toks.push(Tok {
                                kind: TokKind::Ident,
                                text: itext,
                                line,
                                col,
                            });
                            continue;
                        }
                    } else {
                        // b"..." / c"..." with escapes.
                        cur.bump(); // opening quote
                        if !cur.eat_escaped_until(b'"') {
                            out.truncated = true;
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                        col,
                    });
                } else if text == "b" && next == Some(b'\'') {
                    // Byte char b'x'.
                    cur.bump();
                    if cur.peek(0) == Some(b'\\') {
                        if !cur.eat_escaped_until(b'\'') {
                            out.truncated = true;
                        }
                    } else {
                        cur.bump();
                        if cur.peek(0) == Some(b'\'') {
                            cur.bump();
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                        col,
                    });
                } else {
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                        col,
                    });
                }
            }
            _ => {
                // Punctuation: longest compound operator first.
                let two = [b, cur.peek(1).unwrap_or(0)];
                let compound = COMPOUND_OPS
                    .iter()
                    .find(|op| op.as_bytes() == two.as_slice());
                let text = if let Some(op) = compound {
                    cur.bump();
                    cur.bump();
                    (*op).to_string()
                } else {
                    cur.bump();
                    (b as char).to_string()
                };
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                    col,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_skipped() {
        assert!(idents("// unwrap() thread_rng()\n/* panic!() */").is_empty());
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ unwrap */ real"), vec!["real"]);
    }

    #[test]
    fn string_contents_are_opaque() {
        let toks = kinds(r#"let s = "thread_rng() // not a comment";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "thread_rng")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " inside unwrap()"#; after"##;
        assert_eq!(idents(src), vec!["let", "s", "after"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(idents(r##"b"unwrap" c"panic" br#"todo"# x"##), vec!["x"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("r#fn r#unwrap"), vec!["fn", "unwrap"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str; let c = 'x'; let n = '\\n'; 'b'");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].1, "a");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn char_literal_with_quote_escape() {
        assert_eq!(idents(r"let q = '\''; done"), vec!["let", "q", "done"]);
    }

    #[test]
    fn float_vs_int_literals() {
        let toks = kinds("1 2.5 1e-3 0.0 1_000 7f64 3f32 0x1e5 1..2 1.max(2)");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["2.5", "1e-3", "0.0", "7f64", "3f32"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(ints, vec!["1", "1_000", "0x1e5", "1", "2", "1", "2"]);
    }

    #[test]
    fn trailing_dot_float() {
        let toks = kinds("let x = 1.;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Float && t == "1."));
    }

    #[test]
    fn compound_operators_fuse() {
        let puncts: Vec<String> = lex("a == b != c -> d :: e")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "->", "::"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b").toks;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn allow_comment_parses() {
        let out = lex("x // lint:allow(no-panic, float-eq): invariant holds\ny");
        assert_eq!(out.allows.len(), 1);
        let a = &out.allows[0];
        assert_eq!(a.line, 1);
        assert_eq!(a.rules, vec!["no-panic", "float-eq"]);
        assert_eq!(a.reason, "invariant holds");
    }

    #[test]
    fn allow_without_reason_has_empty_reason() {
        let out = lex("// lint:allow(no-panic)\n");
        assert_eq!(out.allows.len(), 1);
        assert!(out.allows[0].reason.is_empty());
    }

    #[test]
    fn allow_inside_string_is_not_parsed() {
        let out = lex(r#"let s = "// lint:allow(no-panic): nope";"#);
        assert!(out.allows.is_empty());
    }

    #[test]
    fn unterminated_string_sets_truncated() {
        assert!(lex("let s = \"oops").truncated);
    }
}
