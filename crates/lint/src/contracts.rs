//! Declared effect and memory contracts (`lint-contracts.toml`).
//!
//! The contract file names the workspace's effect policy so the analyzer
//! can enforce it transitively. Four table kinds, parsed from a deliberately
//! small TOML subset (`[[contract]]` / `[[barrier]]` / `[[memory]]` /
//! `[[absorber]]` array-of-table headers; `key = "string"` and
//! `key = ["array", "of", "strings"]` values; `#` comments) — the linter
//! stays dependency-free, and the subset is validated strictly (unknown
//! keys, unknown effect or growth-class names, and malformed lines are
//! hard errors so a typo cannot silently weaken the policy):
//!
//! ```toml
//! # Calls into obsv do not propagate time/io to callers.
//! [[barrier]]
//! scope = ["obsv::*"]
//! absorbs = ["time", "io"]
//! reason = "obsv owns the audited wall clock and telemetry sinks"
//!
//! [[contract]]
//! name = "kernels-pure"
//! scope = ["linalg::*", "nn::*"]
//! forbid = ["rng", "time", "io"]
//! except = ["nn::codec::*"]
//! ```
//!
//! **Scope patterns** match full fn paths (`nn::lstm::Lstm::forward`):
//! `*` matches everything, `prefix::*` matches `prefix` and anything under
//! it, and a bare path matches exactly. Nothing more — the matcher is
//! simple enough to reason about in a review.
//!
//! A *contract* fails for every in-scope, non-excepted fn whose transitive
//! effect set intersects `forbid`; each failure is an `effect-contract`
//! violation anchored at the fn definition line, suppressible (and
//! auditable) like any other rule via `// lint:allow(effect-contract):
//! reason` on the line above the `fn`.
//!
//! A *barrier* declares a sanctioned absorber: calls *into* a matching fn
//! do not propagate the absorbed effects to the caller (see
//! [`crate::effects`] for the masking semantics). Barriers are the reason
//! "only `obsv` may reach `time`" can hold while every crate still times
//! itself through `obsv::Stopwatch`.
//!
//! The memory-boundedness analogues (`cloudgen-lint memory`, see
//! [`crate::alloc_flow`]):
//!
//! ```toml
//! # read_csv materializes a whole trace on purpose; callers opted in.
//! [[absorber]]
//! scope = ["trace::io::read_csv"]
//! reason = "batch loader for evaluation; streaming reader is ROADMAP 2"
//!
//! [[memory]]
//! name = "streaming-bounded"
//! scope = ["core::generator::*", "trace::io::*"]
//! max = "loop-linear"
//! ```
//!
//! A *memory* contract fails for every in-scope, non-excepted fn whose
//! transitive growth class exceeds `max` (one of `const`,
//! `capacity-bounded`, `param-bounded`, `loop-linear`,
//! `unbounded-escape`); each failure is a `memory-contract` violation
//! anchored at the fn definition line. An *absorber* is the memory-side
//! barrier: calls into a matching fn contribute nothing to the caller's
//! growth class, while the absorber's own summary stays truthful.

use crate::alloc_flow::{parse_growth, Growth, GROWTH_NAMES};
use crate::effects::{parse_effect, EffectSet, PANICS_ANNOTATED};

/// One `[[contract]]` entry.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Contract name shown in reports.
    pub name: String,
    /// Scope patterns; a fn is in scope when any matches.
    pub scope: Vec<String>,
    /// Forbidden effect bits.
    pub forbid: EffectSet,
    /// Exception patterns; an in-scope fn matching any is skipped.
    pub except: Vec<String>,
}

/// One `[[barrier]]` entry.
#[derive(Debug, Clone)]
pub struct Barrier {
    /// Scope patterns for the absorber fns.
    pub scope: Vec<String>,
    /// Effect bits absorbed at call edges into the scope.
    pub absorbs: EffectSet,
    /// Why the absorber is sanctioned (required: barriers are audit points).
    pub reason: String,
}

/// One `[[memory]]` entry: a declared bound on transitive growth class.
#[derive(Debug, Clone)]
pub struct MemoryContract {
    /// Contract name shown in reports.
    pub name: String,
    /// Scope patterns; a fn is in scope when any matches.
    pub scope: Vec<String>,
    /// Maximum permitted transitive growth class.
    pub max: Growth,
    /// Exception patterns; an in-scope fn matching any is skipped.
    pub except: Vec<String>,
}

/// One `[[absorber]]` entry: a sanctioned materialization point.
#[derive(Debug, Clone)]
pub struct Absorber {
    /// Scope patterns for the absorber fns.
    pub scope: Vec<String>,
    /// Why materializing here is sanctioned (required: audit point).
    pub reason: String,
}

/// The parsed contract file.
#[derive(Debug, Clone, Default)]
pub struct ContractsFile {
    /// Contracts in file order.
    pub contracts: Vec<Contract>,
    /// Barriers in file order.
    pub barriers: Vec<Barrier>,
    /// Memory contracts in file order.
    pub memory: Vec<MemoryContract>,
    /// Memory absorbers in file order.
    pub absorbers: Vec<Absorber>,
}

impl ContractsFile {
    /// Union of effects absorbed when a fn with this path is called.
    pub fn absorbed_at(&self, path: &str) -> EffectSet {
        self.barriers
            .iter()
            .filter(|b| b.scope.iter().any(|p| scope_matches(p, path)))
            .fold(0, |acc, b| acc | b.absorbs)
    }

    /// True when calls into a fn with this path contribute nothing to the
    /// caller's growth class.
    pub fn memory_absorbed_at(&self, path: &str) -> bool {
        self.absorbers
            .iter()
            .any(|a| a.scope.iter().any(|p| scope_matches(p, path)))
    }
}

/// Matches one scope pattern against a full fn path.
pub fn scope_matches(pattern: &str, path: &str) -> bool {
    if pattern == "*" {
        return true;
    }
    if let Some(prefix) = pattern.strip_suffix("::*") {
        return path == prefix || path.starts_with(&format!("{prefix}::"));
    }
    pattern == path
}

/// Parses effect names into a set, rejecting unknown names.
fn parse_effects(names: &[String], line: usize) -> Result<EffectSet, String> {
    let mut set = 0;
    for n in names {
        let bit = parse_effect(n)
            .ok_or_else(|| format!("line {line}: unknown effect `{n}` (see DESIGN.md)"))?;
        debug_assert_eq!(bit & PANICS_ANNOTATED, 0);
        set |= bit;
    }
    Ok(set)
}

/// A `key = value` line's parsed value.
enum Value {
    Str(String),
    List(Vec<String>),
}

/// Parses a double-quoted string starting at `s[0] == '"'`; returns the
/// content and the rest. No escapes — paths and effect names never need
/// them, and rejecting `\` keeps the grammar honest.
fn parse_str(s: &str, line: usize) -> Result<(String, &str), String> {
    let inner = s
        .strip_prefix('"')
        .ok_or_else(|| format!("line {line}: expected a double-quoted string"))?;
    let end = inner
        .find('"')
        .ok_or_else(|| format!("line {line}: unterminated string"))?;
    let content = &inner[..end];
    if content.contains('\\') {
        return Err(format!("line {line}: escapes are not supported in strings"));
    }
    Ok((content.to_string(), &inner[end + 1..]))
}

fn parse_value(s: &str, line: usize) -> Result<Value, String> {
    let s = s.trim();
    if let Some(list) = s.strip_prefix('[') {
        let list = list
            .trim_end()
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line}: unterminated array (arrays are single-line)"))?;
        let mut items = Vec::new();
        let mut rest = list.trim();
        while !rest.is_empty() {
            let (item, after) = parse_str(rest, line)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() {
                return Err(format!("line {line}: expected `,` between array items"));
            }
        }
        return Ok(Value::List(items));
    }
    let (content, after) = parse_str(s, line)?;
    if !after.trim().is_empty() {
        return Err(format!("line {line}: trailing content after string value"));
    }
    Ok(Value::Str(content))
}

/// Which table a parsed block belongs to.
enum Section {
    Contract {
        name: Option<String>,
        scope: Vec<String>,
        forbid: Vec<String>,
        except: Vec<String>,
        line: usize,
    },
    Barrier {
        scope: Vec<String>,
        absorbs: Vec<String>,
        reason: Option<String>,
        line: usize,
    },
    Memory {
        name: Option<String>,
        scope: Vec<String>,
        max: Option<String>,
        except: Vec<String>,
        line: usize,
    },
    Absorber {
        scope: Vec<String>,
        reason: Option<String>,
        line: usize,
    },
}

fn finish(section: Section, out: &mut ContractsFile) -> Result<(), String> {
    match section {
        Section::Contract {
            name,
            scope,
            forbid,
            except,
            line,
        } => {
            let name = name.ok_or_else(|| format!("line {line}: contract is missing `name`"))?;
            if scope.is_empty() {
                return Err(format!("line {line}: contract `{name}` is missing `scope`"));
            }
            if forbid.is_empty() {
                return Err(format!("line {line}: contract `{name}` is missing `forbid`"));
            }
            let forbid = parse_effects(&forbid, line)?;
            out.contracts.push(Contract {
                name,
                scope,
                forbid,
                except,
            });
        }
        Section::Barrier {
            scope,
            absorbs,
            reason,
            line,
        } => {
            if scope.is_empty() {
                return Err(format!("line {line}: barrier is missing `scope`"));
            }
            if absorbs.is_empty() {
                return Err(format!("line {line}: barrier is missing `absorbs`"));
            }
            let reason =
                reason.ok_or_else(|| format!("line {line}: barrier is missing `reason`"))?;
            let absorbs = parse_effects(&absorbs, line)?;
            out.barriers.push(Barrier {
                scope,
                absorbs,
                reason,
            });
        }
        Section::Memory {
            name,
            scope,
            max,
            except,
            line,
        } => {
            let name =
                name.ok_or_else(|| format!("line {line}: memory contract is missing `name`"))?;
            if scope.is_empty() {
                return Err(format!(
                    "line {line}: memory contract `{name}` is missing `scope`"
                ));
            }
            let max = max
                .ok_or_else(|| format!("line {line}: memory contract `{name}` is missing `max`"))?;
            let max = parse_growth(&max).ok_or_else(|| {
                let known: Vec<&str> = GROWTH_NAMES.iter().map(|(_, n)| *n).collect();
                format!(
                    "line {line}: unknown growth class `{max}` (known: {})",
                    known.join(", ")
                )
            })?;
            out.memory.push(MemoryContract {
                name,
                scope,
                max,
                except,
            });
        }
        Section::Absorber {
            scope,
            reason,
            line,
        } => {
            if scope.is_empty() {
                return Err(format!("line {line}: absorber is missing `scope`"));
            }
            let reason =
                reason.ok_or_else(|| format!("line {line}: absorber is missing `reason`"))?;
            out.absorbers.push(Absorber { scope, reason });
        }
    }
    Ok(())
}

/// Parses a contract file. Errors carry 1-based line numbers.
pub fn parse(text: &str) -> Result<ContractsFile, String> {
    let mut out = ContractsFile::default();
    let mut section: Option<Section> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.find('#') {
            Some(p) if !raw[..p].contains('"') => &raw[..p],
            _ => raw,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[contract]]" {
            if let Some(s) = section.take() {
                finish(s, &mut out)?;
            }
            section = Some(Section::Contract {
                name: None,
                scope: Vec::new(),
                forbid: Vec::new(),
                except: Vec::new(),
                line: lineno,
            });
            continue;
        }
        if line == "[[barrier]]" {
            if let Some(s) = section.take() {
                finish(s, &mut out)?;
            }
            section = Some(Section::Barrier {
                scope: Vec::new(),
                absorbs: Vec::new(),
                reason: None,
                line: lineno,
            });
            continue;
        }
        if line == "[[memory]]" {
            if let Some(s) = section.take() {
                finish(s, &mut out)?;
            }
            section = Some(Section::Memory {
                name: None,
                scope: Vec::new(),
                max: None,
                except: Vec::new(),
                line: lineno,
            });
            continue;
        }
        if line == "[[absorber]]" {
            if let Some(s) = section.take() {
                finish(s, &mut out)?;
            }
            section = Some(Section::Absorber {
                scope: Vec::new(),
                reason: None,
                line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: only [[contract]], [[barrier]], [[memory]], and \
                 [[absorber]] tables are supported"
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        let value = parse_value(value, lineno)?;
        let current = section
            .as_mut()
            .ok_or_else(|| format!("line {lineno}: `{key}` outside any [[table]]"))?;
        match (current, key, value) {
            (Section::Contract { name, .. }, "name", Value::Str(s)) => *name = Some(s),
            (Section::Contract { scope, .. }, "scope", Value::List(l)) => *scope = l,
            (Section::Contract { forbid, .. }, "forbid", Value::List(l)) => *forbid = l,
            (Section::Contract { except, .. }, "except", Value::List(l)) => *except = l,
            (Section::Barrier { scope, .. }, "scope", Value::List(l)) => *scope = l,
            (Section::Barrier { absorbs, .. }, "absorbs", Value::List(l)) => *absorbs = l,
            (Section::Barrier { reason, .. }, "reason", Value::Str(s)) => *reason = Some(s),
            (Section::Memory { name, .. }, "name", Value::Str(s)) => *name = Some(s),
            (Section::Memory { scope, .. }, "scope", Value::List(l)) => *scope = l,
            (Section::Memory { max, .. }, "max", Value::Str(s)) => *max = Some(s),
            (Section::Memory { except, .. }, "except", Value::List(l)) => *except = l,
            (Section::Absorber { scope, .. }, "scope", Value::List(l)) => *scope = l,
            (Section::Absorber { reason, .. }, "reason", Value::Str(s)) => *reason = Some(s),
            _ => {
                return Err(format!(
                    "line {lineno}: unknown or mistyped key `{key}` for this table"
                ))
            }
        }
    }
    if let Some(s) = section.take() {
        finish(s, &mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::{IO, RNG, SPAWN, TIME};

    const SAMPLE: &str = r#"
# policy file
[[barrier]]
scope = ["obsv::*"]
absorbs = ["time", "io"]
reason = "audited clock"

[[contract]]
name = "kernels-pure"
scope = ["linalg::*", "nn::*"]
forbid = ["rng", "time", "io"]
except = ["nn::codec::*"]

[[contract]]
name = "spawn-stays-in-pool"
scope = ["*"]
forbid = ["spawn"]
"#;

    #[test]
    fn parses_contracts_and_barriers() {
        let f = parse(SAMPLE).unwrap();
        assert_eq!(f.barriers.len(), 1);
        assert_eq!(f.barriers[0].absorbs, TIME | IO);
        assert_eq!(f.contracts.len(), 2);
        assert_eq!(f.contracts[0].name, "kernels-pure");
        assert_eq!(f.contracts[0].forbid, RNG | TIME | IO);
        assert_eq!(f.contracts[0].except, vec!["nn::codec::*"]);
        assert_eq!(f.contracts[1].forbid, SPAWN);
    }

    #[test]
    fn scope_matching() {
        assert!(scope_matches("*", "nn::lstm::Lstm::forward"));
        assert!(scope_matches("nn::*", "nn::lstm::Lstm::forward"));
        assert!(scope_matches("nn::lstm::*", "nn::lstm::Lstm::forward"));
        assert!(!scope_matches("nn::lst::*", "nn::lstm::Lstm::forward"));
        assert!(!scope_matches("nn::lstm", "nn::lstm::Lstm::forward"));
        assert!(scope_matches("nn::lstm::Lstm::forward", "nn::lstm::Lstm::forward"));
    }

    #[test]
    fn absorbed_at_unions_matching_barriers() {
        let f = parse(SAMPLE).unwrap();
        assert_eq!(f.absorbed_at("obsv::metrics::Stopwatch::new"), TIME | IO);
        assert_eq!(f.absorbed_at("nn::lstm::Lstm::forward"), 0);
    }

    #[test]
    fn rejects_unknown_effect_and_keys() {
        assert!(parse("[[contract]]\nname = \"x\"\nscope = [\"*\"]\nforbid = [\"determinism\"]\n")
            .unwrap_err()
            .contains("unknown effect"));
        assert!(parse("[[contract]]\nnom = \"x\"\n").unwrap_err().contains("unknown"));
        assert!(parse("[[barrier]]\nscope = [\"obsv::*\"]\nabsorbs = [\"time\"]\n")
            .unwrap_err()
            .contains("reason"));
        assert!(parse("stray = \"x\"\n").unwrap_err().contains("outside"));
    }

    #[test]
    fn parses_memory_contracts_and_absorbers() {
        let toml = r#"
[[absorber]]
scope = ["trace::io::read_csv"]
reason = "batch loader; callers opted in"

[[memory]]
name = "streaming-bounded"
scope = ["core::generator::*", "trace::io::*"]
max = "loop-linear"
except = ["core::generator::materialize"]

[[memory]]
name = "scratch-bounded"
scope = ["linalg::*"]
max = "param-bounded"
"#;
        let f = parse(toml).unwrap();
        assert_eq!(f.absorbers.len(), 1);
        assert!(f.memory_absorbed_at("trace::io::read_csv"));
        assert!(!f.memory_absorbed_at("trace::io::write_csv"));
        assert_eq!(f.memory.len(), 2);
        assert_eq!(f.memory[0].name, "streaming-bounded");
        assert_eq!(f.memory[0].max, Growth::LoopLinear);
        assert_eq!(f.memory[0].except, vec!["core::generator::materialize"]);
        assert_eq!(f.memory[1].max, Growth::ParamBounded);
    }

    #[test]
    fn rejects_bad_memory_tables() {
        assert!(
            parse("[[memory]]\nname = \"x\"\nscope = [\"*\"]\nmax = \"bounded\"\n")
                .unwrap_err()
                .contains("unknown growth class")
        );
        assert!(parse("[[memory]]\nname = \"x\"\nscope = [\"*\"]\n")
            .unwrap_err()
            .contains("missing `max`"));
        assert!(parse("[[memory]]\nscope = [\"*\"]\nmax = \"const\"\n")
            .unwrap_err()
            .contains("missing `name`"));
        assert!(parse("[[absorber]]\nscope = [\"trace::io::*\"]\n")
            .unwrap_err()
            .contains("missing `reason`"));
        assert!(parse("[[absorber]]\nreason = \"why\"\n")
            .unwrap_err()
            .contains("missing `scope`"));
        assert!(parse("[[memory]]\nname = \"x\"\nscope = [\"*\"]\nmax = \"const\"\nforbid = [\"io\"]\n")
            .unwrap_err()
            .contains("unknown or mistyped key"));
    }

    #[test]
    fn rejects_missing_required_fields() {
        assert!(parse("[[contract]]\nscope = [\"*\"]\nforbid = [\"rng\"]\n")
            .unwrap_err()
            .contains("missing `name`"));
        assert!(parse("[[contract]]\nname = \"x\"\nforbid = [\"rng\"]\n")
            .unwrap_err()
            .contains("missing `scope`"));
    }
}
