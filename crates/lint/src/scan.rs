//! Workspace walking, file classification, `#[cfg(test)]` region detection,
//! and suppression handling.
//!
//! The scanner decides *where* each rule applies; the rules in
//! [`crate::rules`] decide *what* to flag. Classification is path-based:
//!
//! * `crates/<name>/src/**` → library or binary-tool code depending on the
//!   crate (`cli`, `bench`, and `lint` itself are tools; everything else is
//!   a library crate), except `crates/<name>/src/bin/**` which is always
//!   tool code.
//! * `crates/<name>/{tests,benches,examples}/**`, top-level `tests/` and
//!   `examples/` → test/example code (only `float-eq` still applies, and it
//!   is disabled there too since assertions legitimately compare exact
//!   constants).
//! * the umbrella `src/**` → library code.
//!
//! Inside library files, `#[cfg(test)] mod ... { ... }` regions are located
//! with a token-level attribute scan plus brace matching, and rules treat
//! tokens inside them as test code.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::alloc_flow::{self, growth_name, Growth};
use crate::contracts::{scope_matches, ContractsFile};
use crate::effects::{
    self, effect_names, EffectSet, Intrinsics, PANICS, PANICS_ANNOTATED,
};
use crate::graph::{build_graph, CallGraph};
use crate::lexer::{self, Allow, Tok, TokKind};
use crate::rules::{self, checked_rules, checked_rules_for, Violation, RULES};
use crate::tree::{self, ItemTree};

/// Crates under `crates/` that are command-line tools rather than library
/// code: R1/R2/R4 do not apply to them (a CLI may panic on bad input),
/// though R3/R5/R12 still do — even a tool times itself through
/// `obsv::Stopwatch`, never a raw `Instant::now()`. `serve` is here
/// because it is an operational binary (the trace-generation server), not
/// a numeric library; its own discipline is R15 (`unbounded-blocking`),
/// which is path-scoped to `crates/serve/` and applies regardless of
/// class.
const TOOL_CRATES: &[&str] = &["cli", "bench", "lint", "serve"];

/// How a file participates in the rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// Library code in the named crate; all rules apply.
    Lib {
        /// Crate directory name (`nn`, `glm`, ...; `suite` for the umbrella
        /// `src/`).
        krate: String,
    },
    /// Binary/tool code; only `float-eq`, `forbid-unsafe`, and
    /// `ambient-time` apply.
    Bin {
        /// Crate directory name.
        krate: String,
    },
    /// Integration tests, benches, and examples; no rules apply.
    TestOrExample,
}

/// One file's tokens plus everything the rules need to scope themselves.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Classification (see [`FileClass`]).
    pub class: FileClass,
    /// True for `src/lib.rs` / `src/main.rs` crate roots (R5 scope).
    pub is_crate_root: bool,
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Parallel to `toks`: true when the token sits inside a
    /// `#[cfg(test)]`-gated region or the whole file is test code.
    pub in_test: Vec<bool>,
    /// Brace-matched item/block tree over `toks` (see [`crate::tree`]).
    pub tree: ItemTree,
    /// Suppression comments.
    pub allows: Vec<Allow>,
}

/// A violation bound to the file it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileViolation {
    /// Workspace-relative path.
    pub path: String,
    /// The violation itself.
    pub violation: Violation,
}

/// Result of scanning a tree.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Files scanned.
    pub files: usize,
    /// Violations that survived suppression, in path/line order.
    pub violations: Vec<FileViolation>,
    /// Violations silenced by a `lint:allow` with a reason.
    pub suppressed: usize,
}

/// Classifies a workspace-relative path. Returns `None` for files the
/// scanner should skip entirely.
pub fn classify(rel: &str) -> Option<FileClass> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] => {
            if rest.first() == Some(&"bin") || TOOL_CRATES.contains(krate) {
                Some(FileClass::Bin {
                    krate: (*krate).to_string(),
                })
            } else {
                Some(FileClass::Lib {
                    krate: (*krate).to_string(),
                })
            }
        }
        ["crates", _, "tests" | "benches" | "examples", ..] => Some(FileClass::TestOrExample),
        ["src", ..] => Some(FileClass::Lib {
            krate: "suite".to_string(),
        }),
        ["tests" | "examples", ..] => Some(FileClass::TestOrExample),
        _ => None,
    }
}

/// True when the path is a crate root that R5 requires to carry
/// `#![forbid(unsafe_code)]`: `lib.rs` or `main.rs` directly under a `src/`
/// directory (not `src/bin/*` helper binaries).
pub fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    matches!(
        parts.as_slice(),
        ["crates", _, "src", "lib.rs" | "main.rs"] | ["src", "lib.rs" | "main.rs"]
    )
}

fn punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

/// Marks tokens inside `#[cfg(test)]`- or `#[test]`-gated items. The scan
/// looks for a `#[...]` attribute whose bracket group contains the idents
/// `cfg` + `test` or a bare `test`, then marks everything up to the end of
/// the following item: the matching `}` of the first `{` opened at
/// bracket/paren depth zero, or a terminating `;` before any brace.
pub fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // Outer attribute start: `#` `[` (not `#![...]` inner attributes).
        if !(punct(&toks[i], "#")
            && matches!(toks.get(i + 1), Some(n) if punct(n, "[")))
        {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket group.
        let mut j = i + 2;
        let mut depth = 1i32;
        // `#[cfg(test)]` and bare `#[test]` both gate; both contain the
        // ident `test` somewhere in the bracket group. `#[cfg(not(test))]`
        // would too — acceptable over-marking, since rules only *skip*
        // gated regions.
        let mut gated = false;
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if punct(t, "[") {
                depth += 1;
            } else if punct(t, "]") {
                depth -= 1;
            } else if ident(t, "test") {
                gated = true;
            }
            j += 1;
        }
        if !gated {
            i = j;
            continue;
        }
        // Mark from the attribute through the end of the gated item. Other
        // attributes between this one and the item are covered by the same
        // sweep.
        let start = i;
        let mut k = j;
        let mut brace_depth = 0i32;
        let mut entered = false;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        brace_depth += 1;
                        entered = true;
                    }
                    "}" => {
                        brace_depth -= 1;
                        if entered && brace_depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    ";" if !entered && brace_depth == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take(k).skip(start) {
            *flag = true;
        }
        i = k;
    }
    in_test
}

/// Lexes and contextualizes one file's source.
pub fn build_ctx(path: String, class: FileClass, src: &str) -> FileCtx {
    let lexer::LexOutput { toks, allows, .. } = lexer::lex(src);
    let all_test = matches!(class, FileClass::TestOrExample);
    let in_test = if all_test {
        vec![true; toks.len()]
    } else {
        test_regions(&toks)
    };
    let is_root = is_crate_root(&path);
    let tree = tree::build(&toks, &in_test);
    FileCtx {
        path,
        class,
        is_crate_root: is_root,
        toks,
        in_test,
        tree,
        allows,
    }
}

/// Applies `lint:allow` suppressions to raw violations with the default
/// (per-file scan) checked-rule set. See [`apply_allows_checked`].
pub fn apply_allows(ctx: &FileCtx, raw: Vec<Violation>) -> (Vec<Violation>, usize) {
    apply_allows_checked(ctx, raw, &checked_rules(false))
}

/// Applies `lint:allow` suppressions to raw violations. A suppression
/// covers its own line and the following line for the rules it names; a
/// suppression without a reason does not suppress anything and instead
/// yields an `allow-missing-reason` violation. A suppression that names no
/// violation at all — nothing fires on its two lines for the rules it
/// lists — has rotted and yields a `stale-allow` violation, so the
/// allow-list stays an accurate invariant log as the code moves under it.
///
/// `checked` is the set of rule ids the current mode actually ran:
/// staleness is only decided for allows whose named rules were all
/// checkable here. A `lint:allow(effect-contract)` must not read as stale
/// in a plain per-file scan (only `cloudgen-lint effects` produces those
/// violations) — but an allow naming a rule id that does not exist at all
/// is always stale, so typos cannot hide.
pub fn apply_allows_checked(
    ctx: &FileCtx,
    raw: Vec<Violation>,
    checked: &[&str],
) -> (Vec<Violation>, usize) {
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    let mut used = vec![false; ctx.allows.len()];
    for v in raw {
        let mut covered = false;
        for (a, hit) in ctx.allows.iter().zip(used.iter_mut()) {
            if !a.reason.is_empty()
                && (a.line == v.line || a.line + 1 == v.line)
                && a.rules.iter().any(|r| r == v.rule)
            {
                covered = true;
                *hit = true;
            }
        }
        if covered {
            suppressed += 1;
        } else {
            out.push(v);
        }
    }
    for (a, hit) in ctx.allows.iter().zip(used.iter()) {
        // Deferred: names a real rule this mode did not check, so its
        // liveness cannot be judged here.
        let deferred = a.rules.iter().any(|r| {
            RULES.iter().any(|(id, _)| id == r) && !checked.iter().any(|c| c == r)
        });
        if a.reason.is_empty() {
            out.push(Violation {
                rule: "allow-missing-reason",
                line: a.line,
                col: 1,
                message: "lint:allow must carry a reason: `// lint:allow(rule): why this is sound`"
                    .to_string(),
            });
        } else if !*hit && !deferred {
            out.push(Violation {
                rule: "stale-allow",
                line: a.line,
                col: 1,
                message: format!(
                    "lint:allow({}) suppresses nothing; the code it covered has moved or been \
                     fixed — delete the annotation or re-anchor it to the violating line",
                    a.rules.join(", ")
                ),
            });
        }
    }
    out.sort_by_key(|v| (v.line, v.col));
    (out, suppressed)
}

/// Scans one file's source text (exposed for tests).
pub fn scan_source(path: String, class: FileClass, src: &str) -> (Vec<Violation>, usize) {
    let ctx = build_ctx(path, class, src);
    let raw = rules::run_all(&ctx);
    apply_allows(&ctx, raw)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "results" | "node_modules") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Loads and contextualizes every classified `.rs` file under `root`, in
/// sorted path order. Shared by the per-file scan and the interprocedural
/// analysis so both see the identical file set.
pub fn collect_ctxs(root: &Path) -> Vec<FileCtx> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    let mut ctxs = Vec::new();
    for file in files {
        let rel: String = match file.strip_prefix(root) {
            Ok(p) => p
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/"),
            Err(_) => continue,
        };
        let Some(class) = classify(&rel) else {
            continue;
        };
        let Ok(src) = fs::read_to_string(&file) else {
            continue;
        };
        ctxs.push(build_ctx(rel, class, &src));
    }
    ctxs
}

/// Runs every per-file rule over `ctxs`, merges in `extra` pre-computed raw
/// violations per file (the interprocedural `effect-contract` findings),
/// and applies suppressions against the given checked-rule set.
fn build_report(ctxs: &[FileCtx], extra: Vec<Vec<Violation>>, checked: &[&str]) -> ScanReport {
    build_report_dropping(ctxs, extra, checked, &BTreeSet::new())
}

/// [`build_report`], minus raw `hot-loop-alloc` findings at the given
/// `(file index, line)` sites. The memory mode passes its witness sinks
/// here so an interprocedurally confirmed allocation site is reported once
/// — as a `memory-contract` violation with the full call-path witness —
/// instead of twice (R13 still reports it in the plain scan). Discharged
/// sites (live reasoned R13 allows) never become witness sinks, so their
/// allows stay matched and non-stale.
fn build_report_dropping(
    ctxs: &[FileCtx],
    mut extra: Vec<Vec<Violation>>,
    checked: &[&str],
    drop_hot_loop: &BTreeSet<(usize, u32)>,
) -> ScanReport {
    let mut report = ScanReport {
        files: ctxs.len(),
        ..Default::default()
    };
    for (i, ctx) in ctxs.iter().enumerate() {
        let mut raw = rules::run_all(ctx);
        raw.retain(|v| !(v.rule == "hot-loop-alloc" && drop_hot_loop.contains(&(i, v.line))));
        raw.append(&mut extra[i]);
        let (violations, suppressed) = apply_allows_checked(ctx, raw, checked);
        report.suppressed += suppressed;
        report
            .violations
            .extend(violations.into_iter().map(|violation| FileViolation {
                path: ctx.path.clone(),
                violation,
            }));
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.violation.line, a.violation.col)
            .cmp(&(&b.path, b.violation.line, b.violation.col)));
    report
}

/// Walks the workspace rooted at `root` and runs every rule on every
/// classified `.rs` file.
pub fn scan_workspace(root: &Path) -> ScanReport {
    let ctxs = collect_ctxs(root);
    let extra = vec![Vec::new(); ctxs.len()];
    build_report(&ctxs, extra, &checked_rules(false))
}

/// Per-contract enforcement statistics for the effects report.
#[derive(Debug, Clone)]
pub struct ContractStat {
    /// Contract name from `lint-contracts.toml`.
    pub name: String,
    /// Fns in scope after exceptions.
    pub checked: usize,
    /// Unpaid violations — in-scope fns reaching a forbidden effect with no
    /// reasoned `lint:allow(effect-contract)` on the definition.
    pub violations: usize,
}

/// One public entry point that can transitively reach a panic site.
#[derive(Debug, Clone)]
pub struct PanicEntry {
    /// Entry-point fn path (`core::generate::Generator::run`).
    pub entry: String,
    /// File declaring the entry point.
    pub file: String,
    /// 1-based line of the entry point's `fn`.
    pub line: u32,
    /// True when every reachable panic site is discharged by an annotated
    /// invariant (reasoned `lint:allow(no-panic)`); false means a raw
    /// panic is reachable.
    pub annotated: bool,
    /// Shortest witness call path, entry first, panicking fn last.
    pub call_path: Vec<String>,
    /// File of the witness panic site.
    pub site_file: String,
    /// 1-based line of the witness panic site.
    pub site_line: u32,
    /// The panicking call itself (`.unwrap()`, `panic!`, ...).
    pub site_what: String,
}

/// Result of the interprocedural effects analysis.
#[derive(Debug)]
pub struct EffectsOutcome {
    /// Per-file violations — every per-file rule *plus* `effect-contract` —
    /// with suppression applied against the full rule vocabulary.
    pub report: ScanReport,
    /// Indexed workspace fns.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Strongly connected components in the call graph.
    pub sccs: usize,
    /// Largest SCC size (fixpoint sanity: recursion clusters stay small).
    pub largest_scc: usize,
    /// Per-contract stats, contract-file order.
    pub contracts: Vec<ContractStat>,
    /// Panic-reachability entries for public library fns, path order.
    pub reachability: Vec<PanicEntry>,
}

/// Runs the full interprocedural pipeline on the workspace rooted at
/// `root`: call graph → intrinsic effects → barrier masks → SCC fixpoint →
/// contract enforcement → panic-reachability report.
pub fn analyze_workspace(root: &Path, contracts: &ContractsFile) -> EffectsOutcome {
    let ctxs = collect_ctxs(root);
    analyze_ctxs(&ctxs, contracts)
}

/// The pipeline on pre-built file contexts (exposed for tests).
pub fn analyze_ctxs(ctxs: &[FileCtx], contracts: &ContractsFile) -> EffectsOutcome {
    let g: CallGraph = build_graph(ctxs);
    let intr: Vec<Intrinsics> = effects::intrinsic_effects(&g, ctxs);
    let masks: Vec<EffectSet> = effects::barrier_masks(&g, contracts);
    let (trans, sccs, largest_scc) = effects::propagate(&g, &intr, &masks);

    let mut extra: Vec<Vec<Violation>> = vec![Vec::new(); ctxs.len()];
    let mut stats = Vec::new();
    for c in &contracts.contracts {
        let mut checked = 0usize;
        let mut unpaid = 0usize;
        for (id, f) in g.fns.iter().enumerate() {
            if !c.scope.iter().any(|p| scope_matches(p, &f.path))
                || c.except.iter().any(|p| scope_matches(p, &f.path))
            {
                continue;
            }
            checked += 1;
            let bad = trans[id] & c.forbid;
            if bad == 0 {
                continue;
            }
            // One witness per offending fn, for the lowest offending bit.
            let bit = bad & bad.wrapping_neg();
            let via = effects::witness_path(&g, &intr, &masks, id as u32, bit)
                .unwrap_or_else(|| vec![id as u32]);
            let sink_id = *via.last().expect("witness path is non-empty") as usize;
            let hops: Vec<&str> = via
                .iter()
                .map(|&i| g.fns[i as usize].name.as_str())
                .collect();
            let sink_line = intr[sink_id].first_line[bit.trailing_zeros() as usize];
            let message = format!(
                "contract `{}`: `{}` transitively reaches {} via {} ({} at {}:{})",
                c.name,
                f.path,
                effect_names(bad),
                hops.join(" → "),
                effect_names(bit),
                g.fns[sink_id].file,
                sink_line,
            );
            if !effects::allowed(&ctxs[f.file_idx], "effect-contract", f.line) {
                unpaid += 1;
            }
            extra[f.file_idx].push(Violation {
                rule: "effect-contract",
                line: f.line,
                col: 1,
                message,
            });
        }
        stats.push(ContractStat {
            name: c.name.clone(),
            checked,
            violations: unpaid,
        });
    }

    // Panic-reachability: every public library fn that can transitively
    // reach a panic site, raw or discharged.
    let mut reachability = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        if !f.is_pub || !f.is_lib {
            continue;
        }
        let t = trans[id];
        if t & (PANICS | PANICS_ANNOTATED) == 0 {
            continue;
        }
        let annotated = t & PANICS == 0;
        let bit = if annotated { PANICS_ANNOTATED } else { PANICS };
        let Some(via) = effects::witness_path(&g, &intr, &masks, id as u32, bit) else {
            continue;
        };
        let sink_id = *via.last().expect("witness path is non-empty") as usize;
        let site = intr[sink_id]
            .panic_sites
            .iter()
            .find(|s| s.discharged == annotated)
            .or_else(|| intr[sink_id].panic_sites.first());
        let (site_line, site_what) = site
            .map(|s| (s.line, s.what.clone()))
            .unwrap_or((g.fns[sink_id].line, "?".to_string()));
        reachability.push(PanicEntry {
            entry: f.path.clone(),
            file: f.file.clone(),
            line: f.line,
            annotated,
            call_path: via
                .iter()
                .map(|&i| g.fns[i as usize].path.clone())
                .collect(),
            site_file: g.fns[sink_id].file.clone(),
            site_line,
            site_what,
        });
    }
    reachability.sort_by(|a, b| a.entry.cmp(&b.entry));

    let report = build_report(ctxs, extra, &checked_rules(true));
    EffectsOutcome {
        report,
        functions: g.fns.len(),
        edges: g.edge_count(),
        sccs,
        largest_scc,
        contracts: stats,
        reachability,
    }
}

/// One public library fn whose transitive allocation growth reaches
/// `loop-linear` or worse — the memory report's analogue of [`PanicEntry`].
#[derive(Debug, Clone)]
pub struct MemoryEntry {
    /// Entry-point fn path (`trace::io::read_csv`).
    pub entry: String,
    /// File declaring the entry point.
    pub file: String,
    /// 1-based line of the entry point's `fn`.
    pub line: u32,
    /// Transitive growth-class name (`loop-linear` / `unbounded-escape`).
    pub class: &'static str,
    /// Shortest witness call path, entry first, allocating fn last.
    pub call_path: Vec<String>,
    /// File of the witness allocation site.
    pub site_file: String,
    /// 1-based line of the witness allocation site.
    pub site_line: u32,
    /// The allocating construct itself (`.push()`, `read_to_string()`, ...).
    pub site_what: String,
    /// True when the witness site sits inside a loop body.
    pub site_in_loop: bool,
    /// True when the grown value escapes the sink fn.
    pub site_escapes: bool,
}

/// Result of the interprocedural allocation-flow analysis.
#[derive(Debug)]
pub struct MemoryOutcome {
    /// Per-file violations — every per-file rule *plus* `memory-contract`,
    /// minus R13 findings subsumed by a memory witness — with suppression
    /// applied against the memory-mode rule vocabulary.
    pub report: ScanReport,
    /// Indexed workspace fns.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Strongly connected components in the call graph.
    pub sccs: usize,
    /// Largest SCC size.
    pub largest_scc: usize,
    /// Per-memory-contract stats, contract-file order.
    pub contracts: Vec<ContractStat>,
    /// Growth entries for public library fns reaching `loop-linear` or
    /// worse, path order.
    pub growth: Vec<MemoryEntry>,
}

/// Runs the full allocation-flow pipeline on the workspace rooted at
/// `root`: call graph → allocation summaries → absorber masks → SCC
/// fixpoint → memory-contract enforcement → growth report.
pub fn analyze_memory(root: &Path, contracts: &ContractsFile) -> MemoryOutcome {
    let ctxs = collect_ctxs(root);
    analyze_memory_ctxs(&ctxs, contracts)
}

/// Renders the `(in loop, escapes)` qualifier of a witness site.
fn site_quals(in_loop: bool, escapes: bool) -> String {
    let mut quals = Vec::new();
    if in_loop {
        quals.push("in loop");
    }
    if escapes {
        quals.push("escapes");
    }
    if quals.is_empty() {
        String::new()
    } else {
        format!(" {}", quals.join(", "))
    }
}

/// The allocation-flow pipeline on pre-built file contexts (exposed for
/// tests).
pub fn analyze_memory_ctxs(ctxs: &[FileCtx], contracts: &ContractsFile) -> MemoryOutcome {
    let g: CallGraph = build_graph(ctxs);
    let intr = alloc_flow::intrinsic_allocs(&g, ctxs);
    let absorb = alloc_flow::absorber_masks(&g, contracts);
    let (trans, sccs, largest_scc) = alloc_flow::propagate_growth(&g, &intr, &absorb);

    let mut extra: Vec<Vec<Violation>> = vec![Vec::new(); ctxs.len()];
    let mut stats = Vec::new();
    // Witness sinks: allocation sites an emitted memory-contract witness
    // ends at. Their raw R13 findings are dropped (reported once, with the
    // richer interprocedural diagnostic).
    let mut witness_sites: BTreeSet<(usize, u32)> = BTreeSet::new();
    for c in &contracts.memory {
        let mut checked = 0usize;
        let mut unpaid = 0usize;
        for (id, f) in g.fns.iter().enumerate() {
            if !c.scope.iter().any(|p| scope_matches(p, &f.path))
                || c.except.iter().any(|p| scope_matches(p, &f.path))
            {
                continue;
            }
            checked += 1;
            if trans[id] <= c.max {
                continue;
            }
            // The violating class is achieved at some reachable fn's own
            // body; BFS finds the shortest path to it.
            let via = alloc_flow::witness_growth(&g, &intr, &absorb, id as u32, trans[id])
                .unwrap_or_else(|| vec![id as u32]);
            let sink_id = *via.last().expect("witness path is non-empty") as usize;
            let hops: Vec<&str> = via
                .iter()
                .map(|&i| g.fns[i as usize].name.as_str())
                .collect();
            let site = intr[sink_id].worst_site();
            let (site_line, site_what, in_loop, escapes) = site
                .map(|s| (s.line, s.what.clone(), s.in_loop, s.escapes))
                .unwrap_or((g.fns[sink_id].line, "?".to_string(), false, false));
            witness_sites.insert((g.fns[sink_id].file_idx, site_line));
            let message = format!(
                "memory contract `{}`: `{}` has transitive growth `{}` (max `{}`) via {} \
                 (`{}`{} at {}:{})",
                c.name,
                f.path,
                growth_name(trans[id]),
                growth_name(c.max),
                hops.join(" → "),
                site_what,
                site_quals(in_loop, escapes),
                g.fns[sink_id].file,
                site_line,
            );
            if !effects::allowed(&ctxs[f.file_idx], "memory-contract", f.line) {
                unpaid += 1;
            }
            extra[f.file_idx].push(Violation {
                rule: "memory-contract",
                line: f.line,
                col: 1,
                message,
            });
        }
        stats.push(ContractStat {
            name: c.name.clone(),
            checked,
            violations: unpaid,
        });
    }

    // Growth report: every public library fn whose transitive class is
    // loop-linear or worse, with a witness path to the allocating site —
    // the audit surface for ROADMAP item 2's streaming refactor.
    let mut growth = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        if !f.is_pub || !f.is_lib || trans[id] < Growth::LoopLinear {
            continue;
        }
        let Some(via) = alloc_flow::witness_growth(&g, &intr, &absorb, id as u32, trans[id])
        else {
            continue;
        };
        let sink_id = *via.last().expect("witness path is non-empty") as usize;
        let site = intr[sink_id].worst_site();
        let (site_line, site_what, in_loop, escapes) = site
            .map(|s| (s.line, s.what.clone(), s.in_loop, s.escapes))
            .unwrap_or((g.fns[sink_id].line, "?".to_string(), false, false));
        growth.push(MemoryEntry {
            entry: f.path.clone(),
            file: f.file.clone(),
            line: f.line,
            class: growth_name(trans[id]),
            call_path: via
                .iter()
                .map(|&i| g.fns[i as usize].path.clone())
                .collect(),
            site_file: g.fns[sink_id].file.clone(),
            site_line,
            site_what,
            site_in_loop: in_loop,
            site_escapes: escapes,
        });
    }
    growth.sort_by(|a, b| a.entry.cmp(&b.entry));

    let report = build_report_dropping(ctxs, extra, &checked_rules_for(false, true), &witness_sites);
    MemoryOutcome {
        report,
        functions: g.fns.len(),
        edges: g.edge_count(),
        sccs,
        largest_scc,
        contracts: stats,
        growth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> (Vec<Violation>, usize) {
        scan_source(
            "crates/nn/src/x.rs".to_string(),
            FileClass::Lib {
                krate: "nn".to_string(),
            },
            src,
        )
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/nn/src/lstm.rs"),
            Some(FileClass::Lib {
                krate: "nn".into()
            })
        );
        assert_eq!(
            classify("crates/cli/src/main.rs"),
            Some(FileClass::Bin {
                krate: "cli".into()
            })
        );
        assert_eq!(
            classify("crates/glm/src/bin/tool.rs"),
            Some(FileClass::Bin {
                krate: "glm".into()
            })
        );
        assert_eq!(
            classify("crates/nn/tests/t.rs"),
            Some(FileClass::TestOrExample)
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(FileClass::Lib {
                krate: "suite".into()
            })
        );
        assert_eq!(classify("examples/e.rs"), Some(FileClass::TestOrExample));
        assert_eq!(classify("build.rs"), None);
        assert_eq!(classify("crates/nn/Cargo.toml"), None);
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("crates/nn/src/lib.rs"));
        assert!(is_crate_root("crates/cli/src/main.rs"));
        assert!(is_crate_root("src/lib.rs"));
        assert!(!is_crate_root("crates/nn/src/lstm.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/tool.rs"));
    }

    #[test]
    fn unwrap_flagged_in_lib() {
        let (v, _) = lib("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        assert!(v.iter().any(|v| v.rule == "no-panic"), "{v:?}");
    }

    #[test]
    fn unwrap_ok_in_cfg_test_mod() {
        let src = r#"
            fn f() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        let (v, _) = lib(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_after_test_mod_still_flagged() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
            fn g(x: Option<u8>) -> u8 { x.unwrap() }
        "#;
        let (v, _) = lib(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-panic");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic): invariant, len checked above\n    x.unwrap()\n}\n";
        let (v, suppressed) = lib(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn allow_without_reason_is_violation() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic)\n    x.unwrap()\n}\n";
        let (v, suppressed) = lib(src);
        assert_eq!(suppressed, 0);
        assert!(v.iter().any(|v| v.rule == "allow-missing-reason"), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "no-panic"), "{v:?}");
    }

    #[test]
    fn allow_wrong_rule_does_not_suppress() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(float-eq): not the right rule\n    x.unwrap()\n}\n";
        let (v, _) = lib(src);
        assert!(v.iter().any(|v| v.rule == "no-panic"), "{v:?}");
    }

    #[test]
    fn ambient_rng_in_lib() {
        let (v, _) = lib("fn f() { let mut rng = thread_rng(); }");
        assert!(v.iter().any(|v| v.rule == "ambient-rng"), "{v:?}");
    }

    #[test]
    fn ambient_rng_not_flagged_in_bin() {
        let (v, _) = scan_source(
            "crates/cli/src/main.rs".to_string(),
            FileClass::Bin {
                krate: "cli".to_string(),
            },
            "#![forbid(unsafe_code)]\nfn main() { let mut rng = thread_rng(); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ambient_time_flagged_in_lib_and_bin() {
        let (v, _) = lib("fn f() { let t0 = std::time::Instant::now(); }");
        assert!(v.iter().any(|v| v.rule == "ambient-time"), "{v:?}");
        // Tool crates are NOT exempt: the clock is obsv's alone.
        let (v, _) = scan_source(
            "crates/cli/src/main.rs".to_string(),
            FileClass::Bin {
                krate: "cli".to_string(),
            },
            "#![forbid(unsafe_code)]\nfn main() { let t = SystemTime::now(); }",
        );
        assert!(v.iter().any(|v| v.rule == "ambient-time"), "{v:?}");
    }

    #[test]
    fn ambient_time_exempt_in_obsv_and_tests() {
        // obsv is the sanctioned home for wall-clock access.
        let (v, _) = scan_source(
            "crates/obsv/src/metrics.rs".to_string(),
            FileClass::Lib {
                krate: "obsv".to_string(),
            },
            "fn f() { let t0 = std::time::Instant::now(); }",
        );
        assert!(v.is_empty(), "{v:?}");
        // #[cfg(test)] regions may time things directly.
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let t0 = std::time::Instant::now(); }\n}\n";
        let (v, _) = lib(src);
        assert!(v.is_empty(), "{v:?}");
        // Integration tests and benches are out of scope entirely.
        let (v, _) = scan_source(
            "crates/linalg/tests/t.rs".to_string(),
            FileClass::TestOrExample,
            "fn t() { let t0 = std::time::Instant::now(); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ambient_time_instant_without_now_not_flagged() {
        // Only the clock *read* is ambient; passing an Instant around or
        // naming the type is fine (obsv's Stopwatch hands them out).
        let (v, _) = lib("fn f(t: std::time::Instant) -> std::time::Instant { t }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_eq_flagged() {
        let (v, _) = lib("fn f(x: f64) -> bool { x == 0.3 }");
        assert!(v.iter().any(|v| v.rule == "float-eq"), "{v:?}");
    }

    #[test]
    fn int_eq_not_flagged() {
        let (v, _) = lib("fn f(x: u8) -> bool { x == 3 }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lossy_cast_flagged() {
        let (v, _) = lib("fn f(x: f64) -> usize { x.floor() as usize }");
        assert!(v.iter().any(|v| v.rule == "lossy-cast"), "{v:?}");
    }

    #[test]
    fn int_as_cast_not_flagged() {
        let (v, _) = lib("fn f(x: u8) -> usize { x as usize }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let (v, _) = scan_source(
            "crates/nn/src/lib.rs".to_string(),
            FileClass::Lib {
                krate: "nn".to_string(),
            },
            "pub mod lstm;\n",
        );
        assert!(v.iter().any(|v| v.rule == "forbid-unsafe"), "{v:?}");
        let (v, _) = scan_source(
            "crates/nn/src/lib.rs".to_string(),
            FileClass::Lib {
                krate: "nn".to_string(),
            },
            "#![forbid(unsafe_code)]\npub mod lstm;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fallible_entry_requires_result() {
        let (v, _) = lib("pub fn fit(x: &[f64]) -> Model { Model }");
        assert!(v.iter().any(|v| v.rule == "fallible-entry"), "{v:?}");
        let (v, _) = lib("pub fn fit(x: &[f64]) -> Result<Model, Error> { Ok(Model) }");
        assert!(v.is_empty(), "{v:?}");
        // pub(crate) helpers are exempt.
        let (v, _) = lib("pub(crate) fn fit_inner(x: &[f64]) -> Model { Model }");
        assert!(v.is_empty(), "{v:?}");
        // Non-entry crates are exempt.
        let (v, _) = scan_source(
            "crates/trace/src/x.rs".to_string(),
            FileClass::Lib {
                krate: "trace".to_string(),
            },
            "pub fn fit(x: &[f64]) -> Model { Model }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fallible_entry_covers_checkpoint_resume_in_resilience() {
        let src = |body: &str| {
            scan_source(
                "crates/resilience/src/x.rs".to_string(),
                FileClass::Lib {
                    krate: "resilience".to_string(),
                },
                body,
            )
        };
        let (v, _) = src("pub fn checkpoint_now(s: &State) -> PathBuf { todo() }");
        assert!(v.iter().any(|v| v.rule == "fallible-entry"), "{v:?}");
        let (v, _) = src("pub fn resume_from(dir: &Path) -> State { todo() }");
        assert!(v.iter().any(|v| v.rule == "fallible-entry"), "{v:?}");
        let (v, _) = src("pub fn checkpoint_now(s: &State) -> Result<PathBuf, E> { todo() }");
        assert!(v.is_empty(), "{v:?}");
        // `resumed`/`checkpoints` (plain words sharing letters, not the
        // `prefix_` shape) are not entry points.
        let (v, _) = src("pub fn resumed_epochs(s: &State) -> usize { 0 }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn stale_allow_flagged_when_nothing_fires() {
        let src = "fn f(x: Option<u8>) -> Option<u8> {\n    // lint:allow(no-panic): was an unwrap, since refactored away\n    x\n}\n";
        let (v, suppressed) = lib(src);
        assert_eq!(suppressed, 0);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "stale-allow");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn live_allow_is_not_stale() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic): invariant, len checked above\n    x.unwrap()\n}\n";
        let (v, suppressed) = lib(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn unreachable_flagged_as_no_panic() {
        let (v, _) = lib("fn f(x: u8) -> u8 { match x { 0 => 1, _ => unreachable!() } }");
        assert!(v.iter().any(|v| v.rule == "no-panic"), "{v:?}");
    }

    #[test]
    fn unordered_iter_in_deterministic_crate() {
        let (v, _) = lib("use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }");
        assert!(v.iter().all(|v| v.rule == "unordered-iter"), "{v:?}");
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn unordered_iter_ok_in_test_mod_and_other_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m = std::collections::HashMap::<u8, u8>::new(); }\n}\n";
        let (v, _) = lib(src);
        assert!(v.is_empty(), "{v:?}");
        // `trace` is not a deterministic-output crate.
        let (v, _) = scan_source(
            "crates/trace/src/x.rs".to_string(),
            FileClass::Lib {
                krate: "trace".to_string(),
            },
            "use std::collections::HashMap;\nfn f() -> HashMap<u8, u8> { HashMap::new() }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_spawn_flagged_including_aliased_import() {
        let (v, _) = lib("fn f() { std::thread::spawn(|| {}); }");
        assert!(v.iter().any(|v| v.rule == "raw-spawn"), "{v:?}");
        let (v, _) = lib("use std::thread::spawn as go;\nfn f() { go(|| {}); }");
        assert!(v.iter().any(|v| v.rule == "raw-spawn"), "{v:?}");
    }

    #[test]
    fn raw_spawn_exempt_in_pool() {
        let (v, _) = scan_source(
            "crates/linalg/src/pool.rs".to_string(),
            FileClass::Lib {
                krate: "linalg".to_string(),
            },
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unordered_reduce_flags_indexed_accum_in_parallel_fn() {
        let src = r#"
            fn run(pool: &WorkerPool, out: &mut [f64]) {
                let results = pool.map(&[1], |_, _| 1.0);
                for (i, r) in results.into_iter().enumerate() {
                    out[i] += r;
                }
            }
        "#;
        let (v, _) = lib(src);
        assert!(v.iter().any(|v| v.rule == "unordered-reduce"), "{v:?}");
    }

    #[test]
    fn unordered_reduce_ignores_sequential_fn_and_bare_local() {
        // No WorkerPool/spawn in the body: indexed += and .sum() are fine.
        let src = "fn f(xs: &[f64], out: &mut [f64]) { out[0] += xs.iter().sum::<f64>(); }";
        let (v, _) = lib(src);
        assert!(v.is_empty(), "{v:?}");
        // Bare-local += in a parallel fn is fine (pool results are ordered).
        let src = r#"
            fn run(pool: &WorkerPool) -> f64 {
                let results = pool.map(&[1], |_, _| 1.0);
                let mut acc = 0.0;
                for r in results { acc += r; }
                acc
            }
        "#;
        let (v, _) = lib(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unordered_reduce_exempts_grad_accum_and_tree_reduce() {
        let src = r#"
            impl GradAccum {
                fn merge_from(&mut self, other: &GradAccum, pool: &WorkerPool) {
                    self.count += other.count;
                }
            }
            fn tree_reduce(mut accs: Vec<f64>, pool: &WorkerPool) -> f64 {
                accs.iter().sum()
            }
        "#;
        let (v, _) = scan_source(
            "crates/nn/src/accum.rs".to_string(),
            FileClass::Lib {
                krate: "nn".to_string(),
            },
            src,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn shared_mut_numeric_flagged_outside_pool() {
        let (v, _) = lib("use std::sync::Mutex;\nfn f() { let m = Mutex::new(0.0); }");
        assert!(v.iter().any(|v| v.rule == "shared-mut-numeric"), "{v:?}");
        let (v, _) = lib("use std::sync::atomic::AtomicU64;\nfn f() { let a = AtomicU64::new(0); }");
        assert!(v.iter().any(|v| v.rule == "shared-mut-numeric"), "{v:?}");
        let (v, _) = scan_source(
            "crates/linalg/src/pool.rs".to_string(),
            FileClass::Lib {
                krate: "linalg".to_string(),
            },
            "use std::sync::atomic::AtomicUsize;\nfn f() { let c = AtomicUsize::new(0); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ambient_parallelism_flagged_in_lib_only() {
        let (v, _) = lib("fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }");
        assert!(v.iter().any(|v| v.rule == "ambient-parallelism"), "{v:?}");
        let (v, _) = scan_source(
            "crates/bench/src/x.rs".to_string(),
            FileClass::Bin {
                krate: "bench".to_string(),
            },
            "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            // x.unwrap() in a comment
            /* thread_rng() in a block comment */
            fn f() -> &'static str { "x.unwrap(); thread_rng(); 1.0 == 2.0" }
        "#;
        let (v, _) = lib(src);
        assert!(v.is_empty(), "{v:?}");
    }
}
