//! A brace-matched item/block tree over the lexer's token stream.
//!
//! The token-stream rules of PR 2 could ask "did this identifier appear?"
//! but not "*where* did it appear?". The determinism and concurrency rules
//! need the *where*: `+=` is fine in a sequential helper but suspect inside
//! a function that fans work out to a `WorkerPool`; `spawn` is legal in
//! `linalg::pool` and nowhere else; a `HashMap` in a `#[cfg(test)]` module
//! is harmless. This module builds just enough structure to answer those
//! questions without parsing Rust properly:
//!
//! * **Item nodes** for `fn`, `impl`, `mod`, and `trait` items, each with
//!   its name, the token range of its body (found by brace matching), and
//!   its parent — so a rule can ask for the enclosing function or impl of
//!   any token.
//! * **Use-path table**: every `use` declaration is flattened into
//!   `(binding name, full path)` pairs (groups, globs, and `as` renames
//!   handled), so rules can see that `spawn` means `std::thread::spawn`
//!   even when the call site never mentions `thread`.
//! * **`#[cfg(test)]` flags** on nodes, taken from the same test-region
//!   mask the scanner uses, so tree queries and rule scoping agree.
//!
//! Approximations (deliberate, documented): the tree does not understand
//! macros (tokens inside `macro_rules!` bodies are treated as ordinary
//! code), generics are skipped only far enough to find an `impl`'s self
//! type, and closures/blocks are anonymous — they belong to the innermost
//! named item. Char literals containing braces, raw strings, and nested
//! block comments are already opaque at the lexer level, so brace matching
//! here is exact for well-formed source.

use crate::lexer::{Tok, TokKind};

/// What kind of item a [`Node`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A `fn` item (free, inherent, trait-provided, or trait-declared).
    Fn,
    /// An `impl` block; [`Node::name`] is the self type's head identifier.
    Impl,
    /// A `mod` with an inline body (`mod name;` declarations carry no
    /// tokens worth scoping).
    Mod,
    /// A `trait` definition.
    Trait,
}

/// One item in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Item kind.
    pub kind: NodeKind,
    /// Item name: function/mod/trait identifier, or the impl self type's
    /// head identifier (`PlacementCache` for `impl PlacementCache`, `Mat`
    /// for `impl Display for Mat`).
    pub name: String,
    /// Token index of the introducing keyword.
    pub start: usize,
    /// Token indices of the body's `{` and its matching `}`, when the item
    /// has a body (`None` for `fn f();` trait declarations).
    pub body: Option<(usize, usize)>,
    /// One past the item's last token.
    pub end: usize,
    /// Index of the enclosing node, if any.
    pub parent: Option<usize>,
    /// True when the item sits inside `#[cfg(test)]`-gated code.
    pub cfg_test: bool,
}

/// One name a `use` declaration brings into scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The binding name visible in this file (the leaf segment, the `as`
    /// alias, or `*` for a glob).
    pub name: String,
    /// The full `::`-joined path (`std::collections::HashMap`).
    pub path: String,
    /// 1-based source line of the leaf segment.
    pub line: u32,
    /// True when the `use` sits inside `#[cfg(test)]`-gated code.
    pub cfg_test: bool,
}

/// The item tree plus side tables for one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Items in source order (parents precede children).
    pub nodes: Vec<Node>,
    /// Flattened `use` table in source order.
    pub uses: Vec<UseImport>,
    /// Parallel to the token stream: the innermost enclosing node of each
    /// token, if any.
    owner: Vec<Option<usize>>,
}

impl ItemTree {
    /// The innermost node containing token `tok`, if any.
    pub fn owner_of(&self, tok: usize) -> Option<usize> {
        self.owner.get(tok).copied().flatten()
    }

    /// The nearest enclosing node of the given kind, walking parents.
    pub fn enclosing(&self, tok: usize, kind: NodeKind) -> Option<&Node> {
        let mut cur = self.owner_of(tok);
        while let Some(i) = cur {
            let node = &self.nodes[i];
            if node.kind == kind {
                return Some(node);
            }
            cur = node.parent;
        }
        None
    }

    /// The function containing token `tok`, if any.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&Node> {
        self.enclosing(tok, NodeKind::Fn)
    }

    /// The impl block containing token `tok`, if any.
    pub fn enclosing_impl(&self, tok: usize) -> Option<&Node> {
        self.enclosing(tok, NodeKind::Impl)
    }

    /// The full path a binding name resolves to via the file's `use`
    /// table, if it was imported.
    pub fn resolve_import(&self, name: &str) -> Option<&str> {
        self.uses
            .iter()
            .find(|u| u.name == name)
            .map(|u| u.path.as_str())
    }

    /// Token ranges `(start, end)` of every `Fn` node, innermost-last, for
    /// rules that iterate function bodies directly.
    pub fn fn_nodes(&self) -> impl Iterator<Item = (usize, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Fn)
    }
}

fn punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

/// True when a `use`/`impl` keyword at `i` sits at item position rather
/// than inside a type or expression: preceded by nothing, a block/item
/// boundary, or an attribute close.
fn at_item_position(toks: &[Tok], i: usize) -> bool {
    match i.checked_sub(1).map(|j| &toks[j]) {
        None => true,
        Some(p) => {
            (p.kind == TokKind::Punct && matches!(p.text.as_str(), "{" | "}" | ";" | "]"))
                || ident(p, "pub")
                || punct(p, ")") // `pub(crate) use ...`
        }
    }
}

/// Finds the self-type head identifier of an `impl` whose keyword is at
/// `i`: skip one balanced `<...>` generics group if present, then — if a
/// top-level `for` appears before the body — the first identifier after it,
/// else the first identifier after the generics.
fn impl_name(toks: &[Tok], i: usize) -> String {
    let mut j = i + 1;
    // Skip `<...>` generic parameters directly after `impl`.
    if toks.get(j).is_some_and(|t| punct(t, "<")) {
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if punct(t, "<") {
                depth += 1;
            } else if punct(t, ">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect the header up to the body; remember the first ident overall
    // and the first ident after a top-level `for`.
    let mut first = None;
    let mut after_for = None;
    let mut saw_for = false;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if punct(t, "{") || punct(t, ";") {
            break;
        }
        if punct(t, "<") {
            angle += 1;
        } else if punct(t, ">") {
            angle -= 1;
        } else if ident(t, "for") && angle == 0 {
            saw_for = true;
        } else if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "where") {
            if saw_for && after_for.is_none() && angle == 0 {
                after_for = Some(t.text.clone());
            }
            if first.is_none() {
                first = Some(t.text.clone());
            }
        }
        j += 1;
    }
    after_for.or(first).unwrap_or_default()
}

/// Flattens one `use` declaration starting at the `use` keyword. Returns
/// the imports and the index one past the terminating `;`.
fn parse_use(toks: &[Tok], i: usize, out: &mut Vec<UseImport>) -> usize {
    // Recursive-descent over `seg (:: seg)* (:: {group} | :: *)? (as x)?`.
    fn tree(toks: &[Tok], mut j: usize, prefix: &str, out: &mut Vec<UseImport>) -> usize {
        let mut segs: Vec<String> = Vec::new();
        let mut leaf_line = 0u32;
        loop {
            match toks.get(j) {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    leaf_line = t.line;
                    j += 1;
                    if toks.get(j).is_some_and(|t| punct(t, "::")) {
                        j += 1;
                        continue;
                    }
                    break;
                }
                Some(t) if punct(t, "{") => {
                    // Group: recurse per comma-separated subtree.
                    let base = join(prefix, &segs);
                    j += 1;
                    loop {
                        match toks.get(j) {
                            Some(t) if punct(t, "}") => {
                                j += 1;
                                break;
                            }
                            Some(t) if punct(t, ",") => {
                                j += 1;
                            }
                            Some(_) => {
                                j = tree(toks, j, &base, out);
                            }
                            None => break,
                        }
                    }
                    return j;
                }
                Some(t) if punct(t, "*") => {
                    out.push(UseImport {
                        name: "*".to_string(),
                        path: format!("{}::*", join(prefix, &segs)),
                        line: t.line,
                        cfg_test: false, // patched by `build`
                    });
                    return j + 1;
                }
                _ => break,
            }
        }
        if segs.is_empty() {
            return j;
        }
        // `self` as a leaf imports the parent segment's name — which may
        // live in the group prefix (`use crate::lexer::{self, Tok}`).
        let mut name = segs.last().cloned().unwrap_or_default();
        if name == "self" {
            segs.pop();
            name = match segs.last() {
                Some(s) => s.clone(),
                None => prefix.rsplit("::").next().unwrap_or("").to_string(),
            };
        }
        // `as` rename.
        if toks.get(j).is_some_and(|t| ident(t, "as")) {
            if let Some(alias) = toks.get(j + 1) {
                if alias.kind == TokKind::Ident {
                    name = alias.text.clone();
                    j += 2;
                }
            }
        }
        if !name.is_empty() {
            out.push(UseImport {
                name,
                path: join(prefix, &segs),
                line: leaf_line,
                cfg_test: false, // patched by `build`
            });
        }
        j
    }

    fn join(prefix: &str, segs: &[String]) -> String {
        let tail = segs.join("::");
        if prefix.is_empty() {
            tail
        } else if tail.is_empty() {
            prefix.to_string()
        } else {
            format!("{prefix}::{tail}")
        }
    }

    let mut j = tree(toks, i + 1, "", out);
    // Consume through the terminating `;`.
    while j < toks.len() {
        let done = punct(&toks[j], ";");
        j += 1;
        if done {
            break;
        }
    }
    j
}

/// An item header recognized but not yet attached to a body.
struct Pending {
    kind: NodeKind,
    name: String,
    start: usize,
}

/// Builds the item tree for one token stream. `in_test` is the scanner's
/// test-region mask (parallel to `toks`); nodes inherit their
/// [`Node::cfg_test`] flag from it so tree queries agree with rule scoping.
pub fn build(toks: &[Tok], in_test: &[bool]) -> ItemTree {
    let mut tree = ItemTree {
        nodes: Vec::new(),
        uses: Vec::new(),
        owner: vec![None; toks.len()],
    };
    // Stack of open braces: each entry is the node the brace opened, or
    // `None` for anonymous blocks (closures, match arms, struct literals).
    let mut stack: Vec<Option<usize>> = Vec::new();
    let mut current: Option<usize> = None;
    let mut pending: Option<Pending> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        tree.owner[i] = current;
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                // `fn` in type position (`fn(usize) -> f64`) is followed by
                // `(`; a definition is followed by its name.
                "fn" if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                    pending = Some(Pending {
                        kind: NodeKind::Fn,
                        name: toks[i + 1].text.clone(),
                        start: i,
                    });
                    tree.owner[i + 1] = current;
                    i += 2;
                    continue;
                }
                "mod" if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                    pending = Some(Pending {
                        kind: NodeKind::Mod,
                        name: toks[i + 1].text.clone(),
                        start: i,
                    });
                    tree.owner[i + 1] = current;
                    i += 2;
                    continue;
                }
                "trait" if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                    pending = Some(Pending {
                        kind: NodeKind::Trait,
                        name: toks[i + 1].text.clone(),
                        start: i,
                    });
                    tree.owner[i + 1] = current;
                    i += 2;
                    continue;
                }
                // `impl` in type position (`-> impl Iterator`, `&impl Rng`)
                // is preceded by an operator; an impl *block* sits at item
                // position.
                "impl" if at_item_position(toks, i) => {
                    pending = Some(Pending {
                        kind: NodeKind::Impl,
                        name: impl_name(toks, i),
                        start: i,
                    });
                    i += 1;
                    continue;
                }
                "use" if at_item_position(toks, i) => {
                    let before = tree.uses.len();
                    let next = parse_use(toks, i, &mut tree.uses);
                    let gated = in_test.get(i).copied().unwrap_or(false);
                    for u in &mut tree.uses[before..] {
                        u.cfg_test = gated;
                    }
                    for k in i..next.min(toks.len()) {
                        tree.owner[k] = current;
                    }
                    i = next;
                    continue;
                }
                _ => {}
            },
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    if let Some(p) = pending.take() {
                        let idx = tree.nodes.len();
                        tree.nodes.push(Node {
                            kind: p.kind,
                            name: p.name,
                            start: p.start,
                            body: Some((i, i)), // `}` patched on close
                            end: i,             // patched on close
                            parent: current,
                            cfg_test: in_test.get(p.start).copied().unwrap_or(false),
                        });
                        // Header tokens belong to the new node too.
                        for k in p.start..=i {
                            tree.owner[k] = Some(idx);
                        }
                        stack.push(Some(idx));
                        current = Some(idx);
                    } else {
                        stack.push(None);
                    }
                }
                "}" => {
                    if let Some(Some(idx)) = stack.pop() {
                        tree.owner[i] = Some(idx);
                        let node = &mut tree.nodes[idx];
                        if let Some((open, _)) = node.body {
                            node.body = Some((open, i));
                        }
                        node.end = i + 1;
                        current = node.parent;
                    }
                }
                ";" => {
                    // Bodyless item: `fn f();` in a trait, `mod name;`.
                    if let Some(p) = pending.take() {
                        let idx = tree.nodes.len();
                        tree.nodes.push(Node {
                            kind: p.kind,
                            name: p.name,
                            start: p.start,
                            body: None,
                            end: i + 1,
                            parent: current,
                            cfg_test: in_test.get(p.start).copied().unwrap_or(false),
                        });
                        for k in p.start..=i {
                            tree.owner[k] = Some(idx);
                        }
                        // A bodyless node encloses nothing further.
                        let _ = idx;
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::test_regions;

    fn tree_of(src: &str) -> (ItemTree, Vec<Tok>) {
        let out = lex(src);
        let mask = test_regions(&out.toks);
        let tree = build(&out.toks, &mask);
        (tree, out.toks)
    }

    fn node_names(tree: &ItemTree, kind: NodeKind) -> Vec<&str> {
        tree.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.name.as_str())
            .collect()
    }

    #[test]
    fn fn_nodes_with_names_and_nesting() {
        let src = r#"
            fn outer() {
                fn inner() { let x = 1; }
                inner();
            }
            fn after() {}
        "#;
        let (tree, toks) = tree_of(src);
        assert_eq!(node_names(&tree, NodeKind::Fn), vec!["outer", "inner", "after"]);
        // The `let` token inside `inner` resolves to `inner`, whose parent
        // is `outer`.
        let let_idx = toks.iter().position(|t| t.text == "x").unwrap();
        let f = tree.enclosing_fn(let_idx).unwrap();
        assert_eq!(f.name, "inner");
        assert_eq!(tree.nodes[tree.nodes[tree.owner_of(let_idx).unwrap()].parent.unwrap()].name, "outer");
    }

    #[test]
    fn impl_names_plain_generic_and_trait_for() {
        let src = r#"
            impl PlacementCache { fn a(&self) {} }
            impl<T: Clone> Wrapper<T> { fn b(&self) {} }
            impl std::fmt::Display for Mat { fn fmt(&self) {} }
        "#;
        let (tree, _) = tree_of(src);
        assert_eq!(
            node_names(&tree, NodeKind::Impl),
            vec!["PlacementCache", "Wrapper", "Mat"]
        );
    }

    #[test]
    fn enclosing_impl_of_method_body_token() {
        let src = "impl GradAccum { fn merge_from(&mut self) { let y = 2; } }";
        let (tree, toks) = tree_of(src);
        let y = toks.iter().position(|t| t.text == "y").unwrap();
        assert_eq!(tree.enclosing_impl(y).unwrap().name, "GradAccum");
        assert_eq!(tree.enclosing_fn(y).unwrap().name, "merge_from");
    }

    #[test]
    fn impl_in_return_position_is_not_a_node() {
        let src = "fn make(rng: &mut impl Rng) -> impl Iterator<Item = u8> { std::iter::empty() }";
        let (tree, _) = tree_of(src);
        assert!(node_names(&tree, NodeKind::Impl).is_empty());
        assert_eq!(node_names(&tree, NodeKind::Fn), vec!["make"]);
    }

    #[test]
    fn fn_pointer_type_is_not_a_node() {
        let src = "fn apply(f: fn(usize) -> f64) -> f64 { f(1) }";
        let (tree, _) = tree_of(src);
        assert_eq!(node_names(&tree, NodeKind::Fn), vec!["apply"]);
    }

    #[test]
    fn cfg_test_mod_detection() {
        let src = r#"
            fn lib_code() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
        "#;
        let (tree, _) = tree_of(src);
        let tests_mod = tree
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::Mod && n.name == "tests")
            .unwrap();
        assert!(tests_mod.cfg_test);
        let helper = tree.nodes.iter().find(|n| n.name == "helper").unwrap();
        assert!(helper.cfg_test);
        let lib = tree.nodes.iter().find(|n| n.name == "lib_code").unwrap();
        assert!(!lib.cfg_test);
    }

    #[test]
    fn use_paths_flatten_groups_globs_and_renames() {
        let src = r#"
            use std::collections::HashMap;
            use std::{thread, sync::{Mutex, atomic::AtomicUsize}};
            use std::collections::HashSet as Set;
            use rand::prelude::*;
            use crate::lexer::{self, Tok};
        "#;
        let (tree, _) = tree_of(src);
        let find = |name: &str| tree.resolve_import(name).map(str::to_string);
        assert_eq!(find("HashMap").as_deref(), Some("std::collections::HashMap"));
        assert_eq!(find("thread").as_deref(), Some("std::thread"));
        assert_eq!(find("Mutex").as_deref(), Some("std::sync::Mutex"));
        assert_eq!(
            find("AtomicUsize").as_deref(),
            Some("std::sync::atomic::AtomicUsize")
        );
        assert_eq!(find("Set").as_deref(), Some("std::collections::HashSet"));
        assert_eq!(find("lexer").as_deref(), Some("crate::lexer"));
        assert_eq!(find("Tok").as_deref(), Some("crate::lexer::Tok"));
        assert!(tree.uses.iter().any(|u| u.path == "rand::prelude::*"));
    }

    #[test]
    fn braces_in_char_literals_do_not_break_matching() {
        let src = "fn f() -> char { let open = '{'; let close = '}'; open }\nfn g() {}";
        let (tree, _) = tree_of(src);
        assert_eq!(node_names(&tree, NodeKind::Fn), vec!["f", "g"]);
        for n in &tree.nodes {
            let (open, close) = n.body.unwrap();
            assert!(open < close, "balanced body for {}", n.name);
        }
    }

    #[test]
    fn braces_in_raw_strings_and_comments_are_opaque() {
        let src = r##"
            fn f() {
                // a stray { in a comment
                /* nested /* { */ } */
                let s = r#"{{{"#;
            }
            fn g() {}
        "##;
        let (tree, _) = tree_of(src);
        assert_eq!(node_names(&tree, NodeKind::Fn), vec!["f", "g"]);
    }

    #[test]
    fn trait_with_bodyless_and_provided_methods() {
        let src = r#"
            trait Hooks {
                fn pre_step(&mut self);
                fn post_step(&mut self) { }
            }
        "#;
        let (tree, _) = tree_of(src);
        assert_eq!(node_names(&tree, NodeKind::Trait), vec!["Hooks"]);
        let pre = tree.nodes.iter().find(|n| n.name == "pre_step").unwrap();
        assert!(pre.body.is_none());
        let post = tree.nodes.iter().find(|n| n.name == "post_step").unwrap();
        assert!(post.body.is_some());
    }

    #[test]
    fn mod_declaration_without_body() {
        let (tree, _) = tree_of("pub mod lexer;\npub mod rules;\nfn f() {}");
        assert_eq!(node_names(&tree, NodeKind::Mod), vec!["lexer", "rules"]);
        assert!(tree.nodes.iter().filter(|n| n.kind == NodeKind::Mod).all(|n| n.body.is_none()));
    }
}
