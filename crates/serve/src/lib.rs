//! `cloudgen-serve` — a fault-tolerant trace-generation service.
//!
//! The training pipeline produces a model bundle; this crate turns that
//! bundle into a long-running HTTP service that generates scenario-
//! parameterized traces on demand — and, unlike a batch CLI run, must
//! survive concurrent load, slow shards, poisoned models, and operator
//! restarts without dying or growing without bound. The design rules:
//!
//! - **Bounded everything.** One fixed-capacity admission queue sits
//!   between the network and the workers ([`ServeConfig::queue_cap`]);
//!   when it fills, requests are *shed* with a typed `429 Overloaded`
//!   response instead of queued into an OOM. Sockets carry read/write
//!   timeouts, header parsing is size-capped, and every internal wait has
//!   a timeout.
//! - **Deadlines, then degradation, then shedding.** Each request runs
//!   under a wall-clock [`obsv::Deadline`] and a fallback budget wired
//!   into the generator via `cloudgen::GenBounds`: a sick model degrades
//!   batch-by-batch through `cloudgen::GenFallback` before the request
//!   fails typed (`503 BudgetExhausted`), and a slow one fails typed
//!   (`504 DeadlineExceeded`) instead of holding a worker forever.
//! - **Retry only what retry can fix.** Transient worker faults retry
//!   with deterministic jittered exponential backoff; deadline, budget,
//!   and cancellation failures never retry.
//! - **Watchdogs over hope.** A scan thread cancels requests that stop
//!   making progress outside generation (the slow-shard case) via the
//!   request's `linalg::CancelToken`.
//! - **Graceful drain.** `drain()` (or `GET /drain`) rejects new work
//!   with `503 Draining` while queued and in-flight requests run to
//!   completion — and the traces they return stay byte-identical to an
//!   unloaded run, because cancellation and deadline checks consume no
//!   randomness.
//! - **Deterministic chaos.** `resilience::RequestFaultPlan` (server-
//!   side, keyed by admission sequence) and the `?fault=` query parameter
//!   (client-side) drive the *production* failure paths in tests; there
//!   is no test-only fork of the serving loop.
//!
//! Endpoints: `GET /generate?periods=&seed=&threads=&deadline_ms=&scale=`
//! `&max_fallback=` (CSV trace, byte-identical to `cloudgen generate` for
//! the same model and parameters), `GET /healthz`, `GET /stats`,
//! `GET /drain`.

#![forbid(unsafe_code)]

pub mod config;
pub mod http;
pub mod server;
pub mod stats;

pub use config::ServeConfig;
pub use http::{fetch, Fetched, Request, Response};
pub use server::{Server, ServerHandle, ServeModel};
pub use stats::{ServeStats, StatsSnapshot};
