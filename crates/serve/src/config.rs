//! Serving configuration knobs.

/// Tunables for [`Server::start`](crate::Server::start). Every limit is
/// explicit and finite: the admission queue, the per-request deadline, the
/// retry budget, and the watchdog thresholds together guarantee the server
/// holds bounded memory and sheds load instead of dying under pressure.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port — tests and
    /// loadgen read the real port back from the handle).
    pub addr: String,
    /// Request worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Admission queue capacity: connections beyond this are shed with a
    /// typed `429 Overloaded` response instead of queueing unboundedly.
    pub queue_cap: usize,
    /// Deadline applied when a request does not name one, milliseconds.
    pub default_deadline_ms: f64,
    /// Hard ceiling on client-requested deadlines, milliseconds.
    pub max_deadline_ms: f64,
    /// Retry attempts for transient worker faults (not counting the first
    /// attempt). Deadline, cancellation, and budget failures never retry.
    pub max_retries: u32,
    /// Base backoff before a retry, milliseconds; attempt `n` waits
    /// `base · 2ⁿ` plus deterministic jitter derived from the request id.
    pub retry_base_ms: u64,
    /// Watchdog: a request showing no progress for this long while not
    /// inside generation (queued faults, stalled shards) is cancelled.
    pub watchdog_stall_ms: f64,
    /// Watchdog scan interval, milliseconds.
    pub watchdog_tick_ms: u64,
    /// Worker-pool threads each generation request runs with unless the
    /// request overrides (`threads=` query parameter).
    pub gen_threads: usize,
    /// Socket read/write timeout, milliseconds — no network peer can hold
    /// a worker thread hostage.
    pub io_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".to_string(),
            workers: 4,
            queue_cap: 32,
            default_deadline_ms: 10_000.0,
            max_deadline_ms: 60_000.0,
            max_retries: 2,
            retry_base_ms: 20,
            watchdog_stall_ms: 2_000.0,
            watchdog_tick_ms: 10,
            gen_threads: 2,
            io_timeout_ms: 5_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let c = ServeConfig::default();
        assert!(c.queue_cap > 0);
        assert!(c.workers > 0);
        assert!(c.default_deadline_ms <= c.max_deadline_ms);
        assert!(c.io_timeout_ms > 0);
    }
}
