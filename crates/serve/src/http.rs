//! Minimal hand-rolled HTTP/1.1: just enough to parse one `GET` request
//! and write one `Connection: close` response. No external dependencies,
//! no unbounded reads — the caller sets a socket read timeout before
//! parsing, header count and line length are capped, and request bodies
//! are not accepted (every endpoint is a GET).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, Read, Write};

/// Upper bound on header lines per request.
const MAX_HEADER_LINES: usize = 64;
/// Upper bound on any single request line, bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// A parsed request: method, path, and decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string (`/generate`).
    pub path: String,
    /// Query parameters in order-independent form.
    pub params: BTreeMap<String, String>,
}

impl Request {
    /// Parses a `key` parameter with a default, erring on malformed input
    /// (a typo must be a `400`, never a silently-defaulted request).
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("parameter `{key}` is not a valid number: `{raw}`")),
        }
    }
}

/// Why a request failed to parse.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed or oversized request — answer `400` and close.
    BadRequest(String),
    /// Socket error (timeout, reset) — close without answering.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

/// Reads one CRLF-terminated line with a hard byte cap.
fn read_line_capped(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = String::new();
    // The socket carries a read timeout set at admission, and `take`
    // bounds the bytes one line may consume, so this read is doubly
    // bounded: in time by the timeout, in space by the cap.
    // lint:allow(unbounded-blocking): bounded by the admission-time socket read timeout and the MAX_LINE_BYTES take() cap
    let n = r.by_ref().take(MAX_LINE_BYTES as u64).read_line(&mut line)?;
    if n == 0 {
        return Err(HttpError::BadRequest("connection closed mid-request".into()));
    }
    if !line.ends_with('\n') {
        return Err(HttpError::BadRequest(format!(
            "request line exceeds {MAX_LINE_BYTES} bytes"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses one request: request line plus headers (discarded) up to the
/// blank line. Bodies are rejected — every served endpoint is a GET.
pub fn read_request(r: &mut impl BufRead) -> Result<Request, HttpError> {
    let start = read_line_capped(r)?;
    let mut parts = start.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no target".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.0");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let mut has_body = false;
    for _ in 0..MAX_HEADER_LINES {
        let line = read_line_capped(r)?;
        if line.is_empty() {
            let (path, params) = split_target(&target);
            if has_body {
                return Err(HttpError::BadRequest(
                    "request bodies are not accepted".into(),
                ));
            }
            return Ok(Request {
                method,
                path,
                params,
            });
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            if v.trim() != "0" {
                has_body = true;
            }
        }
    }
    Err(HttpError::BadRequest(format!(
        "more than {MAX_HEADER_LINES} header lines"
    )))
}

/// Splits `/path?k=v&k2=v2` into the path and its parameter map.
fn split_target(target: &str) -> (String, BTreeMap<String, String>) {
    let mut params = BTreeMap::new();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.insert(k.to_string(), v.to_string());
    }
    (path.to_string(), params)
}

/// An HTTP response ready to serialize. Always `Connection: close`: one
/// request per connection keeps the parser trivial and means a slow or
/// dead client can never wedge keep-alive state.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `429`, …).
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (`X-Request-Id`, degradation markers, …).
    pub extra: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, reason: &'static str, body: String) -> Self {
        Self {
            status,
            reason,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A typed error response: `{"error": KIND, "detail": DETAIL}`. The
    /// `error` field is the machine-readable contract loadgen asserts on.
    pub fn error(status: u16, reason: &'static str, kind: &str, detail: &str) -> Self {
        Self::json(
            status,
            reason,
            format!(
                "{{\"error\": \"{}\", \"detail\": \"{}\"}}",
                json_escape(kind),
                json_escape(detail)
            ),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra.push((name.to_string(), value));
        self
    }

    /// The machine-readable error kind, if this is an error response.
    pub fn error_kind(&self) -> Option<String> {
        let text = String::from_utf8_lossy(&self.body);
        let rest = text.split("\"error\": \"").nth(1)?;
        Some(rest.split('"').next().unwrap_or("").to_string())
    }

    /// Serializes status line, headers, and body. The body is written in
    /// bounded chunks so a large trace streams out without a single
    /// oversized write.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut head = String::new();
        let _ = write!(head, "HTTP/1.1 {} {}\r\n", self.status, self.reason);
        let _ = write!(head, "content-type: {}\r\n", self.content_type);
        let _ = write!(head, "content-length: {}\r\n", self.body.len());
        for (k, v) in &self.extra {
            let _ = write!(head, "{k}: {v}\r\n");
        }
        head.push_str("connection: close\r\n\r\n");
        w.write_all(head.as_bytes())?;
        for chunk in self.body.chunks(64 * 1024) {
            w.write_all(chunk)?;
        }
        w.flush()
    }
}

/// One fetched response: status code, selected headers, body bytes.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Fetched {
    /// A header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The machine-readable `{"error": KIND}` field, if present.
    pub fn error_kind(&self) -> Option<String> {
        let text = String::from_utf8_lossy(&self.body);
        let rest = text.split("\"error\": \"").nth(1)?;
        Some(rest.split('"').next().unwrap_or("").to_string())
    }
}

/// Minimal blocking client for tests, loadgen, and smoke checks: one GET
/// per connection, mirroring the server's `Connection: close` contract.
pub fn fetch(addr: &str, path_and_query: &str, timeout_ms: u64) -> std::io::Result<Fetched> {
    use std::net::TcpStream;
    let timeout = std::time::Duration::from_millis(timeout_ms.max(1));
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    stream.write_all(
        format!("GET {path_and_query} HTTP/1.1\r\nhost: {addr}\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    // lint:allow(unbounded-blocking): the socket read timeout set above bounds this read; the server closes after one response
    std::io::Read::read_to_end(&mut stream, &mut raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(Fetched {
        status,
        headers,
        body,
    })
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_and_query() {
        let req = parse("GET /generate?periods=10&seed=3 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/generate");
        assert_eq!(req.params["periods"], "10");
        assert_eq!(req.params["seed"], "3");
        assert_eq!(req.num("periods", 0u64).unwrap(), 10);
        assert_eq!(req.num("missing", 42u64).unwrap(), 42);
        assert!(req.num::<u64>("seed", 0).is_ok());
    }

    #[test]
    fn malformed_number_is_an_error_not_a_default() {
        let req = parse("GET /g?periods=ten HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.num::<u64>("periods", 0).is_err());
    }

    #[test]
    fn rejects_bodies_and_header_floods() {
        let err = parse("POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)));
        let mut flood = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            flood.push_str(&format!("x-h{i}: v\r\n"));
        }
        flood.push_str("\r\n");
        assert!(matches!(
            parse(&flood).unwrap_err(),
            HttpError::BadRequest(_)
        ));
    }

    #[test]
    fn rejects_oversized_lines_and_truncation() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(
            parse(&long).unwrap_err(),
            HttpError::BadRequest(_)
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\n").unwrap_err(),
            HttpError::BadRequest(_)
        ));
    }

    #[test]
    fn response_roundtrips_with_typed_error_kind() {
        let resp = Response::error(429, "Too Many Requests", "Overloaded", "queue full (32)");
        assert_eq!(resp.error_kind().as_deref(), Some("Overloaded"));
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("connection: close"));
        assert!(text.contains("\"error\": \"Overloaded\""));
    }

    #[test]
    fn ok_response_has_no_error_kind() {
        let resp = Response::json(200, "OK", "{\"ok\": true}".to_string());
        assert_eq!(resp.error_kind(), None);
    }
}
