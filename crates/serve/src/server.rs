//! The serving runtime: bounded admission, worker pool, per-request
//! bounds, deterministic chaos, watchdog, and graceful drain.
//!
//! Life of a request:
//!
//! ```text
//! accept ──▶ admit ──▶ queue ──▶ execute ──▶ degrade ──▶ respond
//!    │          │                   │            │
//!    │          ├─ draining ─▶ 503 Draining      └─ ladder spent ─▶ 503
//!    │          └─ queue full ▶ 429 Overloaded
//!    │                              ├─ deadline ─▶ 504 DeadlineExceeded
//!    └─ SIGTERM/drain               ├─ watchdog ─▶ 503 Cancelled
//!       (new work rejected,         └─ transient ─▶ retry w/ backoff
//!        in-flight finishes)
//! ```
//!
//! Every rejection is a *typed* response (`{"error": KIND}`), every queue
//! is bounded, and every wait carries a timeout — the server sheds load
//! instead of dying, and it degrades (via `cloudgen::GenFallback`) before
//! it sheds.

use crate::config::ServeConfig;
use crate::http::{read_request, HttpError, Request, Response};
use crate::stats::{lock_or_poison, ServeStats, StatsSnapshot};
use cloudgen::{GenBounds, GenerateError, TraceGenerator};
use linalg::CancelToken;
use obsv::{Deadline, Event, MemoryRecorder, Stopwatch};
use resilience::{RequestFault, RequestFaultPlan};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use trace::period::PERIOD_SECS;
use trace::FlavorCatalog;

/// Ceiling on `periods=` per request: 70 simulated days. Bounds the
/// memory any single admitted request can pin.
const MAX_PERIODS: u64 = 20_160;
/// Granularity of interruptible sleeps (backoff, stalls), milliseconds.
const SLEEP_TICK_MS: u64 = 5;
/// How long an idle worker waits on the queue before re-checking the
/// shutdown flag, milliseconds.
const POP_TICK_MS: u64 = 25;
/// Accept-loop poll interval when the listener has nothing, milliseconds.
const ACCEPT_TICK_MS: u64 = 2;

/// The checkpointed model a server loads once and serves from memory.
/// Field-compatible with the JSON bundle `cloudgen train --out` writes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeModel {
    /// The trained three-stage generator.
    pub generator: TraceGenerator,
    /// The flavor catalog the model was trained against.
    pub catalog: FlavorCatalog,
    /// End of the training history, seconds (generation starts here).
    pub horizon: u64,
}

/// Why [`BoundedQueue::try_push`] refused an item.
enum PushError<T> {
    /// Queue at capacity — shed the work.
    Full(T),
    /// Queue closed (shutdown) — reject the work.
    Closed(T),
}

/// A fixed-capacity MPMC queue: `try_push` never blocks and never grows
/// the queue past its cap, `pop_timeout` waits boundedly. This is the
/// *only* buffer between the network and the workers, so its capacity is
/// the server's total admission memory bound.
struct BoundedQueue<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    cv: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new((VecDeque::with_capacity(cap), false)),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless full or closed; wakes one waiting worker.
    fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = lock_or_poison(&self.state);
        if st.1 {
            return Err(PushError::Closed(item));
        }
        if st.0.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        st.0.push_back(item);
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for an item. `None` means timeout or a
    /// closed-and-empty queue — callers re-check their own run flag.
    fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut st = lock_or_poison(&self.state);
        loop {
            if let Some(item) = st.0.pop_front() {
                return Some(item);
            }
            if st.1 {
                return None;
            }
            let (next, res) = self
                .cv
                .wait_timeout(st, timeout)
                .unwrap_or_else(|e| e.into_inner());
            st = next;
            if res.timed_out() {
                return st.0.pop_front();
            }
        }
    }

    /// Closes the queue: pushes fail, poppers drain what remains.
    fn close(&self) {
        lock_or_poison(&self.state).1 = true;
        self.cv.notify_all();
    }

    fn len(&self) -> usize {
        lock_or_poison(&self.state).0.len()
    }
}

/// An admitted connection waiting for a worker.
struct QueuedConn {
    id: u64,
    stream: TcpStream,
}

/// Watchdog reason codes (stored in [`ReqWatch::kill_reason`]).
const KILL_NONE: u64 = 0;
const KILL_STALL: u64 = 1;
const KILL_SCHEDULED: u64 = 2;

/// Per-request liveness record the watchdog scans. All fields the worker
/// updates are atomics; the watchdog never blocks a request.
struct ReqWatch {
    id: u64,
    cancel: CancelToken,
    started: Stopwatch,
    /// Elapsed-ms at the last sign of progress (whole milliseconds).
    last_progress_ms: AtomicU64,
    /// Inside `try_generate_par_bounded` (deadline governs; the stall
    /// detector stands down so long shards aren't misread as hangs).
    generating: AtomicBool,
    /// Elapsed-ms at which a scheduled `KillInFlight` fault fires
    /// (`0` = none armed).
    kill_at_ms: AtomicU64,
    done: AtomicBool,
    kill_reason: AtomicU64,
}

impl ReqWatch {
    fn new(id: u64, cancel: CancelToken) -> Self {
        Self {
            id,
            cancel,
            started: Stopwatch::new(),
            last_progress_ms: AtomicU64::new(0),
            generating: AtomicBool::new(false),
            kill_at_ms: AtomicU64::new(0),
            done: AtomicBool::new(false),
            kill_reason: AtomicU64::new(KILL_NONE),
        }
    }

    /// Marks progress now (resets the stall clock).
    fn tick(&self) {
        self.last_progress_ms
            .store(self.started.elapsed_ms() as u64, Ordering::Relaxed);
    }
}

/// Everything the accept thread, workers, and watchdog share.
struct Shared {
    cfg: ServeConfig,
    model: ServeModel,
    /// NaN-poisoned twin of the generator, built on first poisoned
    /// request; exercises the production degradation ladder.
    poisoned: Mutex<Option<TraceGenerator>>,
    stats: ServeStats,
    draining: AtomicBool,
    shutdown: AtomicBool,
    queue: BoundedQueue<QueuedConn>,
    faults: Mutex<RequestFaultPlan>,
    watch: Mutex<Vec<Arc<ReqWatch>>>,
    rec: MemoryRecorder,
    next_id: AtomicU64,
}

/// How a request attempt failed before or during generation.
enum ReqError {
    Gen(GenerateError),
    /// A transient fault outlived the retry budget.
    TransientExhausted(u32),
}

impl From<GenerateError> for ReqError {
    fn from(e: GenerateError) -> Self {
        ReqError::Gen(e)
    }
}

/// splitmix64 finalizer — deterministic retry jitter from (id, attempt),
/// so backoff spreads without consuming any generation randomness.
fn jitter(id: u64, attempt: u32) -> u64 {
    let mut z = id
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A running server. Dropping the handle shuts the server down; prefer
/// [`ServerHandle::join`] for a graceful drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

/// The trace-generation service.
pub struct Server;

impl Server {
    /// Binds, spawns the accept/worker/watchdog threads, and returns a
    /// handle. `faults` is the deterministic chaos schedule (empty in
    /// production); request ids are assigned at admission, starting at 1.
    pub fn start(
        cfg: ServeConfig,
        model: ServeModel,
        faults: RequestFaultPlan,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_cap.max(1)),
            cfg,
            model,
            poisoned: Mutex::new(None),
            stats: ServeStats::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            faults: Mutex::new(faults),
            watch: Mutex::new(Vec::new()),
            rec: MemoryRecorder::new(),
            next_id: AtomicU64::new(1),
        });
        let mut threads = Vec::with_capacity(workers + 2);
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&s, &listener)));
        }
        for _ in 0..workers {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&s)));
        }
        {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || watchdog_loop(&s)));
        }
        Ok(ServerHandle {
            shared,
            addr,
            threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (read the real port back when binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Starts draining: new connections get `503 Draining`, queued and
    /// in-flight requests run to completion. Idempotent.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// True once [`ServerHandle::drain`] (or `GET /drain`) has fired.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Queued plus executing requests right now.
    pub fn pending(&self) -> u64 {
        self.shared.queue.len() as u64 + self.shared.stats.in_flight.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: drain, wait for the queue and all in-flight
    /// requests to finish, stop the threads, and return the final stats.
    /// In-flight work is never cut off — this is the SIGTERM path.
    pub fn join(mut self) -> StatsSnapshot {
        self.drain();
        while self.pending() > 0 {
            std::thread::sleep(Duration::from_millis(SLEEP_TICK_MS));
        }
        self.stop_threads();
        let snap = self.shared.stats.snapshot();
        self.shared.stats.flush(&self.shared.rec);
        snap
    }

    /// Server-side telemetry events (counters, gauges, request spans) for
    /// folding into an `obsv::RunReport`.
    pub fn events(&self) -> Vec<Event> {
        self.shared.rec.events()
    }

    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    /// Safety net for handles dropped without [`ServerHandle::join`]:
    /// immediate (non-draining) stop so tests can't leak threads.
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Polls the non-blocking listener, admitting or shedding each
/// connection inline. Admission work is O(1): stamp an id, set socket
/// timeouts, push — or write the typed rejection and close.
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::Acquire) {
        // lint:allow(unbounded-blocking): listener is set_nonblocking(true) — accept returns WouldBlock instead of waiting
        match listener.accept() {
            Ok((stream, _)) => admit(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(ACCEPT_TICK_MS));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(ACCEPT_TICK_MS)),
        }
    }
}

fn admit(shared: &Shared, stream: TcpStream) {
    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let io_timeout = Duration::from_millis(shared.cfg.io_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    match shared.queue.try_push(QueuedConn { id, stream }) {
        Ok(()) => {
            shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .queue_depth
                .store(shared.queue.len() as u64, Ordering::Relaxed);
        }
        Err(PushError::Full(conn)) => {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            reject_inline(
                conn.stream,
                id,
                Response::error(
                    429,
                    "Too Many Requests",
                    "Overloaded",
                    &format!(
                        "admission queue full ({} queued); retry with backoff",
                        shared.cfg.queue_cap
                    ),
                ),
            );
        }
        Err(PushError::Closed(conn)) => {
            shared.stats.drain_rejected.fetch_add(1, Ordering::Relaxed);
            reject_inline(
                conn.stream,
                id,
                Response::error(503, "Service Unavailable", "Draining", "server stopping"),
            );
        }
    }
}

/// Writes a response and closes; errors are ignored (the peer is gone).
fn respond_inline(stream: TcpStream, id: u64, resp: Response) {
    let mut w = BufWriter::new(stream);
    let _ = resp
        .with_header("x-request-id", id.to_string())
        .write_to(&mut w);
}

/// How long an admission rejection will wait for the client's request
/// bytes before answering anyway, milliseconds.
const REJECT_DRAIN_MS: u64 = 250;

/// Rejects a connection the accept thread never handed to a worker.
///
/// The request must be *drained* before the response is written: closing
/// a socket with unread input resets the connection, and the peer would
/// see a reset instead of the typed rejection. The drain is bounded by a
/// short read timeout and a small byte cap, so a slow client can delay
/// admission by at most [`REJECT_DRAIN_MS`].
fn reject_inline(stream: TcpStream, id: u64, resp: Response) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(REJECT_DRAIN_MS)));
    let mut drained = 0usize;
    let mut buf = [0u8; 1024];
    let mut s = &stream;
    while drained < 16 * 1024 {
        // lint:allow(unbounded-blocking): bounded by the 250ms reject-drain read timeout and the 16KB cap
        match std::io::Read::read(&mut s, &mut buf) {
            Ok(n) if n > 0 => {
                drained += n;
                // A blank line ends a GET request — nothing more is coming.
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            _ => break,
        }
    }
    respond_inline(stream, id, resp);
}

/// Pops admitted connections and serves them until shutdown.
fn worker_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        let Some(conn) = shared.queue.pop_timeout(Duration::from_millis(POP_TICK_MS)) else {
            continue;
        };
        shared
            .stats
            .queue_depth
            .store(shared.queue.len() as u64, Ordering::Relaxed);
        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        serve_conn(shared, conn);
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn serve_conn(shared: &Shared, conn: QueuedConn) {
    let QueuedConn { id, stream } = conn;
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let resp = match read_request(&mut reader) {
        Ok(req) => route(shared, id, &req),
        Err(HttpError::BadRequest(msg)) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::error(400, "Bad Request", "BadRequest", &msg)
        }
        // Socket-level failure (timeout, reset): nobody is listening.
        Err(HttpError::Io(_)) => return,
    };
    respond_inline(stream, id, resp);
}

fn route(shared: &Shared, id: u64, req: &Request) -> Response {
    if req.method != "GET" {
        shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            405,
            "Method Not Allowed",
            "BadRequest",
            "only GET is supported",
        );
    }
    match req.path.as_str() {
        "/healthz" => Response::json(
            200,
            "OK",
            format!(
                "{{\"ok\": true, \"draining\": {}}}",
                shared.draining.load(Ordering::Acquire)
            ),
        ),
        "/stats" => Response::json(200, "OK", shared.stats.snapshot().to_json()),
        "/drain" => {
            shared.draining.store(true, Ordering::Release);
            Response::json(200, "OK", "{\"draining\": true}".to_string())
        }
        // Draining rejects new *work* at routing, not at admission:
        // health checks and stats stay live so orchestrators can watch
        // the drain converge.
        "/generate" if shared.draining.load(Ordering::Acquire) => {
            shared.stats.drain_rejected.fetch_add(1, Ordering::Relaxed);
            Response::error(
                503,
                "Service Unavailable",
                "Draining",
                "server is draining; retry against another instance",
            )
        }
        "/generate" => handle_generate(shared, id, req),
        _ => Response::error(
            404,
            "Not Found",
            "NotFound",
            &format!("no such endpoint: {}", req.path),
        ),
    }
}

/// Parses `?fault=` — the client-side chaos interface (`poison`,
/// `stall:MS`, `kill:MS`, `transient:N`). Production clients omit it;
/// loadgen uses it to target faults at specific requests.
fn parse_query_fault(req: &Request) -> Result<Option<RequestFault>, String> {
    let Some(raw) = req.params.get("fault") else {
        return Ok(None);
    };
    let (kind, arg) = raw.split_once(':').unwrap_or((raw.as_str(), ""));
    let num = |what: &str| {
        arg.parse::<u64>()
            .map_err(|_| format!("fault `{kind}` needs a numeric {what}: `{raw}`"))
    };
    match kind {
        "poison" => Ok(Some(RequestFault::Poisoned)),
        "stall" => Ok(Some(RequestFault::StallShard { millis: num("ms")? })),
        "kill" => Ok(Some(RequestFault::KillInFlight {
            after_ms: num("ms")?,
        })),
        "transient" => Ok(Some(RequestFault::Transient {
            failures: num("count")? as u32,
        })),
        other => Err(format!("unknown fault kind `{other}`")),
    }
}

/// Parameters of one `/generate` request.
struct GenParams {
    periods: u64,
    seed: u64,
    threads: usize,
    deadline_ms: f64,
    scale: f64,
    max_fallback: usize,
    query_fault: Option<RequestFault>,
}

fn parse_gen_params(shared: &Shared, req: &Request) -> Result<GenParams, String> {
    let periods: u64 = req.num("periods", 288)?;
    if periods == 0 || periods > MAX_PERIODS {
        return Err(format!("periods must be in 1..={MAX_PERIODS}, got {periods}"));
    }
    let deadline_ms: f64 = req.num("deadline_ms", shared.cfg.default_deadline_ms)?;
    if !deadline_ms.is_finite() || deadline_ms <= 0.0 {
        return Err(format!("deadline_ms must be positive, got {deadline_ms}"));
    }
    let threads: usize = req.num("threads", shared.cfg.gen_threads)?;
    Ok(GenParams {
        periods,
        seed: req.num("seed", 7)?,
        threads: threads.clamp(1, 16),
        deadline_ms: deadline_ms.min(shared.cfg.max_deadline_ms),
        scale: req.num("scale", shared.cfg_scale())?,
        max_fallback: req.num(
            "max_fallback",
            shared.model.generator.config.max_fallback_batches,
        )?,
        query_fault: parse_query_fault(req)?,
    })
}

impl Shared {
    fn cfg_scale(&self) -> f64 {
        self.model.generator.config.scale
    }

    /// The NaN-poisoned generator twin, built on first use.
    fn poisoned_generator(&self) -> TraceGenerator {
        let mut slot = lock_or_poison(&self.poisoned);
        if slot.is_none() {
            let mut g = self.model.generator.clone();
            for p in g.flavors.net_mut().params_mut() {
                p.value.map_inplace(|_| f64::NAN);
            }
            *slot = Some(g);
        }
        slot.clone().expect("just populated")
    }
}

fn handle_generate(shared: &Shared, id: u64, req: &Request) -> Response {
    let started = Stopwatch::new();
    let params = match parse_gen_params(shared, req) {
        Ok(p) => p,
        Err(msg) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::error(400, "Bad Request", "BadRequest", &msg);
        }
    };
    let cancel = CancelToken::new();
    let watch = Arc::new(ReqWatch::new(id, cancel.clone()));
    watch.tick();
    lock_or_poison(&shared.watch).push(Arc::clone(&watch));
    let deadline = Deadline::after_ms(params.deadline_ms);
    let outcome = run_request(shared, &watch, &deadline, &params);
    watch.done.store(true, Ordering::Release);
    let wall_ms = started.elapsed_ms();
    shared.stats.record_request_span(&shared.rec, wall_ms);
    finish_generate(shared, id, &watch, outcome, wall_ms)
}

/// Maps an execution outcome onto the typed response vocabulary and the
/// matching stats counter.
fn finish_generate(
    shared: &Shared,
    id: u64,
    watch: &ReqWatch,
    outcome: Result<(Vec<u8>, u64), ReqError>,
    wall_ms: f64,
) -> Response {
    let s = &shared.stats;
    match outcome {
        Ok((body, fallback_batches)) => {
            s.completed.fetch_add(1, Ordering::Relaxed);
            if fallback_batches > 0 {
                s.degraded.fetch_add(1, Ordering::Relaxed);
            }
            Response {
                status: 200,
                reason: "OK",
                content_type: "text/csv",
                extra: Vec::new(),
                body,
            }
            .with_header("x-fallback-batches", fallback_batches.to_string())
            .with_header("x-wall-ms", (wall_ms as u64).to_string())
        }
        Err(ReqError::Gen(GenerateError::DeadlineExceeded { budget_ms })) => {
            s.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            Response::error(
                504,
                "Gateway Timeout",
                "DeadlineExceeded",
                &format!("request {id} exceeded its {budget_ms} ms deadline"),
            )
        }
        Err(ReqError::Gen(GenerateError::FallbackBudgetExhausted { budget })) => {
            s.budget_exhausted.fetch_add(1, Ordering::Relaxed);
            Response::error(
                503,
                "Service Unavailable",
                "BudgetExhausted",
                &format!("degradation ladder spent its budget of {budget} fallback batches"),
            )
        }
        Err(ReqError::Gen(GenerateError::Cancelled)) => {
            s.cancelled.fetch_add(1, Ordering::Relaxed);
            let why = match watch.kill_reason.load(Ordering::Acquire) {
                KILL_STALL => "watchdog cancelled a stalled request",
                KILL_SCHEDULED => "cancelled by a scheduled mid-flight kill",
                _ => "request was cancelled",
            };
            Response::error(503, "Service Unavailable", "Cancelled", why)
        }
        Err(ReqError::TransientExhausted(attempts)) => {
            Response::error(
                503,
                "Service Unavailable",
                "TransientFault",
                &format!("transient fault persisted through {attempts} retries"),
            )
        }
    }
}

/// Runs one request: per-attempt fault intake, bounded retry with
/// deterministic jittered backoff, then bounded generation.
fn run_request(
    shared: &Shared,
    watch: &ReqWatch,
    deadline: &Deadline,
    params: &GenParams,
) -> Result<(Vec<u8>, u64), ReqError> {
    let mut query_fault = params.query_fault.clone();
    let mut attempt = 0u32;
    loop {
        // Server-side chaos plan first, then the request's own fault.
        // `Transient` faults re-fire per attempt from the plan; a query
        // transient carries its own countdown.
        let fault = lock_or_poison(&shared.faults)
            .take(watch.id)
            .or_else(|| take_query_fault(&mut query_fault));
        let mut use_poisoned = false;
        match fault {
            Some(RequestFault::Transient { .. }) => {
                if attempt >= shared.cfg.max_retries {
                    return Err(ReqError::TransientExhausted(attempt));
                }
                shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                backoff(shared, watch, deadline, attempt)?;
                attempt += 1;
                continue;
            }
            Some(RequestFault::Poisoned) => use_poisoned = true,
            Some(RequestFault::StallShard { millis }) => {
                stall(watch, deadline, millis)?;
            }
            Some(RequestFault::KillInFlight { after_ms }) => {
                watch.kill_at_ms.store(
                    (watch.started.elapsed_ms() as u64).saturating_add(after_ms).max(1),
                    Ordering::Release,
                );
            }
            None => {}
        }
        return generate_once(shared, watch, deadline, params, use_poisoned);
    }
}

/// Consumes one firing of the query-supplied fault. A `transient:N`
/// counts down across attempts like the plan's `Transient` does.
fn take_query_fault(slot: &mut Option<RequestFault>) -> Option<RequestFault> {
    match slot.take() {
        Some(RequestFault::Transient { failures }) if failures > 1 => {
            *slot = Some(RequestFault::Transient {
                failures: failures - 1,
            });
            Some(RequestFault::Transient { failures })
        }
        other => other,
    }
}

/// Interruptible backoff before retry `attempt`: `base · 2^attempt` plus
/// deterministic jitter, in short ticks so cancellation and the deadline
/// stay live. Ticks progress — a backing-off request is not a stalled one.
fn backoff(
    shared: &Shared,
    watch: &ReqWatch,
    deadline: &Deadline,
    attempt: u32,
) -> Result<(), ReqError> {
    let base = shared.cfg.retry_base_ms.max(1);
    let total = (base << attempt.min(10)) + jitter(watch.id, attempt) % base;
    let sw = Stopwatch::new();
    while sw.elapsed_ms() < total as f64 {
        watch.tick();
        check_bounds(watch, deadline)?;
        std::thread::sleep(Duration::from_millis(SLEEP_TICK_MS));
    }
    watch.tick();
    Ok(())
}

/// Simulates a shard that stops making progress: sleeps WITHOUT ticking
/// the watchdog, so a stall longer than `watchdog_stall_ms` is cancelled
/// by the watchdog exactly as a real wedged shard would be.
fn stall(watch: &ReqWatch, deadline: &Deadline, millis: u64) -> Result<(), ReqError> {
    let sw = Stopwatch::new();
    while sw.elapsed_ms() < millis as f64 {
        check_bounds(watch, deadline)?;
        std::thread::sleep(Duration::from_millis(SLEEP_TICK_MS));
    }
    watch.tick();
    Ok(())
}

fn check_bounds(watch: &ReqWatch, deadline: &Deadline) -> Result<(), ReqError> {
    if watch.cancel.is_cancelled() {
        return Err(GenerateError::Cancelled.into());
    }
    if deadline.expired() {
        return Err(GenerateError::DeadlineExceeded {
            budget_ms: deadline.budget_ms() as u64,
        }
        .into());
    }
    Ok(())
}

/// One bounded generation attempt, byte-identical to the CLI path for the
/// same model/seed/threads: same `first_period` derivation, same
/// `write_csv` serialization, and bounds that consume no randomness.
// lint:allow(memory-contract): buffers one whole CSV response body by design (byte-identical to the CLI path); the body is bounded by MAX_PERIODS (20_160 periods) x max_jobs_per_period jobs x ~32 bytes/row per admitted request, and the [[absorber]] entry stops the class from propagating to callers
fn generate_once(
    shared: &Shared,
    watch: &ReqWatch,
    deadline: &Deadline,
    params: &GenParams,
    use_poisoned: bool,
) -> Result<(Vec<u8>, u64), ReqError> {
    let mut gen = if use_poisoned {
        shared.poisoned_generator()
    } else {
        shared.model.generator.clone()
    };
    gen.config.scale = params.scale;
    gen.config.max_fallback_batches = params.max_fallback;
    let bounds = GenBounds {
        deadline: Some(*deadline),
        cancel: Some(watch.cancel.clone()),
    };
    let first_period = shared.model.horizon.div_ceil(PERIOD_SECS);
    let local = MemoryRecorder::new();
    watch.tick();
    watch.generating.store(true, Ordering::Release);
    let result = gen.try_generate_par_bounded(
        first_period,
        params.periods,
        &shared.model.catalog,
        params.seed,
        params.threads,
        &local,
        &bounds,
    );
    watch.generating.store(false, Ordering::Release);
    watch.tick();
    let trace = result?;
    let fallback_batches: u64 = local
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Counter(c) if c.name == "gen.fallback_batches" => Some(c.delta),
            _ => None,
        })
        .sum();
    let mut body = Vec::new();
    trace::io::write_csv(&trace, &mut body)
        .map_err(|_| ReqError::Gen(GenerateError::Cancelled))?;
    Ok((body, fallback_batches))
}

/// Scans the watch registry every tick: fires scheduled kills, cancels
/// requests that show no progress outside generation, and drops finished
/// entries. Cancellation is abort-only — the watchdog never mutates
/// request state beyond the request's own [`CancelToken`].
fn watchdog_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(shared.cfg.watchdog_tick_ms.max(1)));
        let mut reg = lock_or_poison(&shared.watch);
        reg.retain(|w| !w.done.load(Ordering::Acquire));
        for w in reg.iter() {
            if w.cancel.is_cancelled() {
                continue;
            }
            let elapsed = w.started.elapsed_ms();
            let kill_at = w.kill_at_ms.load(Ordering::Acquire);
            if kill_at > 0 && elapsed >= kill_at as f64 {
                w.kill_reason.store(KILL_SCHEDULED, Ordering::Release);
                w.cancel.cancel();
                shared.stats.scheduled_kills.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let last = w.last_progress_ms.load(Ordering::Relaxed) as f64;
            if !w.generating.load(Ordering::Acquire)
                && elapsed - last >= shared.cfg.watchdog_stall_ms
            {
                w.kill_reason.store(KILL_STALL, Ordering::Release);
                w.cancel.cancel();
                shared.stats.watchdog_stalls.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_sheds_at_cap_and_drains_after_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.len(), 2);
        q.close();
        assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
        // Closed queues still drain what was admitted.
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn pop_timeout_returns_none_on_empty_queue() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let sw = Stopwatch::new();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), None);
        assert!(sw.elapsed_ms() >= 5.0, "should have waited for the timeout");
    }

    #[test]
    fn jitter_is_deterministic_and_spread() {
        assert_eq!(jitter(7, 0), jitter(7, 0));
        assert_ne!(jitter(7, 0), jitter(7, 1));
        assert_ne!(jitter(7, 0), jitter(8, 0));
    }

    #[test]
    fn query_fault_parsing_covers_the_vocabulary() {
        let req = |q: &str| Request {
            method: "GET".into(),
            path: "/generate".into(),
            params: [("fault".to_string(), q.to_string())].into_iter().collect(),
        };
        assert_eq!(
            parse_query_fault(&req("poison")).unwrap(),
            Some(RequestFault::Poisoned)
        );
        assert_eq!(
            parse_query_fault(&req("stall:250")).unwrap(),
            Some(RequestFault::StallShard { millis: 250 })
        );
        assert_eq!(
            parse_query_fault(&req("kill:40")).unwrap(),
            Some(RequestFault::KillInFlight { after_ms: 40 })
        );
        assert_eq!(
            parse_query_fault(&req("transient:2")).unwrap(),
            Some(RequestFault::Transient { failures: 2 })
        );
        assert!(parse_query_fault(&req("meteor")).is_err());
        assert!(parse_query_fault(&req("stall:soon")).is_err());
    }

    #[test]
    fn query_transient_counts_down_across_attempts() {
        let mut slot = Some(RequestFault::Transient { failures: 2 });
        assert!(take_query_fault(&mut slot).is_some());
        assert!(take_query_fault(&mut slot).is_some());
        assert!(take_query_fault(&mut slot).is_none());
    }
}
