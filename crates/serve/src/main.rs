//! `cloudgen-serve` binary: load a model bundle once, serve traces until
//! drained.
//!
//! ```text
//! cloudgen-serve --model model.json [--addr 127.0.0.1:7070]
//!     [--workers N] [--queue-cap N] [--deadline-ms MS] [--threads N]
//! ```
//!
//! Shutdown contract: `GET /drain` starts a graceful drain — new requests
//! get `503 Draining`, queued and in-flight requests finish, then the
//! process exits 0 and prints final stats. (A SIGTERM handler would need
//! `unsafe` signal plumbing, which this workspace forbids; process
//! managers should hit `/drain` and wait for exit, falling back to
//! SIGKILL after their grace period.)

#![forbid(unsafe_code)]

use serve::{ServeConfig, ServeModel, Server};
use std::time::Duration;

fn usage() -> String {
    "usage: cloudgen-serve --model model.json [--addr HOST:PORT] \
     [--workers N] [--queue-cap N] [--deadline-ms MS] [--threads N]"
        .to_string()
}

/// Hand-rolled `--key value` parsing (same idiom as the cloudgen CLI).
fn parse_args(argv: &[String]) -> Result<ServeConfigWithModel, String> {
    let mut cfg = ServeConfig::default();
    let mut model_path = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--model" => model_path = Some(val("--model")?),
            "--addr" => cfg.addr = val("--addr")?,
            "--workers" => cfg.workers = parse_num(&val("--workers")?, "--workers")?,
            "--queue-cap" => cfg.queue_cap = parse_num(&val("--queue-cap")?, "--queue-cap")?,
            "--deadline-ms" => {
                let ms: u64 = parse_num(&val("--deadline-ms")?, "--deadline-ms")?;
                cfg.default_deadline_ms = ms as f64;
            }
            "--threads" => cfg.gen_threads = parse_num(&val("--threads")?, "--threads")?,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    let model_path = model_path.ok_or_else(|| format!("--model is required\n{}", usage()))?;
    Ok(ServeConfigWithModel { cfg, model_path })
}

struct ServeConfigWithModel {
    cfg: ServeConfig,
    model_path: String,
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} is not a valid number: `{raw}`"))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&argv)?;
    // lint:allow(unbounded-blocking): startup-time model load from the local filesystem, not on the request path
    let json = std::fs::read_to_string(&parsed.model_path)
        .map_err(|e| format!("reading {}: {e}", parsed.model_path))?;
    let model: ServeModel =
        serde_json::from_str(&json).map_err(|e| format!("loading model bundle: {e}"))?;
    let handle = Server::start(parsed.cfg, model, resilience::RequestFaultPlan::none())
        .map_err(|e| format!("starting server: {e}"))?;
    println!("cloudgen-serve listening on {}", handle.addr());
    println!("drain with: curl http://{}/drain", handle.addr());
    // Serve until an operator drains us, then let in-flight work finish.
    while !(handle.is_draining() && handle.pending() == 0) {
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = handle.join();
    println!("drained; final stats:\n{}", stats.to_json());
    Ok(())
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}
