//! Server-side telemetry: lock-free counters for every admission and
//! completion outcome, a queue-depth gauge, and a latency histogram whose
//! quantiles feed `/stats`, `BENCH_serve.json`, and the obsv `RunReport`.

use crate::http::json_escape;
use obsv::{CounterEvent, Event, GaugeEvent, Histogram, Recorder, SpanEvent};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks tolerating a poisoned peer: telemetry must keep counting even if
/// a worker panicked mid-update.
pub(crate) fn lock_or_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Latency bucket edges, milliseconds: roughly logarithmic from 1 ms to
/// one minute, so quick health checks and heavyweight generations land in
/// distinguishable buckets.
fn latency_edges() -> Vec<f64> {
    vec![
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0,
        10_000.0, 30_000.0, 60_000.0,
    ]
}

/// Shared serving counters. All atomics: incremented from the accept
/// thread, every worker, and the watchdog without coordination.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted from the listener.
    pub accepted: AtomicU64,
    /// Requests admitted to the queue.
    pub admitted: AtomicU64,
    /// Requests shed with `429 Overloaded` (queue full).
    pub shed: AtomicU64,
    /// Requests rejected with `503 Draining`.
    pub drain_rejected: AtomicU64,
    /// Requests answered `200`.
    pub completed: AtomicU64,
    /// `200`s that used at least one fallback batch (degraded ladder).
    pub degraded: AtomicU64,
    /// Requests failed with `FallbackBudgetExhausted`.
    pub budget_exhausted: AtomicU64,
    /// Requests failed with `DeadlineExceeded`.
    pub deadline_exceeded: AtomicU64,
    /// Requests failed with `Cancelled`.
    pub cancelled: AtomicU64,
    /// Transient-fault retry attempts performed.
    pub retries: AtomicU64,
    /// Requests the watchdog cancelled for showing no progress.
    pub watchdog_stalls: AtomicU64,
    /// Requests killed by a scheduled mid-flight fault.
    pub scheduled_kills: AtomicU64,
    /// Malformed requests answered `400`.
    pub bad_requests: AtomicU64,
    /// Requests currently queued (admission-queue depth).
    pub queue_depth: AtomicU64,
    /// Requests currently executing on a worker.
    pub in_flight: AtomicU64,
    latency: Mutex<Option<Histogram>>,
}

/// A point-in-time copy of the counters plus latency quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// `(name, value)` counter pairs, stable order.
    pub counters: Vec<(&'static str, u64)>,
    /// Latency observations recorded.
    pub latency_count: u64,
    /// Median request latency, milliseconds.
    pub latency_p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub latency_p99_ms: f64,
}

impl StatsSnapshot {
    /// Looks up one counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Hand-rolled JSON document (the serving path must not depend on a
    /// JSON library being available at runtime).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  \"{}\": {},", json_escape(name), v);
        }
        let _ = writeln!(out, "  \"latency_count\": {},", self.latency_count);
        let _ = writeln!(out, "  \"latency_p50_ms\": {:.3},", self.latency_p50_ms);
        let _ = writeln!(out, "  \"latency_p95_ms\": {:.3},", self.latency_p95_ms);
        let _ = writeln!(out, "  \"latency_p99_ms\": {:.3}", self.latency_p99_ms);
        out.push_str("}\n");
        out
    }
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        let s = Self::default();
        *lock_or_poison(&s.latency) = Some(Histogram::new(latency_edges()));
        s
    }

    /// Records one completed request's wall time.
    pub fn observe_latency(&self, ms: f64) {
        if let Some(h) = lock_or_poison(&self.latency).as_mut() {
            h.record(ms);
        }
    }

    /// Counter pairs in a stable order.
    fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("serve.accepted", g(&self.accepted)),
            ("serve.admitted", g(&self.admitted)),
            ("serve.shed", g(&self.shed)),
            ("serve.drain_rejected", g(&self.drain_rejected)),
            ("serve.completed", g(&self.completed)),
            ("serve.degraded", g(&self.degraded)),
            ("serve.budget_exhausted", g(&self.budget_exhausted)),
            ("serve.deadline_exceeded", g(&self.deadline_exceeded)),
            ("serve.cancelled", g(&self.cancelled)),
            ("serve.retries", g(&self.retries)),
            ("serve.watchdog_stalls", g(&self.watchdog_stalls)),
            ("serve.scheduled_kills", g(&self.scheduled_kills)),
            ("serve.bad_requests", g(&self.bad_requests)),
            ("serve.queue_depth", g(&self.queue_depth)),
            ("serve.in_flight", g(&self.in_flight)),
        ]
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (count, p50, p95, p99) = match lock_or_poison(&self.latency).as_ref() {
            Some(h) => (h.count(), h.p50(), h.p95(), h.p99()),
            None => (0, 0.0, 0.0, 0.0),
        };
        StatsSnapshot {
            counters: self.counter_pairs(),
            latency_count: count,
            latency_p50_ms: p50,
            latency_p95_ms: p95,
            latency_p99_ms: p99,
        }
    }

    /// Emits every non-zero counter as a [`CounterEvent`] plus the live
    /// queue-depth gauge, so `RunReport::from_events` folds serving
    /// telemetry in next to training and generation.
    pub fn flush(&self, rec: &dyn Recorder) {
        for (name, v) in self.counter_pairs() {
            if v > 0 && !matches!(name, "serve.queue_depth" | "serve.in_flight") {
                rec.record(Event::Counter(CounterEvent {
                    name: name.to_string(),
                    delta: v,
                }));
            }
        }
        rec.record(Event::Gauge(GaugeEvent {
            name: "serve.queue_depth".to_string(),
            value: self.queue_depth.load(Ordering::Relaxed) as f64,
        }));
    }

    /// Emits one per-request span (`serve.request`, wall milliseconds) —
    /// the raw material for the RunReport's latency quantiles.
    pub fn record_request_span(&self, rec: &dyn Recorder, wall_ms: f64) {
        self.observe_latency(wall_ms);
        rec.record(Event::Span(SpanEvent {
            name: "serve.request".to_string(),
            wall_ms,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obsv::MemoryRecorder;

    #[test]
    fn snapshot_reports_counters_and_quantiles() {
        let s = ServeStats::new();
        s.accepted.fetch_add(5, Ordering::Relaxed);
        s.shed.fetch_add(2, Ordering::Relaxed);
        for ms in [10.0, 20.0, 30.0, 40.0, 400.0] {
            s.observe_latency(ms);
        }
        let snap = s.snapshot();
        assert_eq!(snap.counter("serve.accepted"), 5);
        assert_eq!(snap.counter("serve.shed"), 2);
        assert_eq!(snap.counter("serve.unknown"), 0);
        assert_eq!(snap.latency_count, 5);
        assert!(snap.latency_p50_ms >= 10.0 && snap.latency_p50_ms <= 50.0);
        assert!(snap.latency_p99_ms > snap.latency_p50_ms);
        let json = snap.to_json();
        assert!(json.contains("\"serve.shed\": 2"));
        assert!(json.contains("latency_p99_ms"));
    }

    #[test]
    fn flush_emits_counters_gauge_and_spans() {
        let s = ServeStats::new();
        let rec = MemoryRecorder::new();
        s.completed.fetch_add(3, Ordering::Relaxed);
        s.record_request_span(&rec, 12.5);
        s.flush(&rec);
        let report = obsv::RunReport::from_events(&rec.events());
        assert_eq!(report.counters["serve.completed"], 3);
        assert!(report.gauges.contains_key("serve.queue_depth"));
        let span = &report.spans["serve.request"];
        assert_eq!(span.count, 1);
    }
}
