//! VM flavors: the discrete resource bundles requests are drawn from.

use serde::{Deserialize, Serialize};

/// Index of a flavor within a [`FlavorCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlavorId(pub u16);

/// A VM flavor: a named CPU/memory bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flavor {
    /// Human-readable name, e.g. `"c4m16"`.
    pub name: String,
    /// Virtual CPU count.
    pub vcpus: f64,
    /// Memory in GiB.
    pub memory_gb: f64,
}

/// An ordered catalog of flavors; `FlavorId(i)` indexes into it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlavorCatalog {
    flavors: Vec<Flavor>,
}

impl FlavorCatalog {
    /// Creates a catalog from a flavor list.
    ///
    /// # Panics
    ///
    /// Panics if `flavors` is empty or longer than `u16::MAX`.
    pub fn new(flavors: Vec<Flavor>) -> Self {
        assert!(!flavors.is_empty(), "empty catalog");
        assert!(flavors.len() <= u16::MAX as usize, "too many flavors");
        Self { flavors }
    }

    /// An Azure-like catalog: 16 CPU/memory combinations (the Azure public
    /// trace has 16 distinct flavors).
    ///
    /// vCPUs in {1, 2, 4, 8} crossed with memory-per-core ratios in
    /// {0.75, 1.75, 3.5, 7} GiB.
    pub fn azure16() -> Self {
        let mut flavors = Vec::with_capacity(16);
        for &vcpus in &[1.0, 2.0, 4.0, 8.0] {
            for &per_core in &[0.75, 1.75, 3.5, 7.0] {
                let memory_gb = vcpus * per_core;
                flavors.push(Flavor {
                    name: format!("c{}m{}", vcpus as u32, memory_gb),
                    vcpus,
                    memory_gb,
                });
            }
        }
        Self::new(flavors)
    }

    /// A large synthetic catalog with `n` flavors (the Huawei Cloud data has
    /// 259), spanning vCPU counts, several memory ratios, and hardware
    /// generations (generations reuse shapes with distinct identities, as
    /// multiple server generations do in real clouds).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u16::MAX`.
    pub fn synthetic(n: usize) -> Self {
        assert!(n > 0, "need at least one flavor");
        let vcpu_options = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        let ratio_options = [1.0, 2.0, 4.0, 8.0];
        let mut flavors = Vec::with_capacity(n);
        let mut gen = 1usize;
        'outer: loop {
            for &vcpus in &vcpu_options {
                for &ratio in &ratio_options {
                    if flavors.len() >= n {
                        break 'outer;
                    }
                    let memory_gb = vcpus * ratio;
                    flavors.push(Flavor {
                        name: format!("g{gen}c{}m{}", vcpus as u32, memory_gb as u32),
                        vcpus,
                        memory_gb,
                    });
                }
            }
            gen += 1;
        }
        Self::new(flavors)
    }

    /// Number of flavors.
    pub fn len(&self) -> usize {
        self.flavors.len()
    }

    /// Always false (catalogs are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a flavor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn get(&self, id: FlavorId) -> &Flavor {
        &self.flavors[id.0 as usize]
    }

    /// Iterates over `(FlavorId, &Flavor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FlavorId, &Flavor)> {
        self.flavors
            .iter()
            .enumerate()
            .map(|(i, f)| (FlavorId(i as u16), f))
    }

    /// All valid flavor ids.
    pub fn ids(&self) -> impl Iterator<Item = FlavorId> {
        (0..self.flavors.len() as u16).map(FlavorId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure16_has_16_distinct_flavors() {
        let c = FlavorCatalog::azure16();
        assert_eq!(c.len(), 16);
        let mut names: Vec<&str> = c.iter().map(|(_, f)| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn synthetic_hits_exact_count() {
        for n in [1, 28, 259, 300] {
            let c = FlavorCatalog::synthetic(n);
            assert_eq!(c.len(), n);
        }
    }

    #[test]
    fn synthetic_generations_have_unique_names() {
        let c = FlavorCatalog::synthetic(259);
        let mut names: Vec<&str> = c.iter().map(|(_, f)| f.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 259);
    }

    #[test]
    fn get_and_ids_round_trip() {
        let c = FlavorCatalog::azure16();
        for id in c.ids() {
            let f = c.get(id);
            assert!(f.vcpus > 0.0 && f.memory_gb > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty catalog")]
    fn empty_catalog_panics() {
        let _ = FlavorCatalog::new(vec![]);
    }
}
