//! Trace analysis: summary statistics and trace-to-trace comparison.
//!
//! These are the quantities workload papers report when characterizing a
//! trace (arrival rates, batch structure, lifetime quantiles, flavor
//! concentration) plus simple divergences for judging whether a generated
//! trace resembles a reference one.

use crate::batch::{batch_size_histogram, organize_periods};
use crate::job::Trace;
use crate::stats::flavor_histogram;
use serde::{Deserialize, Serialize};

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Total jobs.
    pub jobs: usize,
    /// Total batches.
    pub batches: usize,
    /// Periods containing at least one arrival.
    pub active_periods: usize,
    /// Mean jobs per active period.
    pub jobs_per_active_period: f64,
    /// Mean batch size.
    pub mean_batch_size: f64,
    /// Largest batch.
    pub max_batch_size: usize,
    /// Fraction of censored jobs.
    pub censored_fraction: f64,
    /// Observed-lifetime quantiles in seconds `(p25, p50, p90, p99)`,
    /// censored durations included at their censoring time.
    pub lifetime_quantiles: (f64, f64, f64, f64),
    /// Shannon entropy of the flavor distribution, in bits.
    pub flavor_entropy_bits: f64,
    /// Fraction of requests going to the single most popular flavor.
    pub top_flavor_share: f64,
}

/// Computes a [`TraceSummary`]; `censor_time` is the observation horizon
/// used for censored jobs' durations.
pub fn summarize(trace: &Trace, censor_time: u64) -> TraceSummary {
    let periods = organize_periods(trace);
    let batches: usize = periods.iter().map(|p| p.batches.len()).sum();
    let sizes = batch_size_histogram(&periods);
    let max_batch_size = sizes.len();
    let total_batch_jobs: u64 =
        sizes.iter().zip(1u64..).map(|(&c, s)| c * s).sum();

    let mut durations: Vec<f64> = trace
        .jobs
        .iter()
        .map(|j| j.observed_duration(censor_time) as f64)
        .collect();
    durations.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        if durations.is_empty() {
            0.0
        } else {
            // lint:allow(lossy-cast): p is a fixed quantile in [0, 1]; the product is finite and in range
            durations[((durations.len() - 1) as f64 * p).round() as usize]
        }
    };

    let hist = flavor_histogram(trace);
    let total: u64 = hist.iter().sum();
    let mut entropy = 0.0;
    let mut top = 0u64;
    for &c in &hist {
        top = top.max(c);
        if c > 0 && total > 0 {
            let p = c as f64 / total as f64;
            entropy -= p * p.log2();
        }
    }

    TraceSummary {
        jobs: trace.len(),
        batches,
        active_periods: periods.len(),
        jobs_per_active_period: trace.len() as f64 / periods.len().max(1) as f64,
        mean_batch_size: total_batch_jobs as f64 / batches.max(1) as f64,
        max_batch_size,
        censored_fraction: trace.censored_fraction(),
        lifetime_quantiles: (q(0.25), q(0.5), q(0.9), q(0.99)),
        flavor_entropy_bits: entropy,
        top_flavor_share: if total == 0 { 0.0 } else { top as f64 / total as f64 },
    }
}

/// Divergences between a generated trace and a reference trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceDivergence {
    /// L1 distance between normalized flavor histograms (0 = identical,
    /// 2 = disjoint).
    pub flavor_l1: f64,
    /// L1 distance between normalized batch-size histograms.
    pub batch_size_l1: f64,
    /// Relative difference in arrival volume per period.
    pub volume_rel_err: f64,
}

/// Compares a candidate trace against a reference over the same horizon (in
/// periods).
pub fn compare(reference: &Trace, candidate: &Trace, n_periods: u64) -> TraceDivergence {
    let flavor_l1 = normalized_l1(
        &flavor_histogram(reference),
        &flavor_histogram(candidate),
    );
    let ref_sizes = batch_size_histogram(&organize_periods(reference));
    let cand_sizes = batch_size_histogram(&organize_periods(candidate));
    let batch_size_l1 = normalized_l1(&ref_sizes, &cand_sizes);
    let ref_vol = reference.len() as f64 / n_periods.max(1) as f64;
    let cand_vol = candidate.len() as f64 / n_periods.max(1) as f64;
    // lint:allow(float-eq): exact-zero guard before division; an empty reference is exactly 0.0
    let volume_rel_err = if ref_vol == 0.0 {
        0.0
    } else {
        (cand_vol - ref_vol).abs() / ref_vol
    };
    TraceDivergence {
        flavor_l1,
        batch_size_l1,
        volume_rel_err,
    }
}

/// L1 distance between two count vectors after normalizing each to sum 1
/// (shorter vectors are zero-padded).
fn normalized_l1(a: &[u64], b: &[u64]) -> f64 {
    let sa: u64 = a.iter().sum();
    let sb: u64 = b.iter().sum();
    if sa == 0 || sb == 0 {
        return if sa == sb { 0.0 } else { 2.0 };
    }
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            let pa = a.get(i).copied().unwrap_or(0) as f64 / sa as f64;
            let pb = b.get(i).copied().unwrap_or(0) as f64 / sb as f64;
            (pa - pb).abs()
        })
        .sum()
}

/// Mean inter-arrival gap in seconds between consecutive jobs (0 for fewer
/// than two jobs). Quantized traces measure this at period granularity.
pub fn mean_interarrival_secs(trace: &Trace) -> f64 {
    if trace.len() < 2 {
        return 0.0;
    }
    // lint:allow(no-panic): guarded by the len() < 2 early return above
    let span = trace.jobs.last().expect("non-empty").start - trace.jobs[0].start;
    span as f64 / (trace.len() - 1) as f64
}

/// Fraction of consecutive job pairs sharing a flavor — the raw momentum
/// signal behind Figure 1.
pub fn consecutive_flavor_repeat_rate(trace: &Trace) -> f64 {
    if trace.len() < 2 {
        return 0.0;
    }
    let same = trace
        .jobs
        .windows(2)
        .filter(|w| w[0].flavor == w[1].flavor)
        .count();
    same as f64 / (trace.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{FlavorCatalog, FlavorId};
    use crate::job::{Job, UserId};

    fn mk_trace(entries: Vec<(u64, u16, u32, Option<u64>)>) -> Trace {
        let jobs = entries
            .into_iter()
            .map(|(s, f, u, e)| Job {
                start: s,
                end: e,
                flavor: FlavorId(f),
                user: UserId(u),
            })
            .collect();
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn summary_of_simple_trace() {
        // Period 0: user 0 batch of 2, user 1 batch of 1. Period 1: user 0.
        let t = mk_trace(vec![
            (0, 1, 0, Some(600)),
            (0, 1, 0, Some(600)),
            (10, 2, 1, Some(1200)),
            (300, 1, 0, None),
        ]);
        let s = summarize(&t, 3600);
        assert_eq!(s.jobs, 4);
        assert_eq!(s.batches, 3);
        assert_eq!(s.active_periods, 2);
        assert_eq!(s.max_batch_size, 2);
        assert!((s.mean_batch_size - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.censored_fraction - 0.25).abs() < 1e-12);
        // Top flavor (1) has 3 of 4 requests.
        assert!((s.top_flavor_share - 0.75).abs() < 1e-12);
        assert!(s.flavor_entropy_bits > 0.0);
    }

    #[test]
    fn lifetime_quantiles_ordered() {
        let t = mk_trace(
            (0..100)
                .map(|i| (i * 300, 0u16, i as u32, Some(i * 300 + (i + 1) * 60)))
                .collect(),
        );
        let s = summarize(&t, u64::MAX / 2);
        let (q25, q50, q90, q99) = s.lifetime_quantiles;
        assert!(q25 <= q50 && q50 <= q90 && q90 <= q99);
        assert!(q25 > 0.0);
    }

    #[test]
    fn identical_traces_have_zero_divergence() {
        let t = mk_trace(vec![(0, 1, 0, Some(600)), (0, 1, 0, Some(600))]);
        let d = compare(&t, &t.clone(), 10);
        assert_eq!(d.flavor_l1, 0.0);
        assert_eq!(d.batch_size_l1, 0.0);
        assert_eq!(d.volume_rel_err, 0.0);
    }

    #[test]
    fn disjoint_flavors_have_max_divergence() {
        let a = mk_trace(vec![(0, 1, 0, None)]);
        let b = mk_trace(vec![(0, 2, 0, None)]);
        let d = compare(&a, &b, 1);
        assert!((d.flavor_l1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn momentum_rate_detects_repeats() {
        let high = mk_trace(vec![(0, 1, 0, None), (1, 1, 0, None), (2, 1, 0, None)]);
        let low = mk_trace(vec![(0, 1, 0, None), (1, 2, 0, None), (2, 3, 0, None)]);
        assert!(consecutive_flavor_repeat_rate(&high) > consecutive_flavor_repeat_rate(&low));
        assert_eq!(consecutive_flavor_repeat_rate(&high), 1.0);
    }

    #[test]
    fn interarrival_mean() {
        let t = mk_trace(vec![(0, 0, 0, None), (300, 0, 0, None), (600, 0, 0, None)]);
        assert!((mean_interarrival_secs(&t) - 300.0).abs() < 1e-12);
        let single = mk_trace(vec![(0, 0, 0, None)]);
        assert_eq!(mean_interarrival_secs(&single), 0.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new(vec![], FlavorCatalog::azure16());
        let s = summarize(&t, 100);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.batches, 0);
    }
}
