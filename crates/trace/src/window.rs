//! Observation windows and censoring.
//!
//! Following §3 of the paper: each experimental window (train / dev / test)
//! is treated as a distinct observation window. Jobs already running at the
//! window start are discarded (avoiding survivorship bias); jobs still
//! running at the window end are right-censored there. Optionally the
//! censoring point can extend past the window end (the Huawei test window is
//! censored two months after its end).

use crate::job::{Job, Trace};
use serde::{Deserialize, Serialize};

/// A half-open observation window `[start, end)` with a censoring horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationWindow {
    /// Window start (inclusive), seconds.
    pub start: u64,
    /// Window end (exclusive), seconds. Jobs must *start* before this.
    pub end: u64,
    /// Censoring horizon: lifetimes are observed up to this time. Usually
    /// equal to `end`, but may be later (extended monitoring).
    pub censor_at: u64,
}

impl ObservationWindow {
    /// A window censored at its own end.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end > start, "window end must exceed start");
        Self {
            start,
            end,
            censor_at: end,
        }
    }

    /// A window with extended monitoring: lifetimes observed until
    /// `censor_at >= end`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` or `censor_at < end`.
    pub fn with_extended_censoring(start: u64, end: u64, censor_at: u64) -> Self {
        assert!(end > start, "window end must exceed start");
        assert!(censor_at >= end, "censor horizon before window end");
        Self {
            start,
            end,
            censor_at,
        }
    }

    /// Window length in seconds.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True only for zero-length windows (disallowed by constructors).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Applies the window to a trace:
    ///
    /// 1. keeps only jobs with `start` within `[start, end)` — jobs running
    ///    at window start (i.e., started earlier) are discarded;
    /// 2. right-censors any job whose end is unknown or after `censor_at`
    ///    (its `end` becomes `None`);
    /// 3. shifts timestamps so the window start becomes 0.
    ///
    /// The result is the trace exactly as a model training on this window
    /// would see it.
    pub fn apply(&self, trace: &Trace) -> Trace {
        let jobs: Vec<Job> = trace
            .jobs
            .iter()
            .filter(|j| j.start >= self.start && j.start < self.end)
            .map(|j| {
                let end = match j.end {
                    Some(e) if e <= self.censor_at => Some(e - self.start),
                    _ => None,
                };
                Job {
                    start: j.start - self.start,
                    end,
                    flavor: j.flavor,
                    user: j.user,
                }
            })
            .collect();
        Trace::new(jobs, trace.catalog.clone())
    }

    /// Like [`Self::apply`], but keeps absolute timestamps (no shift).
    pub fn apply_unshifted(&self, trace: &Trace) -> Trace {
        let jobs: Vec<Job> = trace
            .jobs
            .iter()
            .filter(|j| j.start >= self.start && j.start < self.end)
            .map(|j| {
                let end = match j.end {
                    Some(e) if e <= self.censor_at => Some(e),
                    _ => None,
                };
                Job { end, ..*j }
            })
            .collect();
        Trace::new(jobs, trace.catalog.clone())
    }
}

/// Splits a history of `total` seconds into train/dev/test windows of the
/// given lengths (in seconds), back to back starting at 0.
///
/// # Panics
///
/// Panics if the lengths exceed `total`.
pub fn split_windows(
    total: u64,
    train: u64,
    dev: u64,
    test: u64,
) -> (ObservationWindow, ObservationWindow, ObservationWindow) {
    assert!(train + dev + test <= total, "splits exceed history length");
    let w_train = ObservationWindow::new(0, train);
    let w_dev = ObservationWindow::new(train, train + dev);
    let w_test = ObservationWindow::new(train + dev, train + dev + test);
    (w_train, w_dev, w_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{FlavorCatalog, FlavorId};
    use crate::job::UserId;

    fn mk_trace(jobs: Vec<(u64, Option<u64>)>) -> Trace {
        let jobs = jobs
            .into_iter()
            .map(|(s, e)| Job {
                start: s,
                end: e,
                flavor: FlavorId(0),
                user: UserId(0),
            })
            .collect();
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn drops_jobs_running_at_window_start() {
        let t = mk_trace(vec![(0, Some(2000)), (500, Some(800)), (900, None)]);
        let w = ObservationWindow::new(300, 1200);
        let out = w.apply(&t);
        assert_eq!(out.len(), 2); // job starting at 0 dropped
        assert_eq!(out.jobs[0].start, 200); // shifted by 300
    }

    #[test]
    fn censors_at_window_end() {
        let t = mk_trace(vec![(100, Some(500)), (200, Some(5000)), (300, None)]);
        let w = ObservationWindow::new(0, 1000);
        let out = w.apply(&t);
        assert_eq!(out.jobs[0].end, Some(500));
        assert_eq!(out.jobs[1].end, None); // ended after censor horizon
        assert_eq!(out.jobs[2].end, None);
    }

    #[test]
    fn extended_censoring_keeps_later_ends() {
        let t = mk_trace(vec![(100, Some(5000)), (200, Some(9000))]);
        let w = ObservationWindow::with_extended_censoring(0, 1000, 6000);
        let out = w.apply(&t);
        assert_eq!(out.jobs[0].end, Some(5000)); // within extended horizon
        assert_eq!(out.jobs[1].end, None); // beyond it
    }

    #[test]
    fn unshifted_keeps_absolute_times() {
        let t = mk_trace(vec![(500, Some(800))]);
        let w = ObservationWindow::new(300, 1200);
        let out = w.apply_unshifted(&t);
        assert_eq!(out.jobs[0].start, 500);
        assert_eq!(out.jobs[0].end, Some(800));
    }

    #[test]
    fn split_windows_are_contiguous() {
        let (tr, dv, te) = split_windows(1000, 600, 200, 200);
        assert_eq!((tr.start, tr.end), (0, 600));
        assert_eq!((dv.start, dv.end), (600, 800));
        assert_eq!((te.start, te.end), (800, 1000));
        assert_eq!(tr.censor_at, 600);
    }

    #[test]
    #[should_panic(expected = "exceed history")]
    fn split_overflow_panics() {
        let _ = split_windows(100, 60, 30, 30);
    }

    #[test]
    fn window_boundaries_half_open() {
        let t = mk_trace(vec![(299, None), (300, None), (599, None), (600, None)]);
        let w = ObservationWindow::new(300, 600);
        let out = w.apply(&t);
        assert_eq!(out.len(), 2); // 300 and 599 kept
    }
}
