//! CSV-style serialization of traces.
//!
//! Format (one job per line, header included):
//!
//! ```text
//! start,end,flavor,user
//! 300,900,3,17
//! 300,,5,17
//! ```
//!
//! An empty `end` field marks a censored job. Flavor catalogs are stored
//! separately (JSON via serde) since many traces share one catalog.

use crate::flavor::{FlavorCatalog, FlavorId};
use crate::job::{Job, Trace, UserId};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Error raised while parsing a trace CSV.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse (line {line}): {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace's jobs as CSV.
pub fn write_csv(trace: &Trace, w: &mut impl Write) -> Result<(), TraceIoError> {
    writeln!(w, "start,end,flavor,user")?;
    for j in &trace.jobs {
        match j.end {
            Some(e) => writeln!(w, "{},{},{},{}", j.start, e, j.flavor.0, j.user.0)?,
            None => writeln!(w, "{},,{},{}", j.start, j.flavor.0, j.user.0)?,
        }
    }
    Ok(())
}

/// Reads jobs from CSV and attaches the given catalog.
// lint:allow(memory-contract): batch loader materializes one whole trace by design, bounded by the input file's row count; the out-of-core streaming reader is ROADMAP item 2
pub fn read_csv(r: impl Read, catalog: FlavorCatalog) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut jobs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if i == 0 {
            if line.trim() != "start,end,flavor,user" {
                return Err(TraceIoError::Parse {
                    line: lineno,
                    message: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(TraceIoError::Parse {
                line: lineno,
                message: format!("expected 4 fields, got {}", parts.len()),
            });
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, TraceIoError> {
            s.trim().parse().map_err(|e| TraceIoError::Parse {
                line: lineno,
                message: format!("bad {what} {s:?}: {e}"),
            })
        };
        let start = parse_u64(parts[0], "start")?;
        let end = if parts[1].trim().is_empty() {
            None
        } else {
            Some(parse_u64(parts[1], "end")?)
        };
        let flavor = parse_u64(parts[2], "flavor")? as u16;
        if (flavor as usize) >= catalog.len() {
            return Err(TraceIoError::Parse {
                line: lineno,
                message: format!("flavor {flavor} out of range ({} flavors)", catalog.len()),
            });
        }
        let user = parse_u64(parts[3], "user")? as u32;
        jobs.push(Job {
            start,
            end,
            flavor: FlavorId(flavor),
            user: UserId(user),
        });
    }
    Ok(Trace::new(jobs, catalog))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let jobs = vec![
            Job {
                start: 0,
                end: Some(600),
                flavor: FlavorId(1),
                user: UserId(4),
            },
            Job {
                start: 300,
                end: None,
                flavor: FlavorId(0),
                user: UserId(9),
            },
        ];
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let t2 = read_csv(buf.as_slice(), t.catalog.clone()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn censored_end_is_empty_field() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("300,,0,9"));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv("nope\n".as_bytes(), FlavorCatalog::azure16()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_field_count() {
        let data = "start,end,flavor,user\n1,2,3\n";
        let err = read_csv(data.as_bytes(), FlavorCatalog::azure16()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_out_of_range_flavor() {
        let data = "start,end,flavor,user\n1,2,99,0\n";
        let err = read_csv(data.as_bytes(), FlavorCatalog::azure16()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("flavor 99 out of range"), "{msg}");
    }

    #[test]
    fn skips_blank_lines() {
        let data = "start,end,flavor,user\n1,2,0,0\n\n";
        let t = read_csv(data.as_bytes(), FlavorCatalog::azure16()).unwrap();
        assert_eq!(t.len(), 1);
    }
}
