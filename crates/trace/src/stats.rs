//! Trace statistics used by evaluation and the use-case experiments.

use crate::job::Trace;
use crate::period::{period_of, PERIOD_SECS};

/// Total requested CPUs active at the start of each period in
/// `[0, n_periods)`.
///
/// A job contributes its flavor's vCPUs to every period whose start time
/// falls within `[job.start, job.end)`; censored jobs contribute until the
/// end of the range. Implemented as a difference array, so cost is
/// `O(jobs + periods)`.
pub fn active_cpus_per_period(trace: &Trace, n_periods: u64) -> Vec<f64> {
    let mut diff = vec![0.0; n_periods as usize + 1];
    for job in &trace.jobs {
        let vcpus = trace.catalog.get(job.flavor).vcpus;
        // First period whose start is >= job.start.
        let p_start = job.start.div_ceil(PERIOD_SECS).min(n_periods);
        let p_end = match job.end {
            // First period whose start is >= job.end (job inactive there).
            Some(e) => e.div_ceil(PERIOD_SECS).min(n_periods),
            None => n_periods,
        };
        if p_start < p_end {
            diff[p_start as usize] += vcpus;
            diff[p_end as usize] -= vcpus;
        }
    }
    let mut out = Vec::with_capacity(n_periods as usize);
    let mut acc = 0.0;
    for d in diff.iter().take(n_periods as usize) {
        acc += d;
        out.push(acc);
    }
    out
}

/// Histogram of flavor usage: `counts[f]` is the number of jobs requesting
/// flavor `f`.
pub fn flavor_histogram(trace: &Trace) -> Vec<u64> {
    let mut counts = vec![0u64; trace.catalog.len()];
    for job in &trace.jobs {
        counts[job.flavor.0 as usize] += 1;
    }
    counts
}

/// Job arrivals per period over `[0, n_periods)`.
pub fn arrivals_per_period(trace: &Trace, n_periods: u64) -> Vec<f64> {
    let mut counts = vec![0.0; n_periods as usize];
    for job in &trace.jobs {
        let p = period_of(job.start);
        if p < n_periods {
            counts[p as usize] += 1.0;
        }
    }
    counts
}

/// Total core-hours consumed within `[0, horizon)` seconds.
///
/// Censored jobs are counted up to the horizon.
pub fn total_core_hours(trace: &Trace, horizon: u64) -> f64 {
    let mut total = 0.0;
    for job in &trace.jobs {
        let start = job.start.min(horizon);
        let end = job.end.unwrap_or(horizon).min(horizon);
        if end > start {
            total += trace.catalog.get(job.flavor).vcpus * (end - start) as f64 / 3600.0;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{FlavorCatalog, FlavorId};
    use crate::job::{Job, UserId};

    fn catalog() -> FlavorCatalog {
        FlavorCatalog::azure16() // flavor 0 has 1 vCPU
    }

    fn job(start: u64, end: Option<u64>, flavor: u16) -> Job {
        Job {
            start,
            end,
            flavor: FlavorId(flavor),
            user: UserId(0),
        }
    }

    #[test]
    fn active_cpus_simple() {
        // Flavor 0 = 1 vCPU. One job active periods 1..3 ([300, 900)).
        let t = Trace::new(vec![job(300, Some(900), 0)], catalog());
        assert_eq!(active_cpus_per_period(&t, 4), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn active_cpus_censored_runs_forever() {
        let t = Trace::new(vec![job(0, None, 0)], catalog());
        assert_eq!(active_cpus_per_period(&t, 3), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn active_cpus_mid_period_start_counts_next_period() {
        // Starts at 100 (inside period 0 but after its start snapshot at 0).
        let t = Trace::new(vec![job(100, None, 0)], catalog());
        assert_eq!(active_cpus_per_period(&t, 2), vec![0.0, 1.0]);
    }

    #[test]
    fn active_cpus_overlapping_jobs_sum() {
        let t = Trace::new(
            vec![job(0, Some(600), 0), job(300, Some(900), 0)],
            catalog(),
        );
        assert_eq!(active_cpus_per_period(&t, 3), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn flavor_histogram_counts() {
        let t = Trace::new(
            vec![job(0, None, 0), job(1, None, 3), job(2, None, 3)],
            catalog(),
        );
        let h = flavor_histogram(&t);
        assert_eq!(h[0], 1);
        assert_eq!(h[3], 2);
        assert_eq!(h.iter().sum::<u64>(), 3);
    }

    #[test]
    fn arrivals_per_period_counts() {
        let t = Trace::new(
            vec![job(0, None, 0), job(10, None, 0), job(310, None, 0)],
            catalog(),
        );
        assert_eq!(arrivals_per_period(&t, 3), vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn core_hours_accounts_horizon() {
        // 1 vCPU for 7200 s = 2 core-hours; censored counted to horizon.
        let t = Trace::new(vec![job(0, Some(7200), 0), job(0, None, 0)], catalog());
        let ch = total_core_hours(&t, 7200);
        assert!((ch - 4.0).abs() < 1e-12);
    }
}
