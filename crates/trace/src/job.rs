//! Job records and whole traces.

use crate::flavor::{FlavorCatalog, FlavorId};
use serde::{Deserialize, Serialize};

/// Anonymized user identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// One job (VM) record in a trace.
///
/// Timestamps are seconds since the trace epoch, quantized to 5-minute
/// periods. `end` is `None` for jobs still running at collection time
/// (right-censored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Start timestamp (seconds since trace epoch).
    pub start: u64,
    /// End timestamp, or `None` if right-censored.
    pub end: Option<u64>,
    /// Requested flavor.
    pub flavor: FlavorId,
    /// Submitting user.
    pub user: UserId,
}

impl Job {
    /// Observed duration: time from start to end, or to `censor_time` for a
    /// censored job.
    ///
    /// Returns 0 if the reference time precedes the start.
    pub fn observed_duration(&self, censor_time: u64) -> u64 {
        let end = self.end.unwrap_or(censor_time);
        end.saturating_sub(self.start)
    }

    /// True if the job has no recorded end.
    pub fn is_censored(&self) -> bool {
        self.end.is_none()
    }

    /// True if the job is running at time `t` (started, not yet ended).
    pub fn active_at(&self, t: u64) -> bool {
        self.start <= t && self.end.map_or(true, |e| e > t)
    }
}

/// A workload trace: an ordered list of jobs plus the flavor catalog.
///
/// Job order is meaningful: within a 5-minute period it reflects the actual
/// arrival order (as in the Azure V1 `vmtable.csv`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Jobs in arrival order.
    pub jobs: Vec<Job>,
    /// The flavor catalog jobs reference.
    pub catalog: FlavorCatalog,
}

impl Trace {
    /// Creates a trace, validating that jobs are sorted by start time and
    /// reference valid flavors.
    ///
    /// # Panics
    ///
    /// Panics if jobs are out of order, any end precedes its start, or a
    /// flavor id is out of range.
    pub fn new(jobs: Vec<Job>, catalog: FlavorCatalog) -> Self {
        for w in jobs.windows(2) {
            assert!(w[0].start <= w[1].start, "jobs not sorted by start time");
        }
        for (i, j) in jobs.iter().enumerate() {
            assert!(
                (j.flavor.0 as usize) < catalog.len(),
                "job {i} has invalid flavor"
            );
            if let Some(e) = j.end {
                assert!(e >= j.start, "job {i} ends before it starts");
            }
        }
        Self { jobs, catalog }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Timestamp of the last job start (0 for an empty trace).
    pub fn last_start(&self) -> u64 {
        self.jobs.last().map_or(0, |j| j.start)
    }

    /// Fraction of jobs that are censored.
    pub fn censored_fraction(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.is_censored()).count() as f64 / self.jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> FlavorCatalog {
        FlavorCatalog::azure16()
    }

    fn job(start: u64, end: Option<u64>) -> Job {
        Job {
            start,
            end,
            flavor: FlavorId(0),
            user: UserId(1),
        }
    }

    #[test]
    fn observed_duration_event_and_censored() {
        let done = job(300, Some(900));
        assert_eq!(done.observed_duration(10_000), 600);
        let running = job(300, None);
        assert_eq!(running.observed_duration(1500), 1200);
        assert!(!done.is_censored());
        assert!(running.is_censored());
    }

    #[test]
    fn active_at_boundaries() {
        let j = job(300, Some(900));
        assert!(!j.active_at(299));
        assert!(j.active_at(300));
        assert!(j.active_at(899));
        assert!(!j.active_at(900));
        let censored = job(300, None);
        assert!(censored.active_at(1_000_000));
    }

    #[test]
    fn trace_validates_order() {
        let t = Trace::new(vec![job(0, Some(300)), job(300, None)], catalog());
        assert_eq!(t.len(), 2);
        assert_eq!(t.last_start(), 300);
        assert!((t.censored_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn trace_rejects_unsorted() {
        let _ = Trace::new(vec![job(600, None), job(300, None)], catalog());
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn trace_rejects_negative_duration() {
        let _ = Trace::new(vec![job(600, Some(300))], catalog());
    }

    #[test]
    #[should_panic(expected = "invalid flavor")]
    fn trace_rejects_bad_flavor() {
        let bad = Job {
            start: 0,
            end: None,
            flavor: FlavorId(999),
            user: UserId(0),
        };
        let _ = Trace::new(vec![bad], catalog());
    }
}
