//! Five-minute periods and temporal features.
//!
//! All three model stages condition on coarse temporal information about the
//! period being generated (§2.1.2): hour-of-day and day-of-week (one-hot
//! encoded) plus day-of-history (survival-encoded). This module computes
//! those features and packs them into feature vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds per generation period (5 minutes).
pub const PERIOD_SECS: u64 = 300;

/// Seconds per day.
pub const DAY_SECS: u64 = 86_400;

/// Periods per day.
pub const PERIODS_PER_DAY: u64 = DAY_SECS / PERIOD_SECS;

/// Index of the period containing timestamp `t`.
pub fn period_of(t: u64) -> u64 {
    t / PERIOD_SECS
}

/// Start timestamp of period `p`.
pub fn period_start(p: u64) -> u64 {
    p * PERIOD_SECS
}

/// Temporal information about one period.
///
/// The epoch (timestamp 0) is treated as hour 0 of day-of-week 0 of
/// day-of-history 0; the Azure trace does not publish its real-world
/// offset, and the paper notes the mapping offset is arbitrary for modeling
/// seasonality.
///
/// Invariant: `hour_of_day < 24` and `day_of_week < 7`, enforced at every
/// construction path including deserialization — the fields are private so
/// an out-of-range value cannot exist. (The feature encoder used to mask
/// values with `% 24` / `% 7` instead, which silently relabelled corrupt
/// inputs as a different hour or weekday.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "RawTemporalInfo")]
pub struct TemporalInfo {
    /// Hour of day, `0..24`.
    hour_of_day: u8,
    /// Day of week, `0..7`.
    day_of_week: u8,
    /// Day since the start of the trace history, `0..`.
    day_of_history: u32,
}

/// An out-of-range [`TemporalInfo`] component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalInfoError {
    /// Hour of day was not in `0..24`.
    InvalidHourOfDay(u8),
    /// Day of week was not in `0..7`.
    InvalidDayOfWeek(u8),
}

impl fmt::Display for TemporalInfoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalInfoError::InvalidHourOfDay(h) => {
                write!(f, "hour_of_day {h} out of range 0..24")
            }
            TemporalInfoError::InvalidDayOfWeek(d) => {
                write!(f, "day_of_week {d} out of range 0..7")
            }
        }
    }
}

impl std::error::Error for TemporalInfoError {}

/// Unvalidated wire form of [`TemporalInfo`]; deserialization funnels
/// through `TryFrom` so corrupt files are rejected instead of masked.
#[derive(Deserialize)]
struct RawTemporalInfo {
    hour_of_day: u8,
    day_of_week: u8,
    day_of_history: u32,
}

impl TryFrom<RawTemporalInfo> for TemporalInfo {
    type Error = TemporalInfoError;

    fn try_from(raw: RawTemporalInfo) -> Result<Self, Self::Error> {
        TemporalInfo::new(raw.hour_of_day, raw.day_of_week, raw.day_of_history)
    }
}

impl TemporalInfo {
    /// Validated construction.
    ///
    /// # Errors
    ///
    /// [`TemporalInfoError`] when `hour_of_day >= 24` or `day_of_week >= 7`.
    pub fn new(
        hour_of_day: u8,
        day_of_week: u8,
        day_of_history: u32,
    ) -> Result<Self, TemporalInfoError> {
        if hour_of_day >= 24 {
            return Err(TemporalInfoError::InvalidHourOfDay(hour_of_day));
        }
        if day_of_week >= 7 {
            return Err(TemporalInfoError::InvalidDayOfWeek(day_of_week));
        }
        Ok(Self {
            hour_of_day,
            day_of_week,
            day_of_history,
        })
    }

    /// Computes temporal info for period index `p`.
    pub fn of_period(p: u64) -> Self {
        let t = period_start(p);
        let day = t / DAY_SECS;
        // In range by construction: % DAY_SECS / 3600 < 24, % 7 < 7.
        Self {
            hour_of_day: ((t % DAY_SECS) / 3600) as u8,
            day_of_week: (day % 7) as u8,
            day_of_history: day as u32,
        }
    }

    /// Hour of day, `0..24`.
    pub fn hour_of_day(&self) -> u8 {
        self.hour_of_day
    }

    /// Day of week, `0..7`.
    pub fn day_of_week(&self) -> u8 {
        self.day_of_week
    }

    /// Day since the start of the trace history.
    pub fn day_of_history(&self) -> u32 {
        self.day_of_history
    }
}

/// Specification for encoding [`TemporalInfo`] into a feature vector.
///
/// Layout: 24 one-hot hour-of-day features, 7 one-hot day-of-week features,
/// then `history_days` survival-encoded day-of-history features (element `d`
/// is 1 iff `day_of_history >= d`). The survival encoding lets a linear
/// model express arbitrary piecewise-constant trends and change-points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalFeaturesSpec {
    /// Number of day-of-history features (the training history length).
    pub history_days: usize,
    /// Whether to include the day-of-history block at all.
    pub use_doh: bool,
}

impl TemporalFeaturesSpec {
    /// A spec covering `history_days` days with DOH features enabled.
    pub fn new(history_days: usize) -> Self {
        Self {
            history_days,
            use_doh: true,
        }
    }

    /// A spec with day-of-history features disabled (the ablation in §6.1).
    pub fn without_doh() -> Self {
        Self {
            history_days: 0,
            use_doh: false,
        }
    }

    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        24 + 7 + if self.use_doh { self.history_days } else { 0 }
    }

    /// Encodes temporal info into `out[offset..offset + dim()]`.
    ///
    /// `doh_override` substitutes the encoded day-of-history (used when
    /// sampling DOH days at generation time, §2.1.2). Days beyond
    /// `history_days - 1` are clamped to the last day.
    ///
    /// # Panics
    ///
    /// Panics if the slice is too short.
    pub fn encode_into(&self, info: TemporalInfo, doh_override: Option<u32>, out: &mut [f64]) {
        let dim = self.dim();
        assert!(
            out.len() >= dim,
            "feature slice too short: {} < {dim}",
            out.len()
        );
        out[..dim].iter_mut().for_each(|x| *x = 0.0);
        // No masking needed: TemporalInfo's construction paths guarantee
        // hour_of_day < 24 and day_of_week < 7.
        out[info.hour_of_day as usize] = 1.0;
        out[24 + info.day_of_week as usize] = 1.0;
        if self.use_doh && self.history_days > 0 {
            let day = doh_override.unwrap_or(info.day_of_history) as usize;
            let day = day.min(self.history_days - 1);
            for d in 0..=day {
                out[31 + d] = 1.0;
            }
        }
    }

    /// Convenience: encodes into a fresh vector.
    pub fn encode(&self, info: TemporalInfo, doh_override: Option<u32>) -> Vec<f64> {
        let mut v = vec![0.0; self.dim()];
        self.encode_into(info, doh_override, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_out_of_range_components() {
        assert_eq!(
            TemporalInfo::new(24, 0, 0),
            Err(TemporalInfoError::InvalidHourOfDay(24))
        );
        assert_eq!(
            TemporalInfo::new(255, 0, 0),
            Err(TemporalInfoError::InvalidHourOfDay(255))
        );
        assert_eq!(
            TemporalInfo::new(0, 7, 0),
            Err(TemporalInfoError::InvalidDayOfWeek(7))
        );
        // Hour is checked first when both are bad.
        assert_eq!(
            TemporalInfo::new(30, 9, 0),
            Err(TemporalInfoError::InvalidHourOfDay(30))
        );
        // Boundary values are accepted; day_of_history is unbounded.
        let info = TemporalInfo::new(23, 6, u32::MAX).unwrap();
        assert_eq!(info.hour_of_day(), 23);
        assert_eq!(info.day_of_week(), 6);
        assert_eq!(info.day_of_history(), u32::MAX);
    }

    #[test]
    fn deserialization_rejects_out_of_range_components() {
        // Out-of-range hour/weekday in a serialized TemporalInfo must be
        // rejected at parse time, not silently relabelled by the old
        // `% 24` / `% 7` masking in the encoder.
        for bad in [
            r#"{"hour_of_day":24,"day_of_week":0,"day_of_history":0}"#,
            r#"{"hour_of_day":0,"day_of_week":7,"day_of_history":0}"#,
        ] {
            assert!(serde_json::from_str::<TemporalInfo>(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn period_math() {
        assert_eq!(period_of(0), 0);
        assert_eq!(period_of(299), 0);
        assert_eq!(period_of(300), 1);
        assert_eq!(period_start(2), 600);
        assert_eq!(PERIODS_PER_DAY, 288);
    }

    #[test]
    fn temporal_info_rolls_over() {
        let p0 = TemporalInfo::of_period(0);
        assert_eq!(
            (p0.hour_of_day, p0.day_of_week, p0.day_of_history),
            (0, 0, 0)
        );
        // 25 hours in: hour 1 of day 1.
        let p = TemporalInfo::of_period(25 * 12);
        assert_eq!((p.hour_of_day, p.day_of_week, p.day_of_history), (1, 1, 1));
        // Day 7 wraps the week.
        let p = TemporalInfo::of_period(7 * PERIODS_PER_DAY);
        assert_eq!(p.day_of_week, 0);
        assert_eq!(p.day_of_history, 7);
    }

    #[test]
    fn encoding_layout() {
        let spec = TemporalFeaturesSpec::new(5);
        assert_eq!(spec.dim(), 24 + 7 + 5);
        let info = TemporalInfo::new(3, 2, 2).unwrap();
        let v = spec.encode(info, None);
        assert_eq!(v[3], 1.0);
        assert_eq!(v.iter().take(24).sum::<f64>(), 1.0);
        assert_eq!(v[24 + 2], 1.0);
        assert_eq!(v[24..31].iter().sum::<f64>(), 1.0);
        // Survival encoding: days 0, 1, 2 set.
        assert_eq!(&v[31..36], &[1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn doh_override_and_clamp() {
        let spec = TemporalFeaturesSpec::new(3);
        let info = TemporalInfo::new(0, 0, 0).unwrap();
        let v = spec.encode(info, Some(1));
        assert_eq!(&v[31..34], &[1.0, 1.0, 0.0]);
        // Beyond history clamps to the last day.
        let v = spec.encode(info, Some(99));
        assert_eq!(&v[31..34], &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn without_doh_has_no_history_block() {
        let spec = TemporalFeaturesSpec::without_doh();
        assert_eq!(spec.dim(), 31);
        let info = TemporalInfo::new(23, 6, 100).unwrap();
        let v = spec.encode(info, None);
        assert_eq!(v.len(), 31);
        assert_eq!(v[23], 1.0);
        assert_eq!(v[30], 1.0);
    }

    #[test]
    fn encode_into_clears_previous_content() {
        let spec = TemporalFeaturesSpec::new(2);
        let mut buf = vec![9.0; spec.dim() + 3];
        let info = TemporalInfo::new(0, 0, 0).unwrap();
        spec.encode_into(info, None, &mut buf);
        assert_eq!(buf[1], 0.0); // cleared
        assert_eq!(buf[spec.dim()], 9.0); // beyond dim untouched
    }
}
