//! Workload-trace data model for the `cloudgen` workspace.
//!
//! Mirrors the structure of the Azure/Huawei VM traces the paper trains on
//! (§2, §3): a trace is a list of jobs, each with a start time, an optional
//! end time (absent for jobs still running when the trace was collected), a
//! requested flavor, and an anonymized user id. Time is in seconds and job
//! timestamps are quantized to 5-minute periods.
//!
//! - [`Flavor`] / [`FlavorCatalog`]: the discrete resource bundles VMs are
//!   drawn from.
//! - [`Job`] / [`Trace`]: the raw demand records.
//! - [`period`]: 5-minute periods and the temporal features (hour-of-day,
//!   day-of-week, day-of-history) used by every model stage.
//! - [`window`]: observation windows and the left/right censoring rules of
//!   §3 (drop jobs running at window start; right-censor at window end).
//! - [`batch`]: grouping of jobs into per-user, per-period batches — the unit
//!   the arrival model counts and the sequence models iterate over.
//! - [`stats`]: trace statistics used by evaluation (arrival counts, active
//!   CPU time series, flavor histograms, batch-size distributions).
//! - [`io`]: a simple CSV serialization of traces.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod batch;
pub mod flavor;
pub mod io;
pub mod job;
pub mod period;
pub mod stats;
pub mod window;

pub use analysis::{compare, summarize, TraceDivergence, TraceSummary};
pub use batch::{organize_periods, Batch, PeriodJobs};
pub use flavor::{Flavor, FlavorCatalog, FlavorId};
pub use job::{Job, Trace, UserId};
pub use period::{TemporalFeaturesSpec, TemporalInfo, PERIOD_SECS};
pub use window::ObservationWindow;
