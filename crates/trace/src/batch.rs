//! Grouping jobs into per-user, per-period batches.
//!
//! The paper defines a *batch* as the set of jobs from the same user within
//! the same 5-minute period (§2). Within a batch, jobs are ordered by
//! arrival; batches within a period are ordered by the arrival of their
//! first job. The batch is the unit the arrival model counts, and batch
//! boundaries become EOB tokens in the sequence models.

use crate::job::{Trace, UserId};
use crate::period::period_of;
use serde::{Deserialize, Serialize};

/// One batch: a user's job submissions within one period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// The submitting user.
    pub user: UserId,
    /// Indices into the trace's job list, in arrival order.
    pub jobs: Vec<usize>,
}

impl Batch {
    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the batch holds no jobs (never produced by
    /// [`organize_periods`]).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// All batches within one period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodJobs {
    /// Period index (timestamp / 300 s).
    pub period: u64,
    /// Batches in order of their first job's arrival.
    pub batches: Vec<Batch>,
}

impl PeriodJobs {
    /// Total jobs across all batches.
    pub fn job_count(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }
}

/// Organizes a trace into periods of batches.
///
/// Only periods containing at least one arrival are returned (in ascending
/// period order). Within a period, a user's jobs form one batch even if
/// interleaved with other users' arrivals; job order within the batch and
/// batch order within the period both follow arrival order, matching the
/// paper's training-data organization.
pub fn organize_periods(trace: &Trace) -> Vec<PeriodJobs> {
    let mut result: Vec<PeriodJobs> = Vec::new();
    for (idx, job) in trace.jobs.iter().enumerate() {
        let p = period_of(job.start);
        if result.last().map_or(true, |last| last.period != p) {
            result.push(PeriodJobs {
                period: p,
                batches: Vec::new(),
            });
        }
        // lint:allow(no-panic): the branch above pushes when result is empty
        let period = result.last_mut().expect("just pushed");
        match period.batches.iter_mut().find(|b| b.user == job.user) {
            Some(batch) => batch.jobs.push(idx),
            None => period.batches.push(Batch {
                user: job.user,
                jobs: vec![idx],
            }),
        }
    }
    result
}

/// Number of batches per period over a dense period range `[0, n_periods)`.
///
/// Periods with no arrivals get 0. Useful as the regression target for the
/// batch-arrival model.
pub fn batch_counts(periods: &[PeriodJobs], n_periods: u64) -> Vec<f64> {
    let mut counts = vec![0.0; n_periods as usize];
    for p in periods {
        if p.period < n_periods {
            counts[p.period as usize] = p.batches.len() as f64;
        }
    }
    counts
}

/// Number of individual job arrivals per period over `[0, n_periods)`.
pub fn job_counts(periods: &[PeriodJobs], n_periods: u64) -> Vec<f64> {
    let mut counts = vec![0.0; n_periods as usize];
    for p in periods {
        if p.period < n_periods {
            counts[p.period as usize] = p.job_count() as f64;
        }
    }
    counts
}

/// The empirical distribution of batch sizes (used by the SimpleBatch
/// baseline). Index `i` holds the count of batches of size `i + 1`.
pub fn batch_size_histogram(periods: &[PeriodJobs]) -> Vec<u64> {
    let mut hist: Vec<u64> = Vec::new();
    for p in periods {
        for b in &p.batches {
            let size = b.len();
            if hist.len() < size {
                hist.resize(size, 0);
            }
            hist[size - 1] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor::{FlavorCatalog, FlavorId};
    use crate::job::Job;

    fn mk_trace(entries: Vec<(u64, u32)>) -> Trace {
        let jobs = entries
            .into_iter()
            .map(|(s, u)| Job {
                start: s,
                end: None,
                flavor: FlavorId(0),
                user: UserId(u),
            })
            .collect();
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn groups_by_user_within_period() {
        // Period 0: user 1 (x2 interleaved), user 2. Period 2: user 1.
        let t = mk_trace(vec![(0, 1), (10, 2), (20, 1), (700, 1)]);
        let periods = organize_periods(&t);
        assert_eq!(periods.len(), 2);
        assert_eq!(periods[0].period, 0);
        assert_eq!(periods[0].batches.len(), 2);
        // Batch order: user 1 first (arrived first), with jobs 0 and 2.
        assert_eq!(periods[0].batches[0].user, UserId(1));
        assert_eq!(periods[0].batches[0].jobs, vec![0, 2]);
        assert_eq!(periods[0].batches[1].user, UserId(2));
        assert_eq!(periods[1].period, 2);
        assert_eq!(periods[1].batches[0].jobs, vec![3]);
    }

    #[test]
    fn same_user_in_different_periods_is_different_batches() {
        let t = mk_trace(vec![(0, 1), (300, 1)]);
        let periods = organize_periods(&t);
        assert_eq!(periods.len(), 2);
        assert_eq!(periods[0].batches.len(), 1);
        assert_eq!(periods[1].batches.len(), 1);
    }

    #[test]
    fn counts_are_dense() {
        let t = mk_trace(vec![(0, 1), (10, 2), (700, 1)]);
        let periods = organize_periods(&t);
        assert_eq!(batch_counts(&periods, 4), vec![2.0, 0.0, 1.0, 0.0]);
        assert_eq!(job_counts(&periods, 4), vec![2.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn histogram_of_batch_sizes() {
        let t = mk_trace(vec![(0, 1), (1, 1), (2, 1), (3, 2), (300, 3), (301, 3)]);
        let periods = organize_periods(&t);
        // Sizes: 3 (user 1), 1 (user 2), 2 (user 3).
        assert_eq!(batch_size_histogram(&periods), vec![1, 1, 1]);
    }

    #[test]
    fn empty_trace_gives_no_periods() {
        let t = Trace::new(vec![], FlavorCatalog::azure16());
        assert!(organize_periods(&t).is_empty());
    }

    #[test]
    fn job_count_sums_batches() {
        let t = mk_trace(vec![(0, 1), (1, 2), (2, 1)]);
        let periods = organize_periods(&t);
        assert_eq!(periods[0].job_count(), 3);
    }
}
