//! Finite-difference validation of every hand-derived backward pass.
//!
//! These tests are the ground truth for the whole NN substrate: if the LSTM
//! BPTT or the loss gradients were wrong, model training upstream would fail
//! silently. Networks are kept tiny so the O(#params) checker stays fast.

use linalg::Mat;
use nn::gradcheck::check_model_gradients;
use nn::loss::{masked_bce_with_logits, softmax_cross_entropy};
use nn::{Linear, Lstm, LstmNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn inputs(steps: usize, batch: usize, dim: usize, rng: &mut impl Rng) -> Vec<Mat> {
    (0..steps)
        .map(|_| Mat::from_fn(batch, dim, |_, _| rng.gen_range(-1.0..1.0)))
        .collect()
}

#[test]
fn linear_gradients_match_finite_difference() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut layer = Linear::new(3, 2, &mut rng);
    let x = Mat::from_fn(4, 3, |_, _| rng.gen_range(-1.0..1.0));
    let targets = vec![0usize, 1, 0, 1];

    let x2 = x.clone();
    let t2 = targets.clone();
    let mism = check_model_gradients(
        &mut layer,
        |l| l.params_mut(),
        move |l| {
            let y = l.forward(&x2);
            let (loss, _, _) = softmax_cross_entropy(&y, &t2);
            loss
        },
        move |l| {
            l.zero_grad();
            let y = l.forward(&x);
            let (_, _, d) = softmax_cross_entropy(&y, &targets);
            let _ = l.backward(&x, &d);
        },
        1e-6,
        1e-5,
    );
    assert!(mism.is_empty(), "linear mismatches: {mism:?}");
}

#[test]
fn lstm_single_layer_bptt_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut lstm = Lstm::new(2, 3, 1, &mut rng);
    let xs = inputs(4, 2, 2, &mut rng);

    // Loss: sum of squares of all hidden outputs (simple, smooth).
    let loss_fn = |lstm: &Lstm, xs: &[Mat]| -> f64 {
        let (out, _) = lstm.forward(xs);
        out.iter()
            .map(|h| h.as_slice().iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            * 0.5
    };

    let xs2 = xs.clone();
    let mism = check_model_gradients(
        &mut lstm,
        |l| l.params_mut(),
        move |l| loss_fn(l, &xs2),
        move |l| {
            l.zero_grad();
            let (out, cache) = l.forward(&xs);
            // d(0.5 * sum h^2)/dh = h.
            let d: Vec<Mat> = out.clone();
            let _ = l.backward(&cache, &d);
        },
        1e-6,
        1e-5,
    );
    assert!(
        mism.is_empty(),
        "lstm mismatches ({}): {:?}",
        mism.len(),
        &mism[..mism.len().min(5)]
    );
}

#[test]
fn lstm_two_layer_bptt_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut lstm = Lstm::new(2, 2, 2, &mut rng);
    let xs = inputs(3, 1, 2, &mut rng);

    let loss_fn = |lstm: &Lstm, xs: &[Mat]| -> f64 {
        let (out, _) = lstm.forward(xs);
        out.iter().map(|h| h.sum()).sum()
    };

    let xs2 = xs.clone();
    let mism = check_model_gradients(
        &mut lstm,
        |l| l.params_mut(),
        move |l| loss_fn(l, &xs2),
        move |l| {
            l.zero_grad();
            let (out, cache) = l.forward(&xs);
            let d: Vec<Mat> = out
                .iter()
                .map(|h| Mat::filled(h.rows(), h.cols(), 1.0))
                .collect();
            let _ = l.backward(&cache, &d);
        },
        1e-6,
        1e-5,
    );
    assert!(
        mism.is_empty(),
        "2-layer mismatches ({}): {:?}",
        mism.len(),
        &mism[..mism.len().min(5)]
    );
}

#[test]
fn network_with_softmax_loss_matches_finite_difference() {
    // End-to-end: LSTM + head + softmax cross-entropy — exactly the flavor
    // model's training configuration.
    let mut rng = StdRng::seed_from_u64(13);
    let mut net = LstmNetwork::new(3, 3, 2, 4, &mut rng);
    let xs = inputs(4, 2, 3, &mut rng);
    let targets: Vec<Vec<usize>> = (0..4).map(|t| vec![t % 4, (t + 1) % 4]).collect();

    let loss_fn = |net: &LstmNetwork, xs: &[Mat], targets: &[Vec<usize>]| -> f64 {
        let (logits, _) = net.forward(xs);
        logits
            .iter()
            .zip(targets)
            .map(|(l, t)| softmax_cross_entropy(l, t).0)
            .sum()
    };

    let xs2 = xs.clone();
    let t2 = targets.clone();
    let mism = check_model_gradients(
        &mut net,
        |n| n.params_mut(),
        move |n| loss_fn(n, &xs2, &t2),
        move |n| {
            n.zero_grad();
            let (logits, cache) = n.forward(&xs);
            let d: Vec<Mat> = logits
                .iter()
                .zip(&targets)
                .map(|(l, t)| softmax_cross_entropy(l, t).2)
                .collect();
            let _ = n.backward(&cache, &d);
        },
        1e-6,
        1e-5,
    );
    assert!(
        mism.is_empty(),
        "network mismatches ({}): {:?}",
        mism.len(),
        &mism[..mism.len().min(5)]
    );
}

#[test]
fn network_with_skip_connection_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(15);
    let mut net = LstmNetwork::with_skip(3, 3, 1, 4, &mut rng);
    let xs = inputs(3, 2, 3, &mut rng);
    let targets: Vec<Vec<usize>> = (0..3).map(|t| vec![t % 4, (t + 2) % 4]).collect();

    let xs2 = xs.clone();
    let t2 = targets.clone();
    let mism = check_model_gradients(
        &mut net,
        |n| n.params_mut(),
        move |n| {
            let (logits, _) = n.forward(&xs2);
            logits
                .iter()
                .zip(&t2)
                .map(|(l, t)| softmax_cross_entropy(l, t).0)
                .sum()
        },
        move |n| {
            n.zero_grad();
            let (logits, cache) = n.forward(&xs);
            let d: Vec<Mat> = logits
                .iter()
                .zip(&targets)
                .map(|(l, t)| softmax_cross_entropy(l, t).2)
                .collect();
            let _ = n.backward(&cache, &d);
        },
        1e-6,
        1e-5,
    );
    assert!(
        mism.is_empty(),
        "skip-network mismatches ({}): {:?}",
        mism.len(),
        &mism[..mism.len().min(5)]
    );
}

#[test]
fn network_with_masked_bce_matches_finite_difference() {
    // End-to-end: LSTM + head + masked BCE — exactly the lifetime (hazard)
    // model's training configuration, including censoring-style masks.
    let mut rng = StdRng::seed_from_u64(14);
    let bins = 4;
    let mut net = LstmNetwork::new(2, 3, 1, bins, &mut rng);
    let xs = inputs(3, 2, 2, &mut rng);
    // Hazard-style targets: one event bin per row; mask covers bins up to the
    // event (uncensored) or stops early (censored).
    let targets: Vec<Mat> = (0..3)
        .map(|t| Mat::from_fn(2, bins, |r, c| if c == (t + r) % bins { 1.0 } else { 0.0 }))
        .collect();
    let masks: Vec<Mat> = (0..3)
        .map(|t| Mat::from_fn(2, bins, |r, c| if c <= (t + r) % bins { 1.0 } else { 0.0 }))
        .collect();

    let loss_fn = |net: &LstmNetwork, xs: &[Mat], ts: &[Mat], ms: &[Mat]| -> f64 {
        let (logits, _) = net.forward(xs);
        logits
            .iter()
            .zip(ts.iter().zip(ms))
            .map(|(l, (t, m))| masked_bce_with_logits(l, t, m).0)
            .sum()
    };

    let xs2 = xs.clone();
    let t2 = targets.clone();
    let m2 = masks.clone();
    let mism = check_model_gradients(
        &mut net,
        |n| n.params_mut(),
        move |n| loss_fn(n, &xs2, &t2, &m2),
        move |n| {
            n.zero_grad();
            let (logits, cache) = n.forward(&xs);
            let d: Vec<Mat> = logits
                .iter()
                .zip(targets.iter().zip(&masks))
                .map(|(l, (t, m))| masked_bce_with_logits(l, t, m).2)
                .collect();
            let _ = n.backward(&cache, &d);
        },
        1e-6,
        1e-5,
    );
    assert!(
        mism.is_empty(),
        "hazard-net mismatches ({}): {:?}",
        mism.len(),
        &mism[..mism.len().min(5)]
    );
}
