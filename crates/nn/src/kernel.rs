//! Fused single-pass LSTM gate kernels.
//!
//! One sweep per batch row applies the gate nonlinearities (sigmoid on
//! i/f/o, tanh on g), the cell update `c = f∘c_prev + i∘g`, `tanh(c)`,
//! and `h = o∘tanh(c)` — replacing the unfused path's separate
//! nonlinearity pass, per-element `column / hidden` block arithmetic, and
//! three extra matrix allocations per timestep. The backward kernel fuses
//! the eight derivative-from-output products the same way.
//!
//! Both kernels are purely elementwise: every output element depends only
//! on same-index inputs, evaluated with exactly the scalar expressions
//! the unfused reference used. Fusion therefore changes instruction
//! scheduling but not a single rounding — fused and reference paths are
//! byte-for-byte identical (pinned by `tests/bit_identity.rs`).
//!
//! Gate layout in all `4H`-wide buffers is `[i, f, g, o]`, matching the
//! weight layout in [`crate::lstm::LstmLayer`].

use linalg::numeric::{dsigmoid_from_output, dtanh_from_output, sigmoid};

/// Fused forward gate sweep for one timestep.
///
/// `gates` holds the pre-activations `z = [x|h_prev]·W + b` on entry and
/// the post-nonlinearity activations on exit (the backward pass needs
/// them). `c_prev` is read; `c`, `tc`, and `h` are fully overwritten.
///
/// All buffers are row-major with `batch` rows: `gates` is
/// `batch x 4*hidden`, the rest `batch x hidden`.
///
/// # Panics
///
/// Panics (debug) on buffer length mismatches.
pub fn gate_forward(
    gates: &mut [f64],
    c_prev: &[f64],
    c: &mut [f64],
    tc: &mut [f64],
    h: &mut [f64],
    hidden: usize,
) {
    debug_assert_eq!(gates.len() % (4 * hidden), 0, "gates buffer shape");
    debug_assert_eq!(c_prev.len() * 4, gates.len(), "c_prev buffer shape");
    debug_assert_eq!(c.len(), c_prev.len(), "c buffer shape");
    debug_assert_eq!(tc.len(), c_prev.len(), "tc buffer shape");
    debug_assert_eq!(h.len(), c_prev.len(), "h buffer shape");
    for (r, g_row) in gates.chunks_exact_mut(4 * hidden).enumerate() {
        let at = r * hidden;
        let cp_row = &c_prev[at..at + hidden];
        let c_row = &mut c[at..at + hidden];
        let tc_row = &mut tc[at..at + hidden];
        let h_row = &mut h[at..at + hidden];
        let (ifg, o_blk) = g_row.split_at_mut(3 * hidden);
        let (i_blk, fg) = ifg.split_at_mut(hidden);
        let (f_blk, g_blk) = fg.split_at_mut(hidden);
        for j in 0..hidden {
            let i = sigmoid(i_blk[j]);
            let f = sigmoid(f_blk[j]);
            let g = g_blk[j].tanh();
            let o = sigmoid(o_blk[j]);
            i_blk[j] = i;
            f_blk[j] = f;
            g_blk[j] = g;
            o_blk[j] = o;
            let cv = f * cp_row[j] + i * g;
            let t = cv.tanh();
            c_row[j] = cv;
            tc_row[j] = t;
            h_row[j] = o * t;
        }
    }
}

/// Fused backward gate sweep for one timestep.
///
/// Inputs are the cached forward activations (`gates` post-nonlinearity,
/// `tc`, `c_prev`), the hidden gradient `dh` arriving at this step, and
/// the running cell gradient `dc_in` from the step after. `dz` (the
/// pre-activation gradient, `batch x 4*hidden`) and `dc_prev` are fully
/// overwritten — callers reuse both buffers across timesteps.
///
/// # Panics
///
/// Panics (debug) on buffer length mismatches.
#[allow(clippy::too_many_arguments)]
pub fn gate_backward(
    gates: &[f64],
    tc: &[f64],
    c_prev: &[f64],
    dh: &[f64],
    dc_in: &[f64],
    dz: &mut [f64],
    dc_prev: &mut [f64],
    hidden: usize,
) {
    debug_assert_eq!(gates.len() % (4 * hidden), 0, "gates buffer shape");
    debug_assert_eq!(tc.len() * 4, gates.len(), "tc buffer shape");
    debug_assert_eq!(c_prev.len(), tc.len(), "c_prev buffer shape");
    debug_assert_eq!(dh.len(), tc.len(), "dh buffer shape");
    debug_assert_eq!(dc_in.len(), tc.len(), "dc_in buffer shape");
    debug_assert_eq!(dz.len(), gates.len(), "dz buffer shape");
    debug_assert_eq!(dc_prev.len(), tc.len(), "dc_prev buffer shape");
    for (r, (g_row, dz_row)) in gates
        .chunks_exact(4 * hidden)
        .zip(dz.chunks_exact_mut(4 * hidden))
        .enumerate()
    {
        let at = r * hidden;
        let tc_row = &tc[at..at + hidden];
        let cp_row = &c_prev[at..at + hidden];
        let dh_row = &dh[at..at + hidden];
        let dci_row = &dc_in[at..at + hidden];
        let dcp_row = &mut dc_prev[at..at + hidden];
        let (dz_ifg, dz_o) = dz_row.split_at_mut(3 * hidden);
        let (dz_i, dz_fg) = dz_ifg.split_at_mut(hidden);
        let (dz_f, dz_g) = dz_fg.split_at_mut(hidden);
        for j in 0..hidden {
            let i = g_row[j];
            let f = g_row[hidden + j];
            let g = g_row[2 * hidden + j];
            let o = g_row[3 * hidden + j];
            let t = tc_row[j];
            let dhv = dh_row[j];

            // h = o * tanh(c).
            let d_o = dhv * t;
            let mut dc = dci_row[j] + dhv * o * dtanh_from_output(t);

            // c = f * c_prev + i * g.
            let d_f = dc * cp_row[j];
            let d_i = dc * g;
            let d_g = dc * i;
            dc *= f;
            dcp_row[j] = dc;

            dz_i[j] = d_i * dsigmoid_from_output(i);
            dz_f[j] = d_f * dsigmoid_from_output(f);
            dz_g[j] = d_g * dtanh_from_output(g);
            dz_o[j] = d_o * dsigmoid_from_output(o);
        }
    }
}
