//! Fully-connected (affine) layer with explicit backward pass.

use crate::init::xavier_uniform;
use crate::param::Param;
use linalg::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer computing `y = x · W + b`.
///
/// `x` is `(batch, in_dim)`, `W` is `(in_dim, out_dim)`, `b` is
/// `(1, out_dim)`, and `y` is `(batch, out_dim)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `(in_dim, out_dim)`.
    pub w: Param,
    /// Bias row vector, `(1, out_dim)`.
    pub b: Param,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w: Param::new(xavier_uniform(in_dim, out_dim, rng)),
            b: Param::new(Mat::zeros(1, out_dim)),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Forward pass: `y = x · W + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(self.b.value.row(0));
        y
    }

    /// Backward pass.
    ///
    /// Accumulates `dW += x^T dy` and `db += colsum(dy)`, and returns
    /// `dx = dy · W^T`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `x`, `dy`, and the layer dimensions.
    pub fn backward(&mut self, x: &Mat, dy: &Mat) -> Mat {
        assert_eq!(x.rows(), dy.rows(), "linear backward batch mismatch");
        self.w.grad.axpy(1.0, &x.t_matmul(dy));
        let db = dy.col_sums();
        linalg::matrix::axpy_slice(self.b.grad.row_mut(0), 1.0, &db);
        dy.matmul_t(&self.w.value)
    }

    /// The layer's parameters in stable order (`w`, then `b`).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Resets accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Linear::new(2, 2, &mut rng);
        layer.w.value = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        layer.b.value = Mat::from_rows(&[&[0.5, -0.5]]);
        let x = Mat::from_rows(&[&[1.0, 1.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn backward_accumulates_grads() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Mat::from_fn(4, 3, |r, c| (r + c) as f64 * 0.1);
        let dy = Mat::filled(4, 2, 1.0);
        let dx = layer.backward(&x, &dy);
        assert_eq!(dx.shape(), (4, 3));
        // db = column sums of dy = [4, 4].
        assert_eq!(layer.b.grad.as_slice(), &[4.0, 4.0]);
        // dW = x^T dy.
        let expected = x.t_matmul(&dy);
        assert_eq!(layer.w.grad, expected);
        // Accumulation: calling again doubles.
        let _ = layer.backward(&x, &dy);
        assert_eq!(layer.b.grad.as_slice(), &[8.0, 8.0]);
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Mat::filled(1, 2, 1.0);
        let dy = Mat::filled(1, 2, 1.0);
        let _ = layer.backward(&x, &dy);
        layer.zero_grad();
        assert!(layer.w.grad.as_slice().iter().all(|&g| g == 0.0));
        assert!(layer.b.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn dims_reported() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Linear::new(7, 3, &mut rng);
        assert_eq!(layer.in_dim(), 7);
        assert_eq!(layer.out_dim(), 3);
    }
}
