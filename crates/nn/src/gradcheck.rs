//! Finite-difference gradient checking.
//!
//! Every hand-derived backward pass in this crate is validated against
//! central finite differences. The checker perturbs each parameter entry in
//! turn, so it is only suitable for small networks (tests use hidden sizes of
//! a few units).

use crate::param::Param;

/// Result of a gradient check for one parameter entry.
#[derive(Debug, Clone, Copy)]
pub struct GradMismatch {
    /// Parameter index in the model's parameter list.
    pub param: usize,
    /// Flat entry index within the parameter.
    pub entry: usize,
    /// Analytic gradient.
    pub analytic: f64,
    /// Numeric (central-difference) gradient.
    pub numeric: f64,
}

/// Checks a model's analytic gradients against central finite differences.
///
/// - `backward` must zero gradients, run forward + backward on a fixed input,
///   and leave analytic gradients in the model's parameters.
/// - `loss` must recompute the same scalar loss from the current parameter
///   values without touching gradients.
/// - `params_of` exposes the model's parameters in stable order.
///
/// Returns all entries whose relative error exceeds `tol`, using
/// `|a - n| / max(1, |a| + |n|)` so near-zero gradients don't create noise.
// lint:allow(memory-contract): one GradMismatch per out-of-tolerance parameter entry, bounded by the model's total parameter count; gradcheck is a diagnostic for tiny models, never on the generation path
pub fn check_model_gradients<M>(
    model: &mut M,
    mut params_of: impl FnMut(&mut M) -> Vec<&mut Param>,
    mut loss: impl FnMut(&M) -> f64,
    mut backward: impl FnMut(&mut M),
    eps: f64,
    tol: f64,
) -> Vec<GradMismatch> {
    backward(model);
    // Snapshot analytic gradients (perturbed loss evaluations must not
    // depend on them, but backward may be re-run by callers later).
    let analytic: Vec<Vec<f64>> = params_of(model)
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();

    let mut mismatches = Vec::new();
    let n_params = analytic.len();
    for pi in 0..n_params {
        for ei in 0..analytic[pi].len() {
            let orig = {
                let mut ps = params_of(model);
                let v = ps[pi].value.as_slice()[ei];
                ps[pi].value.as_mut_slice()[ei] = v + eps;
                v
            };
            let fp = loss(model);
            {
                let mut ps = params_of(model);
                ps[pi].value.as_mut_slice()[ei] = orig - eps;
            }
            let fm = loss(model);
            {
                let mut ps = params_of(model);
                ps[pi].value.as_mut_slice()[ei] = orig;
            }
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic[pi][ei];
            let denom = 1.0f64.max(a.abs() + numeric.abs());
            if ((a - numeric).abs() / denom) > tol {
                mismatches.push(GradMismatch {
                    param: pi,
                    entry: ei,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Mat;

    struct Quadratic {
        p: Param,
        correct: bool,
    }

    impl Quadratic {
        fn loss(&self) -> f64 {
            let x = self.p.value[(0, 0)];
            (x - 3.0) * (x - 3.0)
        }

        fn backward(&mut self) {
            self.p.zero_grad();
            let x = self.p.value[(0, 0)];
            self.p.grad[(0, 0)] = if self.correct { 2.0 * (x - 3.0) } else { 42.0 };
        }
    }

    #[test]
    fn accepts_correct_gradient() {
        let mut m = Quadratic {
            p: Param::new(Mat::filled(1, 1, 1.0)),
            correct: true,
        };
        let mism = check_model_gradients(
            &mut m,
            |m| vec![&mut m.p],
            |m| m.loss(),
            |m| m.backward(),
            1e-6,
            1e-6,
        );
        assert!(mism.is_empty(), "{mism:?}");
    }

    #[test]
    fn flags_wrong_gradient() {
        let mut m = Quadratic {
            p: Param::new(Mat::filled(1, 1, 1.0)),
            correct: false,
        };
        let mism = check_model_gradients(
            &mut m,
            |m| vec![&mut m.p],
            |m| m.loss(),
            |m| m.backward(),
            1e-6,
            1e-4,
        );
        assert_eq!(mism.len(), 1);
        assert!((mism[0].numeric - (-4.0)).abs() < 1e-4);
        assert_eq!(mism[0].analytic, 42.0);
    }

    #[test]
    fn perturbation_is_restored() {
        let mut m = Quadratic {
            p: Param::new(Mat::filled(1, 1, 1.25)),
            correct: true,
        };
        let _ = check_model_gradients(
            &mut m,
            |m| vec![&mut m.p],
            |m| m.loss(),
            |m| m.backward(),
            1e-5,
            1e-5,
        );
        assert_eq!(m.p.value[(0, 0)], 1.25);
    }
}
