//! Loss functions with analytic gradients.
//!
//! Both losses return `(total_loss, contributing_count, dlogits)` so the
//! training loop can normalize and feed the gradient straight into the
//! network's backward pass. Gradients correspond to the *summed* loss; divide
//! by the count (or scale `dlogits`) for a mean loss.

use linalg::numeric::{bce_with_logits, log_sum_exp, sigmoid};
use linalg::Mat;

/// Softmax cross-entropy over a batch of logits.
///
/// `logits` is `(batch, classes)`; `targets[r]` is the class index of row
/// `r`. Returns the summed negative log-likelihood, the number of rows, and
/// `dlogits = softmax(logits) - onehot(targets)`.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or any target index is out of
/// range.
pub fn softmax_cross_entropy(logits: &Mat, targets: &[usize]) -> (f64, usize, Mat) {
    assert_eq!(targets.len(), logits.rows(), "target count mismatch");
    let classes = logits.cols();
    let mut loss = 0.0;
    let mut dlogits = Mat::zeros(logits.rows(), classes);
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < classes, "target {t} out of range ({classes} classes)");
        let row = logits.row(r);
        let lse = log_sum_exp(row);
        loss += lse - row[t];
        let drow = dlogits.row_mut(r);
        for (c, d) in drow.iter_mut().enumerate() {
            *d = (row[c] - lse).exp();
        }
        drow[t] -= 1.0;
    }
    (loss, targets.len(), dlogits)
}

/// Masked binary cross-entropy with logits.
///
/// This is the censoring-aware hazard loss from the paper (§2.3.2): each
/// output is an independent Bernoulli logit, and `mask` zeroes out outputs
/// that do not factor into the likelihood (bins after the observed event, and
/// the event bin itself for censored jobs).
///
/// All of `logits`, `targets`, `mask` are `(batch, bins)`. Returns the summed
/// masked BCE, the number of unmasked outputs, and
/// `dlogits = mask ⊙ (sigmoid(logits) - targets)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn masked_bce_with_logits(logits: &Mat, targets: &Mat, mask: &Mat) -> (f64, usize, Mat) {
    assert_eq!(logits.shape(), targets.shape(), "targets shape mismatch");
    assert_eq!(logits.shape(), mask.shape(), "mask shape mismatch");
    let mut loss = 0.0;
    let mut count = 0usize;
    let mut dlogits = Mat::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let zr = logits.row(r);
        let yr = targets.row(r);
        let mr = mask.row(r);
        let dr = dlogits.row_mut(r);
        for c in 0..zr.len() {
            let m = mr[c];
            // lint:allow(float-eq): mask entries are written as exactly 0.0 or 1.0
            if m == 0.0 {
                continue;
            }
            loss += m * bce_with_logits(zr[c], yr[c]);
            dr[c] = m * (sigmoid(zr[c]) - yr[c]);
            count += 1;
        }
    }
    (loss, count, dlogits)
}

/// Censoring-aware categorical (PMF) loss over lifetime bins.
///
/// This is the alternative output parameterization discussed in §2.3.1 /
/// Kvamme & Borgan: the network emits one logit per bin and the softmax is
/// the lifetime PMF. Per row `r`, `events[r] = (bin, censored)`:
///
/// - uncensored: standard cross-entropy on the event bin;
/// - censored at bin `c`: the likelihood is the total mass of bins `>= c`
///   (the job is known to survive past the bins before `c`), so the loss is
///   `-ln(Σ_{j>=c} softmax(z)_j)`.
///
/// Returns `(summed_loss, rows, dlogits)`.
///
/// # Panics
///
/// Panics if `events.len() != logits.rows()` or a bin is out of range.
pub fn survival_softmax_loss(logits: &Mat, events: &[(usize, bool)]) -> (f64, usize, Mat) {
    assert_eq!(events.len(), logits.rows(), "event count mismatch");
    let bins = logits.cols();
    let mut loss = 0.0;
    let mut dlogits = Mat::zeros(logits.rows(), bins);
    for (r, &(bin, censored)) in events.iter().enumerate() {
        assert!(bin < bins, "bin {bin} out of range ({bins} bins)");
        let row = logits.row(r);
        let lse = log_sum_exp(row);
        if !censored {
            loss += lse - row[bin];
            let drow = dlogits.row_mut(r);
            for (c, d) in drow.iter_mut().enumerate() {
                *d = (row[c] - lse).exp();
            }
            drow[bin] -= 1.0;
        } else {
            // q = sum of tail mass; loss = -ln q = lse - lse_tail.
            let lse_tail = log_sum_exp(&row[bin..]);
            loss += lse - lse_tail;
            let drow = dlogits.row_mut(r);
            for (c, d) in drow.iter_mut().enumerate() {
                let p = (row[c] - lse).exp();
                let tail = if c >= bin {
                    (row[c] - lse_tail).exp()
                } else {
                    0.0
                };
                *d = p - tail;
            }
        }
    }
    (loss, events.len(), dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xent_uniform_logits() {
        // All-zero logits over K classes: loss per row is ln(K).
        let logits = Mat::zeros(3, 4);
        let (loss, n, d) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert_eq!(n, 3);
        assert!((loss - 3.0 * 4.0f64.ln()).abs() < 1e-12);
        // Gradient rows sum to zero (softmax sums to 1, minus one-hot).
        for r in 0..3 {
            assert!(d.row(r).iter().sum::<f64>().abs() < 1e-12);
        }
    }

    #[test]
    fn xent_confident_correct_is_small() {
        let mut logits = Mat::zeros(1, 3);
        logits[(0, 1)] = 50.0;
        let (loss, _, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-12);
    }

    #[test]
    fn xent_gradient_matches_finite_difference() {
        let logits = Mat::from_rows(&[&[0.3, -1.2, 0.8], &[2.0, 0.1, -0.4]]);
        let targets = [2usize, 0];
        let (_, _, d) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                let mut lm = logits.clone();
                lp[(r, c)] += eps;
                lm[(r, c)] -= eps;
                let (fp, _, _) = softmax_cross_entropy(&lp, &targets);
                let (fm, _, _) = softmax_cross_entropy(&lm, &targets);
                let num = (fp - fm) / (2.0 * eps);
                assert!((num - d[(r, c)]).abs() < 1e-6, "r={r} c={c}");
            }
        }
    }

    #[test]
    fn bce_all_masked_is_zero() {
        let logits = Mat::filled(2, 3, 1.0);
        let targets = Mat::zeros(2, 3);
        let mask = Mat::zeros(2, 3);
        let (loss, n, d) = masked_bce_with_logits(&logits, &targets, &mask);
        assert_eq!(loss, 0.0);
        assert_eq!(n, 0);
        assert!(d.max_abs() == 0.0);
    }

    #[test]
    fn bce_known_value() {
        // z = 0 => p = 0.5 => loss = ln 2 per unmasked output.
        let logits = Mat::zeros(1, 4);
        let targets = Mat::from_rows(&[&[1.0, 0.0, 1.0, 0.0]]);
        let mask = Mat::from_rows(&[&[1.0, 1.0, 0.0, 0.0]]);
        let (loss, n, _) = masked_bce_with_logits(&logits, &targets, &mask);
        assert_eq!(n, 2);
        assert!((loss - 2.0 * 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Mat::from_rows(&[&[0.5, -0.7, 1.3], &[-2.0, 0.2, 0.9]]);
        let targets = Mat::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let mask = Mat::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 0.0, 1.0]]);
        let (_, _, d) = masked_bce_with_logits(&logits, &targets, &mask);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                let mut lm = logits.clone();
                lp[(r, c)] += eps;
                lm[(r, c)] -= eps;
                let (fp, _, _) = masked_bce_with_logits(&lp, &targets, &mask);
                let (fm, _, _) = masked_bce_with_logits(&lm, &targets, &mask);
                let num = (fp - fm) / (2.0 * eps);
                assert!((num - d[(r, c)]).abs() < 1e-6, "r={r} c={c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "target count mismatch")]
    fn xent_target_count_mismatch_panics() {
        let _ = softmax_cross_entropy(&Mat::zeros(2, 2), &[0]);
    }

    #[test]
    fn survival_softmax_uncensored_matches_xent() {
        let logits = Mat::from_rows(&[&[0.4, -0.2, 1.1]]);
        let (l1, _, d1) = survival_softmax_loss(&logits, &[(2, false)]);
        let (l2, _, d2) = softmax_cross_entropy(&logits, &[2]);
        assert!((l1 - l2).abs() < 1e-12);
        for (a, b) in d1.as_slice().iter().zip(d2.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn survival_softmax_censored_at_zero_is_free() {
        // Censored at bin 0: every outcome is consistent, loss = -ln(1) = 0.
        let logits = Mat::from_rows(&[&[0.3, -1.0, 0.7]]);
        let (l, _, d) = survival_softmax_loss(&logits, &[(0, true)]);
        assert!(l.abs() < 1e-12);
        assert!(d.max_abs() < 1e-12);
    }

    #[test]
    fn survival_softmax_censored_gradient_matches_finite_difference() {
        let logits = Mat::from_rows(&[&[0.5, -0.7, 1.3, 0.1], &[-2.0, 0.2, 0.9, 0.4]]);
        let events = [(2usize, true), (1usize, false)];
        let (_, _, d) = survival_softmax_loss(&logits, &events);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..4 {
                let mut lp = logits.clone();
                let mut lm = logits.clone();
                lp[(r, c)] += eps;
                lm[(r, c)] -= eps;
                let (fp, _, _) = survival_softmax_loss(&lp, &events);
                let (fm, _, _) = survival_softmax_loss(&lm, &events);
                let num = (fp - fm) / (2.0 * eps);
                assert!((num - d[(r, c)]).abs() < 1e-6, "r={r} c={c}");
            }
        }
    }

    #[test]
    fn survival_softmax_censored_loss_decreases_with_tail_mass() {
        // More logit mass in the tail (bins >= censor bin) = lower loss.
        let low_tail = Mat::from_rows(&[&[3.0, 0.0, 0.0]]);
        let high_tail = Mat::from_rows(&[&[0.0, 0.0, 3.0]]);
        let (l_low, _, _) = survival_softmax_loss(&low_tail, &[(1, true)]);
        let (l_high, _, _) = survival_softmax_loss(&high_tail, &[(1, true)]);
        assert!(l_high < l_low);
    }
}
