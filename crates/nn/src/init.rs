//! Weight initialization helpers.

use linalg::Mat;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `rows x cols` weight matrix.
///
/// Entries are drawn from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`,
/// where `fan_in = rows` and `fan_out = cols` (weights are applied as
/// `x · W`, so rows are the input dimension).
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Mat {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Uniform initialization in `(-scale, scale)`.
pub fn uniform(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

/// LSTM bias initialization: zeros except the forget-gate block, which is set
/// to `forget_bias` (conventionally 1.0 to encourage remembering early in
/// training).
///
/// The bias layout is `[input, forget, cell, output]`, each of size `hidden`.
pub fn lstm_bias(hidden: usize, forget_bias: f64) -> Mat {
    Mat::from_fn(1, 4 * hidden, |_, c| {
        if (hidden..2 * hidden).contains(&c) {
            forget_bias
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(10, 20, &mut rng);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a));
        // Not degenerate: at least two distinct values.
        assert!(w.as_slice().iter().any(|&x| x != w.as_slice()[0]));
    }

    #[test]
    fn lstm_bias_layout() {
        let b = lstm_bias(3, 1.0);
        assert_eq!(b.shape(), (1, 12));
        let s = b.as_slice();
        assert!(s[0..3].iter().all(|&x| x == 0.0));
        assert!(s[3..6].iter().all(|&x| x == 1.0));
        assert!(s[6..12].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniform_within_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = uniform(5, 5, 0.1, &mut rng);
        assert!(w.as_slice().iter().all(|&x| x.abs() <= 0.1));
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(11));
        let w2 = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(11));
        assert_eq!(w1, w2);
    }
}
