//! Vanilla (tanh) RNN — the architecture ablation baseline.
//!
//! The paper picks LSTMs as the "simplest network that can reliably model
//! long-term dependencies" (§7); this plain recurrent network exists so that
//! choice can be ablated. API mirrors [`crate::Lstm`].

use crate::init::xavier_uniform;
use crate::linear::Linear;
use crate::param::Param;
use linalg::numeric::dtanh_from_output;
use linalg::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One vanilla RNN layer: `h_t = tanh(x W_ih + h_{t-1} W_hh + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnnLayer {
    /// Input-to-hidden weights, `(in_dim, hidden)`.
    pub w_ih: Param,
    /// Hidden-to-hidden weights, `(hidden, hidden)`.
    pub w_hh: Param,
    /// Bias, `(1, hidden)`.
    pub b: Param,
    hidden: usize,
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Mat,
    h_prev: Mat,
    h: Mat,
}

/// Forward cache for BPTT.
#[derive(Debug)]
pub struct RnnCache {
    caches: Vec<Vec<StepCache>>,
    batch: usize,
}

/// Recurrent state (per-layer hidden vectors).
#[derive(Debug, Clone)]
pub struct RnnState {
    /// Hidden state per layer, each `(batch, hidden)`.
    pub h: Vec<Mat>,
}

impl RnnLayer {
    fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            w_ih: Param::new(xavier_uniform(in_dim, hidden, rng)),
            w_hh: Param::new(xavier_uniform(hidden, hidden, rng)),
            b: Param::new(Mat::zeros(1, hidden)),
            hidden,
        }
    }

    fn step(&self, x: &Mat, h_prev: &Mat) -> (Mat, StepCache) {
        let mut z = x.matmul(&self.w_ih.value);
        linalg::matrix::gemm_acc(&mut z, h_prev, &self.w_hh.value, 1.0);
        z.add_row_broadcast(self.b.value.row(0));
        z.map_inplace(f64::tanh);
        let cache = StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            h: z.clone(),
        };
        (z, cache)
    }

    /// One backward step. `dz` and `dh_prev` are caller-owned scratch
    /// buffers reused across the whole layer sweep; both are fully
    /// overwritten. Returns `dx` (the only per-step allocation).
    fn step_backward(&mut self, cache: &StepCache, dh: &Mat, dz: &mut Mat, dh_prev: &mut Mat) -> Mat {
        // dz = dh ⊙ (1 - h^2).
        dz.copy_from(dh);
        for (d, &h) in dz.as_mut_slice().iter_mut().zip(cache.h.as_slice()) {
            *d *= dtanh_from_output(h);
        }
        self.w_ih.grad.axpy(1.0, &cache.x.t_matmul(dz));
        self.w_hh.grad.axpy(1.0, &cache.h_prev.t_matmul(dz));
        let db = dz.col_sums();
        linalg::matrix::axpy_slice(self.b.grad.row_mut(0), 1.0, &db);
        let dx = dz.matmul_t(&self.w_ih.value);
        dz.matmul_t_into(&self.w_hh.value, dh_prev);
        dx
    }
}

/// A stack of vanilla RNN layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rnn {
    layers: Vec<RnnLayer>,
    input_dim: usize,
    hidden: usize,
}

impl Rnn {
    /// Creates a stack (first layer `input_dim -> hidden`, rest
    /// `hidden -> hidden`).
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `hidden == 0`.
    pub fn new(input_dim: usize, hidden: usize, num_layers: usize, rng: &mut impl Rng) -> Self {
        assert!(num_layers > 0, "need at least one layer");
        assert!(hidden > 0, "hidden size must be positive");
        let layers = (0..num_layers)
            .map(|l| RnnLayer::new(if l == 0 { input_dim } else { hidden }, hidden, rng))
            .collect();
        Self {
            layers,
            input_dim,
            hidden,
        }
    }

    /// Zero state for a batch size.
    pub fn zero_state(&self, batch: usize) -> RnnState {
        RnnState {
            h: self
                .layers
                .iter()
                .map(|_| Mat::zeros(batch, self.hidden))
                .collect(),
        }
    }

    /// Forward over a sequence from the zero state; returns top hidden
    /// states and the BPTT cache.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn forward(&self, xs: &[Mat]) -> (Vec<Mat>, RnnCache) {
        let batch = xs.first().map_or(0, Mat::rows);
        // One StepCache per timestep per layer: reserve the exact BPTT
        // footprint up front so the sequence loop never reallocates.
        let mut caches: Vec<Vec<StepCache>> =
            self.layers.iter().map(|_| Vec::with_capacity(xs.len())).collect();
        let mut state = self.zero_state(batch);
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "input width mismatch");
            let mut layer_in = x.clone();
            for (l, layer) in self.layers.iter().enumerate() {
                let (h, cache) = layer.step(&layer_in, &state.h[l]);
                state.h[l] = h.clone();
                caches[l].push(cache);
                layer_in = h;
            }
            outputs.push(layer_in);
        }
        (outputs, RnnCache { caches, batch })
    }

    /// One stateful step (generation path).
    pub fn step(&self, x: &Mat, state: &mut RnnState) -> Mat {
        let mut layer_in = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let (h, _) = layer.step(&layer_in, &state.h[l]);
            state.h[l] = h.clone();
            layer_in = h;
        }
        layer_in
    }

    /// Full BPTT given per-step output gradients; returns input gradients.
    ///
    /// # Panics
    ///
    /// Panics on sequence-length mismatch.
    pub fn backward(&mut self, cache: &RnnCache, d_outputs: &[Mat]) -> Vec<Mat> {
        let steps = cache.caches.first().map_or(0, Vec::len);
        assert_eq!(d_outputs.len(), steps, "gradient/sequence length mismatch");
        let batch = cache.batch;
        let mut dh_above: Vec<Mat> = d_outputs.to_vec();
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let mut dh_next = Mat::zeros(batch, layer.hidden);
            let mut dh_prev = Mat::zeros(batch, layer.hidden);
            let mut dz = Mat::zeros(batch, layer.hidden);
            let mut dx_seq: Vec<Mat> = vec![Mat::zeros(0, 0); steps];
            for t in (0..steps).rev() {
                // Steal the buffer: each dh_above[t] is consumed exactly
                // once per layer sweep, and the vec is replaced below.
                let mut dh = std::mem::replace(&mut dh_above[t], Mat::zeros(0, 0));
                dh.axpy(1.0, &dh_next);
                let dx = layer.step_backward(&cache.caches[l][t], &dh, &mut dz, &mut dh_prev);
                std::mem::swap(&mut dh_next, &mut dh_prev);
                dx_seq[t] = dx;
            }
            dh_above = dx_seq;
        }
        dh_above
    }

    /// Parameters in stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w_ih, &mut l.w_hh, &mut l.b])
            .collect()
    }

    /// Resets gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.w_ih.zero_grad();
            l.w_hh.zero_grad();
            l.b.zero_grad();
        }
    }
}

/// Vanilla RNN + linear head (+ optional skip), mirroring
/// [`crate::LstmNetwork`] for apples-to-apples architecture ablations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnnNetwork {
    /// Recurrent body.
    pub rnn: Rnn,
    /// Output head.
    pub head: Linear,
    /// Optional input→output skip connection.
    pub skip: Option<Linear>,
}

/// Forward cache for [`RnnNetwork`].
pub struct RnnNetworkCache {
    cache: RnnCache,
    hidden_outputs: Vec<Mat>,
    inputs: Vec<Mat>,
}

impl RnnNetwork {
    /// Creates a network with a skip connection (matching
    /// `LstmNetwork::with_skip`).
    pub fn with_skip(
        input_dim: usize,
        hidden: usize,
        layers: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            rnn: Rnn::new(input_dim, hidden, layers, rng),
            head: Linear::new(hidden, out_dim, rng),
            skip: Some(Linear::new(input_dim, out_dim, rng)),
        }
    }

    /// Forward over a sequence; returns per-step logits and the cache.
    pub fn forward(&self, xs: &[Mat]) -> (Vec<Mat>, RnnNetworkCache) {
        let (hidden_outputs, cache) = self.rnn.forward(xs);
        let logits = hidden_outputs
            .iter()
            .zip(xs)
            .map(|(h, x)| {
                let mut y = self.head.forward(h);
                if let Some(skip) = &self.skip {
                    y.axpy(1.0, &skip.forward(x));
                }
                y
            })
            .collect();
        (
            logits,
            RnnNetworkCache {
                cache,
                hidden_outputs,
                inputs: xs.to_vec(),
            },
        )
    }

    /// Backward given per-step logit gradients.
    pub fn backward(&mut self, cache: &RnnNetworkCache, d_logits: &[Mat]) -> Vec<Mat> {
        let d_hidden: Vec<Mat> = cache
            .hidden_outputs
            .iter()
            .zip(d_logits)
            .map(|(h, dy)| self.head.backward(h, dy))
            .collect();
        let mut dxs = self.rnn.backward(&cache.cache, &d_hidden);
        if let Some(skip) = &mut self.skip {
            for ((x, dy), dx) in cache.inputs.iter().zip(d_logits).zip(dxs.iter_mut()) {
                dx.axpy(1.0, &skip.backward(x, dy));
            }
        }
        dxs
    }

    /// One stateful generation step.
    pub fn step(&self, x: &Mat, state: &mut RnnState) -> Mat {
        let h = self.rnn.step(x, state);
        let mut y = self.head.forward(&h);
        if let Some(skip) = &self.skip {
            y.axpy(1.0, &skip.forward(x));
        }
        y
    }

    /// Zero state.
    pub fn zero_state(&self, batch: usize) -> RnnState {
        self.rnn.zero_state(batch)
    }

    /// Parameters in stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.rnn.params_mut();
        ps.extend(self.head.params_mut());
        if let Some(skip) = &mut self.skip {
            ps.extend(skip.params_mut());
        }
        ps
    }

    /// Resets gradients.
    pub fn zero_grad(&mut self) {
        self.rnn.zero_grad();
        self.head.zero_grad();
        if let Some(skip) = &mut self.skip {
            skip.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_bounds() {
        let rnn = Rnn::new(4, 6, 2, &mut StdRng::seed_from_u64(1));
        let xs: Vec<Mat> = (0..5).map(|_| Mat::filled(3, 4, 0.3)).collect();
        let (out, _) = rnn.forward(&xs);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|h| h.shape() == (3, 6)));
        assert!(out.iter().all(|h| h.max_abs() <= 1.0)); // tanh bound
    }

    #[test]
    fn stateful_step_matches_forward() {
        let rnn = Rnn::new(3, 4, 2, &mut StdRng::seed_from_u64(2));
        let xs: Vec<Mat> = (0..4)
            .map(|t| Mat::from_fn(1, 3, |_, c| ((t + c) as f64 * 0.37).sin()))
            .collect();
        let (out, _) = rnn.forward(&xs);
        let mut state = rnn.zero_state(1);
        for (t, x) in xs.iter().enumerate() {
            let h = rnn.step(x, &mut state);
            for (a, b) in h.as_slice().iter().zip(out[t].as_slice()) {
                assert!((a - b).abs() < 1e-12, "step {t}");
            }
        }
    }

    #[test]
    fn network_gradients_match_finite_difference() {
        use crate::gradcheck::check_model_gradients;
        use crate::loss::softmax_cross_entropy;
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = RnnNetwork::with_skip(3, 3, 2, 4, &mut rng);
        let xs: Vec<Mat> = (0..3)
            .map(|t| Mat::from_fn(2, 3, |r, c| ((t * 5 + r * 3 + c) as f64 * 0.29).sin()))
            .collect();
        let targets: Vec<Vec<usize>> = (0..3).map(|t| vec![t % 4, (t + 1) % 4]).collect();

        let xs2 = xs.clone();
        let t2 = targets.clone();
        let mism = check_model_gradients(
            &mut net,
            |n| n.params_mut(),
            move |n| {
                let (logits, _) = n.forward(&xs2);
                logits
                    .iter()
                    .zip(&t2)
                    .map(|(l, t)| softmax_cross_entropy(l, t).0)
                    .sum()
            },
            move |n| {
                n.zero_grad();
                let (logits, cache) = n.forward(&xs);
                let d: Vec<Mat> = logits
                    .iter()
                    .zip(&targets)
                    .map(|(l, t)| softmax_cross_entropy(l, t).2)
                    .collect();
                let _ = n.backward(&cache, &d);
            },
            1e-6,
            1e-5,
        );
        assert!(mism.is_empty(), "rnn mismatches: {:?}", &mism[..mism.len().min(5)]);
    }

    #[test]
    fn learns_a_simple_pattern() {
        use crate::adam::{Adam, AdamConfig};
        use crate::loss::softmax_cross_entropy;
        let mut rng = StdRng::seed_from_u64(4);
        let k = 3;
        let mut net = RnnNetwork::with_skip(k, 12, 1, k, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.02,
            ..Default::default()
        });
        let seq: Vec<usize> = (0..30).map(|t| t % k).collect();
        let xs: Vec<Mat> = seq
            .iter()
            .map(|&c| Mat::from_fn(1, k, |_, j| if j == c { 1.0 } else { 0.0 }))
            .collect();
        let targets: Vec<usize> = seq.iter().skip(1).cloned().collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..120 {
            net.zero_grad();
            let (logits, cache) = net.forward(&xs[..xs.len() - 1]);
            let mut total = 0.0;
            let mut d = Vec::new();
            for (t, l) in logits.iter().enumerate() {
                let (loss, _, mut g) = softmax_cross_entropy(l, &targets[t..=t]);
                total += loss;
                g.scale(1.0 / logits.len() as f64);
                d.push(g);
            }
            if epoch == 0 {
                first = total;
            }
            last = total;
            net.backward(&cache, &d);
            opt.step(&mut net.params_mut()).unwrap();
        }
        assert!(last < first * 0.2, "loss {first} -> {last}");
    }
}
