//! Adam optimizer with decoupled weight decay and global-norm clipping.

use crate::param::Param;
use linalg::Mat;
use obsv::profile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor inside the square root.
    pub eps: f64,
    /// Decoupled (AdamW-style) weight-decay coefficient.
    pub weight_decay: f64,
    /// Global gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f64>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: Some(5.0),
        }
    }
}

/// A rejected optimizer step.
///
/// The step is skipped *whole*: weights, moments, and the step counter are
/// all left exactly as they were, so a caller can zero the gradients and
/// continue training from the same state (or hand the error to a guard that
/// rolls back / lowers the learning rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepError {
    /// The pre-clip global gradient norm was NaN or infinite. Clipping
    /// cannot repair a non-finite norm (`c / norm` is 0 or NaN), so updating
    /// would poison the Adam moments for every later step.
    NonFiniteGradient {
        /// The offending pre-clip norm (NaN or infinity).
        norm: f64,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::NonFiniteGradient { norm } => {
                write!(f, "non-finite pre-clip gradient norm {norm}; step skipped")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// Adam optimizer state.
///
/// Per-parameter first/second moment estimates are keyed by position in the
/// parameter list, which must therefore be stable across `step` calls (each
/// layer's `params_mut` guarantees this).
///
/// Serializable so a training run can checkpoint its optimizer alongside the
/// network weights and resume bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    m: Vec<Mat>,
    v: Vec<Mat>,
    #[serde(default)]
    last_norm: Option<f64>,
}

impl Adam {
    /// Creates an optimizer with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Self {
            cfg,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            last_norm: None,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Mutable configuration (e.g., for learning-rate schedules).
    pub fn config_mut(&mut self) -> &mut AdamConfig {
        &mut self.cfg
    }

    /// Number of update steps taken so far (skipped steps do not count).
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Pre-clip global gradient norm of the most recent `step` call (`None`
    /// before the first call). Recorded even when the step was skipped, so
    /// guards can inspect the offending norm. Training loops surface this
    /// per-epoch as `grad_norm_pre_clip` telemetry.
    pub fn last_grad_norm(&self) -> Option<f64> {
        self.last_norm
    }

    /// Applies one Adam update to `params`, consuming their gradients.
    ///
    /// Returns the pre-clip global gradient norm (useful for monitoring).
    /// Gradients are *not* zeroed; call `zero_grad` on the layers before the
    /// next backward pass.
    ///
    /// # Errors
    ///
    /// If the pre-clip gradient norm is NaN or infinite the step is skipped
    /// in its entirety — weights, moments, and the step counter are
    /// untouched — and [`StepError::NonFiniteGradient`] is returned. Release
    /// builds therefore never fold NaN gradients into the moment estimates;
    /// the caller decides whether to drop the minibatch or roll back.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list length or shapes change between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) -> Result<f64, StepError> {
        let _prof = profile::span("adam-step");
        let elems: u64 = params.iter().map(|p| p.grad.as_slice().len() as u64).sum();
        // Norm pass (2 flops/elem) + moment/update arithmetic (~14 flops/elem);
        // reads g/m/v/w and writes m/v/w, all f64.
        profile::add_flops(elems * 16);
        profile::add_bytes(elems * 7 * 8);
        // Lazily initialize moments (sized collects, no per-step growth).
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Mat::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Mat::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed size");

        // Global-norm clipping.
        let mut sq_sum = 0.0;
        for p in params.iter() {
            sq_sum += p.grad.as_slice().iter().map(|g| g * g).sum::<f64>();
        }
        let norm = sq_sum.sqrt();
        self.last_norm = Some(norm);
        if !norm.is_finite() {
            return Err(StepError::NonFiniteGradient { norm });
        }
        let scale = match self.cfg.clip_norm {
            Some(c) if norm > c && norm > 0.0 => c / norm,
            _ => 1.0,
        };

        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);

        for (i, p) in params.iter_mut().enumerate() {
            assert_eq!(
                self.m[i].shape(),
                p.value.shape(),
                "parameter {i} changed shape"
            );
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            let g = p.grad.as_slice();
            let w = p.value.as_mut_slice();
            for j in 0..g.len() {
                let gj = g[j] * scale;
                m[j] = self.cfg.beta1 * m[j] + (1.0 - self.cfg.beta1) * gj;
                v[j] = self.cfg.beta2 * v[j] + (1.0 - self.cfg.beta2) * gj * gj;
                let mhat = m[j] / b1t;
                let vhat = v[j] / b2t;
                let mut upd = mhat / (vhat.sqrt() + self.cfg.eps);
                // Decoupled weight decay (AdamW): decay is applied directly
                // to the weights, not folded into the gradient.
                upd += self.cfg.weight_decay * w[j];
                w[j] -= self.cfg.lr * upd;
            }
            linalg::debug_assert_finite!(w, "adam updated weights");
        }
        Ok(norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f64) -> Param {
        Param::new(Mat::filled(1, 1, x0))
    }

    #[test]
    fn minimizes_simple_quadratic() {
        // f(x) = (x - 3)^2; gradient 2(x-3).
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            ..Default::default()
        });
        for _ in 0..500 {
            p.zero_grad();
            let x = p.value[(0, 0)];
            p.grad[(0, 0)] = 2.0 * (x - 3.0);
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(
            (p.value[(0, 0)] - 3.0).abs() < 1e-2,
            "got {}",
            p.value[(0, 0)]
        );
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut p = quadratic_param(0.0);
        p.grad[(0, 0)] = 1e9;
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            clip_norm: Some(1.0),
            ..Default::default()
        });
        let norm = opt.step(&mut [&mut p]).unwrap();
        assert!(norm > 1e8);
        // After clipping, |update| <= lr / (sqrt(vhat)+eps) * mhat stays ~lr.
        assert!(p.value[(0, 0)].abs() < 0.2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = quadratic_param(1.0);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            clip_norm: None,
            ..Default::default()
        });
        // Zero gradient: only decay acts.
        p.zero_grad();
        opt.step(&mut [&mut p]).unwrap();
        assert!(p.value[(0, 0)] < 1.0);
        assert!(p.value[(0, 0)] > 0.0);
    }

    #[test]
    fn last_grad_norm_tracks_latest_step() {
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        assert_eq!(opt.last_grad_norm(), None);
        p.grad[(0, 0)] = 3.0;
        let n = opt.step(&mut [&mut p]).unwrap();
        assert_eq!(opt.last_grad_norm(), Some(n));
        assert!((n - 3.0).abs() < 1e-12);
    }

    #[test]
    fn step_counter_advances() {
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [&mut p]).unwrap();
        opt.step(&mut [&mut p]).unwrap();
        assert_eq!(opt.steps(), 2);
    }

    /// A NaN gradient must reject the step wholesale: typed error out,
    /// weights / moments / step counter untouched, so training can continue
    /// (or roll back) from exactly the pre-step state — in release builds
    /// too, not just under debug assertions.
    #[test]
    fn nan_gradient_skips_step_with_typed_error() {
        let mut p = quadratic_param(1.5);
        let mut opt = Adam::new(AdamConfig::default());
        // One healthy step to populate moments.
        p.grad[(0, 0)] = 0.5;
        opt.step(&mut [&mut p]).unwrap();
        let w_before = p.value[(0, 0)];
        let t_before = opt.steps();

        p.zero_grad();
        p.grad[(0, 0)] = f64::NAN;
        let err = opt.step(&mut [&mut p]).unwrap_err();
        match err {
            StepError::NonFiniteGradient { norm } => assert!(norm.is_nan()),
        }
        assert_eq!(p.value[(0, 0)], w_before, "weights must be untouched");
        assert_eq!(opt.steps(), t_before, "skipped step must not count");
        assert!(opt.last_grad_norm().unwrap().is_nan());

        // The optimizer remains usable: the next finite step succeeds.
        p.zero_grad();
        p.grad[(0, 0)] = 0.5;
        opt.step(&mut [&mut p]).unwrap();
        assert_eq!(opt.steps(), t_before + 1);
    }

    #[test]
    fn infinite_gradient_also_skips() {
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        p.grad[(0, 0)] = f64::INFINITY;
        let err = opt.step(&mut [&mut p]).unwrap_err();
        assert!(matches!(err, StepError::NonFiniteGradient { .. }));
        assert_eq!(p.value[(0, 0)], 0.0);
    }

    #[test]
    fn serde_roundtrip_resumes_identically() {
        // Two optimizers stepped in lockstep stay identical when one is
        // serialized and deserialized mid-run.
        let mut p1 = quadratic_param(0.0);
        let mut p2 = quadratic_param(0.0);
        let mut o1 = Adam::new(AdamConfig {
            lr: 0.05,
            ..Default::default()
        });
        for _ in 0..3 {
            for (p, o) in [(&mut p1, &mut o1)] {
                p.zero_grad();
                p.grad[(0, 0)] = 2.0 * (p.value[(0, 0)] - 3.0);
                o.step(&mut [&mut *p]).unwrap();
            }
        }
        let json = serde_json::to_string(&o1).unwrap();
        let mut o2: Adam = serde_json::from_str(&json).unwrap();
        p2.value[(0, 0)] = p1.value[(0, 0)];
        for _ in 0..5 {
            p1.zero_grad();
            p1.grad[(0, 0)] = 2.0 * (p1.value[(0, 0)] - 3.0);
            o1.step(&mut [&mut p1]).unwrap();
            p2.zero_grad();
            p2.grad[(0, 0)] = 2.0 * (p2.value[(0, 0)] - 3.0);
            o2.step(&mut [&mut p2]).unwrap();
        }
        assert_eq!(p1.value[(0, 0)].to_bits(), p2.value[(0, 0)].to_bits());
        assert_eq!(o1.steps(), o2.steps());
    }

    #[test]
    #[should_panic(expected = "parameter list changed size")]
    fn changing_param_count_panics() {
        let mut a = quadratic_param(0.0);
        let mut b = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        let _ = opt.step(&mut [&mut a]);
        let _ = opt.step(&mut [&mut a, &mut b]);
    }
}
