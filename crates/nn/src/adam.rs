//! Adam optimizer with decoupled weight decay and global-norm clipping.

use crate::param::Param;
use linalg::Mat;
use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor inside the square root.
    pub eps: f64,
    /// Decoupled (AdamW-style) weight-decay coefficient.
    pub weight_decay: f64,
    /// Global gradient-norm clip; `None` disables clipping.
    pub clip_norm: Option<f64>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: Some(5.0),
        }
    }
}

/// Adam optimizer state.
///
/// Per-parameter first/second moment estimates are keyed by position in the
/// parameter list, which must therefore be stable across `step` calls (each
/// layer's `params_mut` guarantees this).
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    m: Vec<Mat>,
    v: Vec<Mat>,
    last_norm: Option<f64>,
}

impl Adam {
    /// Creates an optimizer with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Self {
            cfg,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            last_norm: None,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Mutable configuration (e.g., for learning-rate schedules).
    pub fn config_mut(&mut self) -> &mut AdamConfig {
        &mut self.cfg
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Pre-clip global gradient norm of the most recent step (`None`
    /// before the first step). Training loops surface this per-epoch as
    /// `grad_norm_pre_clip` telemetry.
    pub fn last_grad_norm(&self) -> Option<f64> {
        self.last_norm
    }

    /// Applies one Adam update to `params`, consuming their gradients.
    ///
    /// Returns the pre-clip global gradient norm (useful for monitoring).
    /// Gradients are *not* zeroed; call `zero_grad` on the layers before the
    /// next backward pass.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list length or shapes change between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) -> f64 {
        // Lazily initialize moments.
        if self.m.is_empty() {
            for p in params.iter() {
                self.m.push(Mat::zeros(p.value.rows(), p.value.cols()));
                self.v.push(Mat::zeros(p.value.rows(), p.value.cols()));
            }
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed size");

        // Global-norm clipping.
        let mut sq_sum = 0.0;
        for p in params.iter() {
            sq_sum += p.grad.as_slice().iter().map(|g| g * g).sum::<f64>();
        }
        let norm = sq_sum.sqrt();
        linalg::debug_assert_finite!(&[norm], "adam pre-clip gradient norm");
        self.last_norm = Some(norm);
        let scale = match self.cfg.clip_norm {
            Some(c) if norm > c && norm > 0.0 => c / norm,
            _ => 1.0,
        };

        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);

        for (i, p) in params.iter_mut().enumerate() {
            assert_eq!(
                self.m[i].shape(),
                p.value.shape(),
                "parameter {i} changed shape"
            );
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            let g = p.grad.as_slice();
            let w = p.value.as_mut_slice();
            for j in 0..g.len() {
                let gj = g[j] * scale;
                m[j] = self.cfg.beta1 * m[j] + (1.0 - self.cfg.beta1) * gj;
                v[j] = self.cfg.beta2 * v[j] + (1.0 - self.cfg.beta2) * gj * gj;
                let mhat = m[j] / b1t;
                let vhat = v[j] / b2t;
                let mut upd = mhat / (vhat.sqrt() + self.cfg.eps);
                // Decoupled weight decay (AdamW): decay is applied directly
                // to the weights, not folded into the gradient.
                upd += self.cfg.weight_decay * w[j];
                w[j] -= self.cfg.lr * upd;
            }
            linalg::debug_assert_finite!(w, "adam updated weights");
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f64) -> Param {
        Param::new(Mat::filled(1, 1, x0))
    }

    #[test]
    fn minimizes_simple_quadratic() {
        // f(x) = (x - 3)^2; gradient 2(x-3).
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            ..Default::default()
        });
        for _ in 0..500 {
            p.zero_grad();
            let x = p.value[(0, 0)];
            p.grad[(0, 0)] = 2.0 * (x - 3.0);
            opt.step(&mut [&mut p]);
        }
        assert!(
            (p.value[(0, 0)] - 3.0).abs() < 1e-2,
            "got {}",
            p.value[(0, 0)]
        );
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut p = quadratic_param(0.0);
        p.grad[(0, 0)] = 1e9;
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            clip_norm: Some(1.0),
            ..Default::default()
        });
        let norm = opt.step(&mut [&mut p]);
        assert!(norm > 1e8);
        // After clipping, |update| <= lr / (sqrt(vhat)+eps) * mhat stays ~lr.
        assert!(p.value[(0, 0)].abs() < 0.2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = quadratic_param(1.0);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            clip_norm: None,
            ..Default::default()
        });
        // Zero gradient: only decay acts.
        p.zero_grad();
        opt.step(&mut [&mut p]);
        assert!(p.value[(0, 0)] < 1.0);
        assert!(p.value[(0, 0)] > 0.0);
    }

    #[test]
    fn last_grad_norm_tracks_latest_step() {
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        assert_eq!(opt.last_grad_norm(), None);
        p.grad[(0, 0)] = 3.0;
        let n = opt.step(&mut [&mut p]);
        assert_eq!(opt.last_grad_norm(), Some(n));
        assert!((n - 3.0).abs() < 1e-12);
    }

    #[test]
    fn step_counter_advances() {
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [&mut p]);
        opt.step(&mut [&mut p]);
        assert_eq!(opt.steps(), 2);
    }

    /// Debug builds trip the finite-value tripwire when a NaN gradient is
    /// seeded: the pre-clip norm is already NaN, so the step panics before
    /// poisoning the optimizer moments.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite value")]
    fn seeded_nan_gradient_trips_step_tripwire() {
        let mut p = quadratic_param(0.0);
        p.grad[(0, 0)] = f64::NAN;
        let mut opt = Adam::new(AdamConfig::default());
        opt.step(&mut [&mut p]);
    }

    #[test]
    #[should_panic(expected = "parameter list changed size")]
    fn changing_param_count_panics() {
        let mut a = quadratic_param(0.0);
        let mut b = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        opt.step(&mut [&mut a]);
        opt.step(&mut [&mut a, &mut b]);
    }
}
