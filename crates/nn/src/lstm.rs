//! Multi-layer LSTM with hand-derived backpropagation-through-time.
//!
//! Gate layout in all `4H`-wide matrices is `[input, forget, cell, output]`.
//! The forward pass over a sequence caches every intermediate activation so
//! [`Lstm::backward`] can run full BPTT; the stateful [`LstmState`] path
//! supports one-job-at-a-time sampling during trace generation.
//!
//! # Kernel structure
//!
//! The training path runs on a packed, fused hot loop:
//!
//! - **Packed pre-activation GEMM.** Per layer, `w_ih` and `w_hh` are
//!   stacked once per forward/backward call into `w_pack`
//!   (`(in+hidden, 4*hidden)`), and each step's input and previous hidden
//!   state are packed side by side into `xh = [x | h_prev]`. The two
//!   pre-activation products collapse into one GEMM `xh · w_pack`, which
//!   sums exactly the same terms in exactly the same ascending-`k` order
//!   as `x·W_ih` followed by `+= h_prev·W_hh` — bit-identical output,
//!   half the kernel launches, and one contiguous streaming operand.
//! - **Fused gate kernel.** The gate nonlinearities, cell update,
//!   `tanh(c)`, and `h = o∘tanh(c)` run in a single sweep
//!   ([`crate::kernel::gate_forward`] / [`crate::kernel::gate_backward`])
//!   instead of a nonlinearity pass plus three separately-allocated
//!   elementwise passes per timestep.
//! - **Scratch reuse in BPTT.** The backward sweep reuses one `dz`, one
//!   `dxh`, one packed-gradient buffer, and two ping-ponged cell-gradient
//!   buffers across all timesteps of a layer; the cached `c` of step
//!   `t-1` serves as step `t`'s `c_prev` instead of a per-step clone.
//!
//! All of this is arithmetic-order-preserving: fused and unfused paths
//! are byte-for-byte identical (pinned by the bit-identity tests below
//! and by `cloudgen-sim`'s determinism suite).

use crate::init::{lstm_bias, xavier_uniform};
use crate::kernel::{gate_backward, gate_forward};
use crate::param::Param;
use linalg::Mat;
use obsv::profile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Flops per hidden unit per batch row for the fused forward gate sweep:
/// five transcendental evaluations (sigmoid on i/f/o, tanh on g and on c,
/// ~10 flops each as evaluated here), the cell update `c = f*c_prev + i*g`
/// (3), and `h = o*tc` (1).
const GATE_FWD_FLOPS_PER_UNIT: u64 = 54;
/// Same for one backward step: `d_o = dh*tc` (1), `dtanh(tc)` (2),
/// `dc = dc_in + dh*o*dtanh` (3), the three cell-rule products plus
/// `dc *= f` (4), and four derivative-from-output chain products at 3
/// flops each (12).
const GATE_BWD_FLOPS_PER_UNIT: u64 = 22;

/// One LSTM layer's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLayer {
    /// Input-to-hidden weights, `(in_dim, 4*hidden)`.
    pub w_ih: Param,
    /// Hidden-to-hidden weights, `(hidden, 4*hidden)`.
    pub w_hh: Param,
    /// Bias, `(1, 4*hidden)`.
    pub b: Param,
    hidden: usize,
}

/// Cached activations for one layer at one time step.
///
/// The packed input `xh` doubles as the cache of both `x` and `h_prev`;
/// the previous cell state is read from the *prior* step's cache (or a
/// shared zero matrix at `t = 0`) rather than cloned per step.
#[derive(Debug, Clone)]
struct StepCache {
    /// Packed step input `[x | h_prev]`, `(batch, in_dim + hidden)`.
    xh: Mat,
    /// Gate activations `[i, f, g, o]` packed as `(batch, 4*hidden)`.
    gates: Mat,
    /// New cell state, `(batch, hidden)`.
    c: Mat,
    /// `tanh(c)`, `(batch, hidden)`.
    tc: Mat,
}

/// Forward-pass cache for a whole sequence (all layers, all steps).
#[derive(Debug)]
pub struct LstmCache {
    // caches[layer][t]
    caches: Vec<Vec<StepCache>>,
    batch: usize,
}

/// Recurrent state for stateful (generation-time) stepping.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Per-layer hidden states, each `(batch, hidden)`.
    pub h: Vec<Mat>,
    /// Per-layer cell states, each `(batch, hidden)`.
    pub c: Vec<Mat>,
}

impl LstmLayer {
    fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            w_ih: Param::new(xavier_uniform(in_dim, 4 * hidden, rng)),
            w_hh: Param::new(xavier_uniform(hidden, 4 * hidden, rng)),
            b: Param::new(lstm_bias(hidden, 1.0)),
            hidden,
        }
    }

    fn in_dim(&self) -> usize {
        self.w_ih.value.shape().0
    }

    /// Stacks `w_ih` over `w_hh` into one `(in_dim + hidden, 4*hidden)`
    /// matrix so the step pre-activation becomes a single GEMM over the
    /// packed input `[x | h_prev]`. Rebuilt once per forward/backward
    /// call (the weights move every optimizer step) and amortized over
    /// every timestep of the sequence.
    fn packed_weights(&self) -> Mat {
        let split = self.in_dim() * 4 * self.hidden;
        let mut w = Mat::zeros(self.in_dim() + self.hidden, 4 * self.hidden);
        w.as_mut_slice()[..split].copy_from_slice(self.w_ih.value.as_slice());
        w.as_mut_slice()[split..].copy_from_slice(self.w_hh.value.as_slice());
        w
    }

    /// One forward step on the packed path; returns `(h, cache)`.
    fn step_fused(&self, w_pack: &Mat, x: &Mat, h_prev: &Mat, c_prev: &Mat) -> (Mat, StepCache) {
        let hidden = self.hidden;
        let batch = x.rows();
        let in_dim = x.cols();

        // Pack [x | h_prev]; the buffer is owned by the step cache, so
        // the pack replaces the x/h_prev clones the cache used to make.
        let mut xh = Mat::zeros(batch, in_dim + hidden);
        for r in 0..batch {
            let row = xh.row_mut(r);
            row[..in_dim].copy_from_slice(x.row(r));
            row[in_dim..].copy_from_slice(h_prev.row(r));
        }

        // Pre-activations: one fused GEMM in place of x·W_ih + h_prev·W_hh.
        let mut gates = Mat::zeros(batch, 4 * hidden);
        linalg::matrix::gemm_acc(&mut gates, &xh, w_pack, 1.0);
        gates.add_row_broadcast(self.b.value.row(0));

        let mut c = Mat::zeros(batch, hidden);
        let mut tc = Mat::zeros(batch, hidden);
        let mut h = Mat::zeros(batch, hidden);
        gate_forward(
            gates.as_mut_slice(),
            c_prev.as_slice(),
            c.as_mut_slice(),
            tc.as_mut_slice(),
            h.as_mut_slice(),
            hidden,
        );
        // The GEMM accounts for itself inside linalg; this covers the
        // fused elementwise gate sweep (5 reads + 7 writes per unit).
        profile::add_flops((batch * hidden) as u64 * GATE_FWD_FLOPS_PER_UNIT);
        profile::add_bytes(((batch * hidden) * 12 * 8) as u64);
        (h, StepCache { xh, gates, c, tc })
    }

    /// One forward step on the two-GEMM path (generation: tiny batches,
    /// no cache, packing not amortized); returns `(h, c)`. Bit-identical
    /// to [`LstmLayer::step_fused`] — the packed GEMM sums the same terms
    /// in the same order.
    fn step_unpacked(&self, x: &Mat, h_prev: &Mat, c_prev: &Mat) -> (Mat, Mat) {
        let hidden = self.hidden;
        let batch = x.rows();
        let mut gates = x.matmul(&self.w_ih.value);
        linalg::matrix::gemm_acc(&mut gates, h_prev, &self.w_hh.value, 1.0);
        gates.add_row_broadcast(self.b.value.row(0));
        let mut c = Mat::zeros(batch, hidden);
        let mut tc = Mat::zeros(batch, hidden);
        let mut h = Mat::zeros(batch, hidden);
        gate_forward(
            gates.as_mut_slice(),
            c_prev.as_slice(),
            c.as_mut_slice(),
            tc.as_mut_slice(),
            h.as_mut_slice(),
            hidden,
        );
        profile::add_flops((batch * hidden) as u64 * GATE_FWD_FLOPS_PER_UNIT);
        profile::add_bytes(((batch * hidden) * 12 * 8) as u64);
        (h, c)
    }
}

/// A stack of LSTM layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
    input_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Creates a stack of `num_layers` LSTM layers.
    ///
    /// The first layer maps `input_dim -> hidden`; subsequent layers map
    /// `hidden -> hidden`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `hidden == 0`.
    pub fn new(input_dim: usize, hidden: usize, num_layers: usize, rng: &mut impl Rng) -> Self {
        assert!(num_layers > 0, "need at least one layer");
        assert!(hidden > 0, "hidden size must be positive");
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let in_dim = if l == 0 { input_dim } else { hidden };
            layers.push(LstmLayer::new(in_dim, hidden, rng));
        }
        Self {
            layers,
            input_dim,
            hidden,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden size of each layer.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Zero-initialized recurrent state for a given batch size.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        LstmState {
            h: self
                .layers
                .iter()
                .map(|_| Mat::zeros(batch, self.hidden))
                .collect(),
            c: self
                .layers
                .iter()
                .map(|_| Mat::zeros(batch, self.hidden))
                .collect(),
        }
    }

    /// Forward pass over a sequence starting from the zero state.
    ///
    /// `xs[t]` is the `(batch, input_dim)` input at step `t`. Returns the
    /// top-layer hidden state at each step plus the BPTT cache.
    ///
    /// # Panics
    ///
    /// Panics if any step's input has the wrong width or inconsistent batch.
    pub fn forward(&self, xs: &[Mat]) -> (Vec<Mat>, LstmCache) {
        let _prof = profile::span("lstm-fwd");
        let batch = xs.first().map_or(0, Mat::rows);
        // Packed weights built once per call, reused across all timesteps.
        let w_packs: Vec<Mat> = self.layers.iter().map(LstmLayer::packed_weights).collect();
        let mut caches: Vec<Vec<StepCache>> = self
            .layers
            .iter()
            .map(|_| Vec::with_capacity(xs.len()))
            .collect();
        let mut state = self.zero_state(batch);
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "input width mismatch");
            assert_eq!(x.rows(), batch, "inconsistent batch size");
            // Layer 0 reads the borrowed input directly; layers above read the
            // hidden output handed down by the layer below. The recurrent
            // state buffers are recycled in place; the only per-step
            // allocations left are the buffers the BPTT cache must own.
            let mut below: Option<Mat> = None;
            for (l, layer) in self.layers.iter().enumerate() {
                let layer_in = below.as_ref().unwrap_or(x);
                let (h, cache) = layer.step_fused(&w_packs[l], layer_in, &state.h[l], &state.c[l]);
                state.c[l].copy_from(&cache.c);
                state.h[l].copy_from(&h);
                // lint:allow(hot-loop-alloc): cache vec is pre-reserved to the sequence length
                caches[l].push(cache);
                below = Some(h);
            }
            // The constructor guarantees at least one layer, so `below` is the
            // top layer's hidden output here.
            // lint:allow(hot-loop-alloc): zero-layer fallback clone is unreachable (num_layers > 0)
            let top = below.unwrap_or_else(|| x.clone());
            linalg::debug_assert_finite!(top.as_slice(), "lstm forward hidden output");
            // lint:allow(hot-loop-alloc): outputs vec is pre-reserved to the sequence length
            outputs.push(top);
        }
        (outputs, LstmCache { caches, batch })
    }

    /// One stateful forward step (generation path, no cache).
    ///
    /// Updates `state` in place and returns the top-layer hidden output.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim` or the state batch mismatches.
    pub fn step(&self, x: &Mat, state: &mut LstmState) -> Mat {
        assert_eq!(x.cols(), self.input_dim, "input width mismatch");
        let mut layer_in = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let (h, c) = layer.step_unpacked(&layer_in, &state.h[l], &state.c[l]);
            state.c[l] = c;
            state.h[l] = h.clone();
            layer_in = h;
        }
        layer_in
    }

    /// Full BPTT backward pass.
    ///
    /// `d_outputs[t]` is the loss gradient w.r.t. the top-layer hidden output
    /// at step `t`. Accumulates parameter gradients and returns the gradient
    /// w.r.t. each step's input.
    ///
    /// # Panics
    ///
    /// Panics if `d_outputs.len()` does not match the cached sequence length.
    pub fn backward(&mut self, cache: &LstmCache, d_outputs: &[Mat]) -> Vec<Mat> {
        let _prof = profile::span("lstm-bwd");
        let steps = cache.caches.first().map_or(0, Vec::len);
        assert_eq!(d_outputs.len(), steps, "gradient/sequence length mismatch");
        let batch = cache.batch;

        // dh arriving at each step of the current layer from the layer above.
        let mut dh_above: Vec<Mat> = d_outputs.to_vec();

        // Process layers top-down; within a layer, steps in reverse. All
        // per-layer buffers below are scratch reused across every timestep
        // of the sweep — the only per-step allocation is the returned dx.
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let hidden = layer.hidden;
            let in_dim = layer.in_dim();
            let w_pack = layer.packed_weights();
            // lint:allow(hot-loop-alloc): per-layer scratch, reused across all timesteps
            let mut dz = Mat::zeros(batch, 4 * hidden);
            // lint:allow(hot-loop-alloc): per-layer scratch, reused across all timesteps
            let mut dxh = Mat::zeros(batch, in_dim + hidden);
            // lint:allow(hot-loop-alloc): per-layer scratch, reused across all timesteps
            let mut g_pack = Mat::zeros(in_dim + hidden, 4 * hidden);
            let mut db = vec![0.0; 4 * hidden];
            // lint:allow(hot-loop-alloc): per-layer scratch, reused across all timesteps
            let mut dh_next = Mat::zeros(batch, hidden);
            // lint:allow(hot-loop-alloc): per-layer scratch, reused across all timesteps
            let mut dc_next = Mat::zeros(batch, hidden);
            // lint:allow(hot-loop-alloc): per-layer scratch, reused across all timesteps
            let mut dc_prev = Mat::zeros(batch, hidden);
            // c_prev at t = 0 (the zero initial state).
            // lint:allow(hot-loop-alloc): per-layer scratch, reused across all timesteps
            let c0 = Mat::zeros(batch, hidden);
            // lint:allow(hot-loop-alloc): zero-size placeholders, no heap allocation
            let mut dx_seq: Vec<Mat> = vec![Mat::zeros(0, 0); steps];
            for t in (0..steps).rev() {
                let sc = &cache.caches[l][t];
                // `dh_above[t]` is consumed exactly once per layer sweep, so
                // steal the buffer instead of cloning it; the whole vec is
                // replaced by `dx_seq` after the sweep.
                // lint:allow(hot-loop-alloc): zero-size placeholder, no heap allocation
                let mut dh = std::mem::replace(&mut dh_above[t], Mat::zeros(0, 0));
                dh.axpy(1.0, &dh_next);
                let c_prev = if t == 0 { &c0 } else { &cache.caches[l][t - 1].c };
                gate_backward(
                    sc.gates.as_slice(),
                    sc.tc.as_slice(),
                    c_prev.as_slice(),
                    dh.as_slice(),
                    dc_next.as_slice(),
                    dz.as_mut_slice(),
                    dc_prev.as_mut_slice(),
                    hidden,
                );
                // dc_prev becomes the next (earlier) step's incoming dc.
                std::mem::swap(&mut dc_next, &mut dc_prev);
                profile::add_flops((batch * hidden) as u64 * GATE_BWD_FLOPS_PER_UNIT);
                profile::add_bytes(((batch * hidden) * 12 * 8) as u64);

                // Parameter gradients: one packed product xh^T·dz covers
                // both weight matrices; rows [0, in_dim) land in w_ih.grad,
                // the rest in w_hh.grad.
                g_pack.fill_zero();
                sc.xh.t_matmul_acc(&dz, &mut g_pack);
                let split = in_dim * 4 * hidden;
                linalg::matrix::axpy_slice(
                    layer.w_ih.grad.as_mut_slice(),
                    1.0,
                    &g_pack.as_slice()[..split],
                );
                linalg::matrix::axpy_slice(
                    layer.w_hh.grad.as_mut_slice(),
                    1.0,
                    &g_pack.as_slice()[split..],
                );
                db.fill(0.0);
                for r in 0..batch {
                    linalg::matrix::axpy_slice(&mut db, 1.0, dz.row(r));
                }
                linalg::matrix::axpy_slice(layer.b.grad.row_mut(0), 1.0, &db);

                // Input gradients: [dx | dh_prev] from one packed GEMM
                // against w_pack^T, then split.
                dz.matmul_t_into(&w_pack, &mut dxh);
                // lint:allow(hot-loop-alloc): dx is returned per step via dx_seq
                let mut dx = Mat::zeros(batch, in_dim);
                for r in 0..batch {
                    let src = dxh.row(r);
                    dx.row_mut(r).copy_from_slice(&src[..in_dim]);
                    dh_next.row_mut(r).copy_from_slice(&src[in_dim..]);
                }
                dx_seq[t] = dx;
            }
            dh_above = dx_seq;
        }
        for dx in &dh_above {
            linalg::debug_assert_finite!(dx.as_slice(), "lstm backward input gradient");
        }
        dh_above
    }

    /// All parameters in stable order (layer 0 first; `w_ih`, `w_hh`, `b`).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w_ih, &mut l.w_hh, &mut l.b])
            .collect()
    }

    /// Resets all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.w_ih.zero_grad();
            l.w_hh.zero_grad();
            l.b.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::numeric::sigmoid;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn forward_shapes() {
        let lstm = Lstm::new(5, 8, 2, &mut rng(1));
        let xs: Vec<Mat> = (0..4).map(|_| Mat::filled(3, 5, 0.1)).collect();
        let (out, _) = lstm.forward(&xs);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|h| h.shape() == (3, 8)));
    }

    #[test]
    fn stateful_step_matches_forward() {
        let lstm = Lstm::new(4, 6, 2, &mut rng(2));
        let xs: Vec<Mat> = (0..5)
            .map(|t| Mat::from_fn(2, 4, |r, c| ((t + r + c) as f64 * 0.17).sin()))
            .collect();
        let (out, _) = lstm.forward(&xs);
        let mut state = lstm.zero_state(2);
        for (t, x) in xs.iter().enumerate() {
            let h = lstm.step(x, &mut state);
            for (a, b) in h.as_slice().iter().zip(out[t].as_slice()) {
                assert!((a - b).abs() < 1e-12, "step {t} diverges");
            }
        }
    }

    /// The pre-fusion forward pass, kept verbatim as the bit-exactness
    /// oracle: separate `x·W_ih` and `h_prev·W_hh` GEMMs, an in-place
    /// nonlinearity pass, then three elementwise passes for `c`, `tanh(c)`,
    /// and `h`.
    fn reference_forward(lstm: &Lstm, xs: &[Mat]) -> Vec<Mat> {
        let batch = xs.first().map_or(0, Mat::rows);
        let mut state = lstm.zero_state(batch);
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            let mut layer_in = x.clone();
            for (l, layer) in lstm.layers.iter().enumerate() {
                let hidden = layer.hidden;
                let mut gates = layer_in.matmul(&layer.w_ih.value);
                linalg::matrix::gemm_acc(&mut gates, &state.h[l], &layer.w_hh.value, 1.0);
                gates.add_row_broadcast(layer.b.value.row(0));
                for r in 0..batch {
                    for (col, v) in gates.row_mut(r).iter_mut().enumerate() {
                        let block = col / hidden;
                        *v = if block == 2 { v.tanh() } else { sigmoid(*v) };
                    }
                }
                let mut c = Mat::zeros(batch, hidden);
                let mut h = Mat::zeros(batch, hidden);
                for r in 0..batch {
                    for j in 0..hidden {
                        let g_row = gates.row(r);
                        let i = g_row[j];
                        let f = g_row[hidden + j];
                        let g = g_row[2 * hidden + j];
                        let o = g_row[3 * hidden + j];
                        let cv = f * state.c[l][(r, j)] + i * g;
                        c[(r, j)] = cv;
                        h[(r, j)] = o * cv.tanh();
                    }
                }
                state.c[l] = c;
                state.h[l] = h.clone();
                layer_in = h;
            }
            outputs.push(layer_in);
        }
        outputs
    }

    #[test]
    fn fused_forward_is_bit_identical_to_unfused_reference() {
        for &batch in &[1usize, 7, 32] {
            let lstm = Lstm::new(5, 6, 2, &mut rng(31));
            let xs: Vec<Mat> = (0..4)
                .map(|t| {
                    Mat::from_fn(batch, 5, |r, c| {
                        // Plant exact zeros so the GEMM zero-skip path runs.
                        if (t + r + c) % 3 == 0 {
                            0.0
                        } else {
                            ((t * 31 + r * 7 + c) as f64 * 0.23).sin()
                        }
                    })
                })
                .collect();
            let (fused, _) = lstm.forward(&xs);
            let reference = reference_forward(&lstm, &xs);
            for (t, (a, b)) in fused.iter().zip(&reference).enumerate() {
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "batch {batch}, step {t}: fused {x} != reference {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_flop_accounting_is_exact() {
        // One step, two layers: per layer the packed GEMM accounts
        // 2·b·4h·(in+h) and the gate sweep b·h·GATE_FWD_FLOPS_PER_UNIT.
        let (b, h, ind) = (2u64, 4u64, 3u64);
        let lstm = Lstm::new(ind as usize, h as usize, 2, &mut rng(32));
        let xs = [Mat::filled(b as usize, ind as usize, 0.1)];
        let prof = profile::Profiler::new();
        {
            let _lane = prof.activate("test");
            let _ = lstm.forward(&xs);
        }
        let spans = prof.spans();
        let fwd = spans
            .iter()
            .find(|s| s.name == "lstm-fwd")
            .expect("lstm-fwd span recorded");
        let expected: u64 = [ind, h]
            .iter()
            .map(|&l_in| 2 * b * (4 * h) * (l_in + h) + b * h * GATE_FWD_FLOPS_PER_UNIT)
            .sum();
        assert_eq!(fwd.flops, expected, "forward flop accounting drifted");
    }

    #[test]
    fn backward_flop_accounting_is_exact() {
        let (b, h, ind, steps) = (2u64, 4u64, 3u64, 2usize);
        let mut lstm = Lstm::new(ind as usize, h as usize, 1, &mut rng(33));
        let xs: Vec<Mat> = (0..steps)
            .map(|_| Mat::filled(b as usize, ind as usize, 0.1))
            .collect();
        let (out, cache) = lstm.forward(&xs);
        let d_out: Vec<Mat> = out
            .iter()
            .map(|o| Mat::filled(o.rows(), o.cols(), 1.0))
            .collect();
        let prof = profile::Profiler::new();
        {
            let _lane = prof.activate("test");
            let _ = lstm.backward(&cache, &d_out);
        }
        let spans = prof.spans();
        let bwd = spans
            .iter()
            .find(|s| s.name == "lstm-bwd")
            .expect("lstm-bwd span recorded");
        // Per step: gate sweep b·h·GATE_BWD, packed grad GEMM
        // 2·(in+h)·4h·b, packed input-grad GEMM 2·b·(in+h)·4h.
        let per_step =
            b * h * GATE_BWD_FLOPS_PER_UNIT + 2 * 2 * b * (ind + h) * (4 * h);
        assert_eq!(
            bwd.flops,
            per_step * steps as u64,
            "backward flop accounting drifted"
        );
    }

    #[test]
    fn outputs_bounded_by_tanh_sigmoid() {
        // |h| = |o * tanh(c)| <= 1 always.
        let lstm = Lstm::new(3, 4, 1, &mut rng(3));
        let xs: Vec<Mat> = (0..20).map(|_| Mat::filled(1, 3, 100.0)).collect();
        let (out, _) = lstm.forward(&xs);
        assert!(out.iter().all(|h| h.max_abs() <= 1.0));
    }

    #[test]
    fn state_carries_information() {
        // Same input at two consecutive steps must generally yield different
        // outputs because the state evolved.
        let lstm = Lstm::new(2, 4, 1, &mut rng(4));
        let x = Mat::filled(1, 2, 0.5);
        let (out, _) = lstm.forward(&[x.clone(), x]);
        let diff: f64 = out[0]
            .as_slice()
            .iter()
            .zip(out[1].as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-9, "state had no effect");
    }

    #[test]
    fn backward_produces_input_grads() {
        let mut lstm = Lstm::new(3, 4, 2, &mut rng(5));
        let xs: Vec<Mat> = (0..3).map(|_| Mat::filled(2, 3, 0.2)).collect();
        let (out, cache) = lstm.forward(&xs);
        let d_out: Vec<Mat> = out
            .iter()
            .map(|h| Mat::filled(h.rows(), h.cols(), 1.0))
            .collect();
        let dxs = lstm.backward(&cache, &d_out);
        assert_eq!(dxs.len(), 3);
        assert!(dxs.iter().all(|d| d.shape() == (2, 3)));
        // Gradients should be nonzero somewhere.
        assert!(dxs.iter().any(|d| d.max_abs() > 0.0));
        // Parameter grads accumulated.
        assert!(lstm.params_mut().iter().any(|p| p.grad.max_abs() > 0.0));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut lstm = Lstm::new(2, 3, 2, &mut rng(6));
        let xs: Vec<Mat> = (0..2).map(|_| Mat::filled(1, 2, 0.3)).collect();
        let (out, cache) = lstm.forward(&xs);
        let d_out: Vec<Mat> = out.iter().map(|h| Mat::filled(1, 3, 1.0)).collect();
        let _ = lstm.backward(&cache, &d_out);
        lstm.zero_grad();
        assert!(lstm.params_mut().iter().all(|p| p.grad.max_abs() == 0.0));
    }

    #[test]
    fn param_count_and_order() {
        let mut lstm = Lstm::new(3, 4, 2, &mut rng(7));
        let params = lstm.params_mut();
        assert_eq!(params.len(), 6);
        // Layer 0: w_ih (3 x 16), w_hh (4 x 16), b (1 x 16).
        assert_eq!(params[0].value.shape(), (3, 16));
        assert_eq!(params[1].value.shape(), (4, 16));
        assert_eq!(params[2].value.shape(), (1, 16));
        // Layer 1 input is the hidden size.
        assert_eq!(params[3].value.shape(), (4, 16));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let lstm = Lstm::new(3, 4, 1, &mut rng(8));
        let _ = lstm.forward(&[Mat::zeros(1, 5)]);
    }

    /// Debug builds trip the finite-value tripwire when a NaN is seeded into
    /// the input: the forward pass propagates it into the hidden state and
    /// `debug_assert_finite!` names the poisoned output.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite value")]
    fn seeded_nan_input_trips_forward_tripwire() {
        let lstm = Lstm::new(3, 4, 1, &mut rng(11));
        let mut x = Mat::filled(1, 3, 0.2);
        x[(0, 1)] = f64::NAN;
        let _ = lstm.forward(&[x]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite value")]
    fn seeded_nan_gradient_trips_backward_tripwire() {
        let mut lstm = Lstm::new(3, 4, 1, &mut rng(12));
        let xs = [Mat::filled(2, 3, 0.2)];
        let (out, cache) = lstm.forward(&xs);
        let mut d_out = Mat::filled(out[0].rows(), out[0].cols(), 1.0);
        d_out[(0, 0)] = f64::NAN;
        let _ = lstm.backward(&cache, &[d_out]);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let lstm = Lstm::new(2, 3, 1, &mut rng(9));
        let b = &lstm.layers[0].b.value;
        assert!(b.as_slice()[3..6].iter().all(|&x| x == 1.0));
    }
}
