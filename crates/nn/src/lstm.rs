//! Multi-layer LSTM with hand-derived backpropagation-through-time.
//!
//! Gate layout in all `4H`-wide matrices is `[input, forget, cell, output]`.
//! The forward pass over a sequence caches every intermediate activation so
//! [`Lstm::backward`] can run full BPTT; the stateful [`LstmState`] path
//! supports one-job-at-a-time sampling during trace generation.

use crate::init::{lstm_bias, xavier_uniform};
use crate::param::Param;
use linalg::numeric::{dsigmoid_from_output, dtanh_from_output, sigmoid};
use linalg::Mat;
use obsv::profile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Approximate flops per hidden unit per batch row for the elementwise gate
/// work in one forward step: four nonlinearities (~10 flops each as evaluated
/// here) plus the cell update `c = f*c_prev + i*g`, `tanh(c)`, `h = o*tc`.
const GATE_FWD_FLOPS_PER_UNIT: u64 = 56;
/// Same for one backward step: derivative-from-output forms are cheap (a
/// multiply or two each) but there are eight of them plus the chain sums.
const GATE_BWD_FLOPS_PER_UNIT: u64 = 30;

/// One LSTM layer's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmLayer {
    /// Input-to-hidden weights, `(in_dim, 4*hidden)`.
    pub w_ih: Param,
    /// Hidden-to-hidden weights, `(hidden, 4*hidden)`.
    pub w_hh: Param,
    /// Bias, `(1, 4*hidden)`.
    pub b: Param,
    hidden: usize,
}

/// Cached activations for one layer at one time step.
#[derive(Debug, Clone)]
struct StepCache {
    /// Layer input at this step, `(batch, in_dim)`.
    x: Mat,
    /// Previous hidden state, `(batch, hidden)`.
    h_prev: Mat,
    /// Previous cell state, `(batch, hidden)`.
    c_prev: Mat,
    /// Gate activations `[i, f, g, o]` packed as `(batch, 4*hidden)`.
    gates: Mat,
    /// New cell state, `(batch, hidden)`.
    c: Mat,
    /// `tanh(c)`, `(batch, hidden)`.
    tc: Mat,
}

/// Forward-pass cache for a whole sequence (all layers, all steps).
#[derive(Debug)]
pub struct LstmCache {
    // caches[layer][t]
    caches: Vec<Vec<StepCache>>,
    batch: usize,
}

/// Recurrent state for stateful (generation-time) stepping.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Per-layer hidden states, each `(batch, hidden)`.
    pub h: Vec<Mat>,
    /// Per-layer cell states, each `(batch, hidden)`.
    pub c: Vec<Mat>,
}

impl LstmLayer {
    fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self {
            w_ih: Param::new(xavier_uniform(in_dim, 4 * hidden, rng)),
            w_hh: Param::new(xavier_uniform(hidden, 4 * hidden, rng)),
            b: Param::new(lstm_bias(hidden, 1.0)),
            hidden,
        }
    }

    /// One forward step; returns `(h, cache)`.
    fn step(&self, x: &Mat, h_prev: &Mat, c_prev: &Mat) -> (Mat, StepCache) {
        let hidden = self.hidden;
        let batch = x.rows();
        // Pre-activations: x·W_ih + h_prev·W_hh + b.
        let mut z = x.matmul(&self.w_ih.value);
        linalg::matrix::gemm_acc(&mut z, h_prev, &self.w_hh.value, 1.0);
        z.add_row_broadcast(self.b.value.row(0));

        // Apply gate nonlinearities in place: sigmoid on i/f/o, tanh on g.
        let mut gates = z;
        for r in 0..batch {
            let row = gates.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                let block = c / hidden;
                *v = if block == 2 { v.tanh() } else { sigmoid(*v) };
            }
        }

        let mut c = Mat::zeros(batch, hidden);
        let mut tc = Mat::zeros(batch, hidden);
        let mut h = Mat::zeros(batch, hidden);
        for r in 0..batch {
            let g_row = gates.row(r);
            for j in 0..hidden {
                let i = g_row[j];
                let f = g_row[hidden + j];
                let g = g_row[2 * hidden + j];
                let o = g_row[3 * hidden + j];
                let cv = f * c_prev[(r, j)] + i * g;
                let t = cv.tanh();
                c[(r, j)] = cv;
                tc[(r, j)] = t;
                h[(r, j)] = o * t;
            }
        }
        // The two GEMMs above account for themselves inside linalg; this
        // covers the elementwise gate work.
        profile::add_flops((batch * hidden) as u64 * GATE_FWD_FLOPS_PER_UNIT);
        profile::add_bytes(((batch * hidden) * 7 * 8) as u64);
        let cache = StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            gates,
            c: c.clone(),
            tc,
        };
        (h, cache)
    }

    /// One backward step.
    ///
    /// `dh` is the gradient arriving at this step's hidden output (from the
    /// layer above and/or the next time step); `dc` is the running cell-state
    /// gradient from the next time step. Returns `(dx, dh_prev, dc_prev)` and
    /// accumulates parameter gradients.
    fn step_backward(&mut self, cache: &StepCache, dh: &Mat, dc_in: &Mat) -> (Mat, Mat, Mat) {
        let hidden = self.hidden;
        let batch = dh.rows();
        let mut dz = Mat::zeros(batch, 4 * hidden);
        let mut dc_prev = Mat::zeros(batch, hidden);
        for r in 0..batch {
            let g_row = cache.gates.row(r);
            for j in 0..hidden {
                let i = g_row[j];
                let f = g_row[hidden + j];
                let g = g_row[2 * hidden + j];
                let o = g_row[3 * hidden + j];
                let tc = cache.tc[(r, j)];
                let dhv = dh[(r, j)];

                // h = o * tanh(c).
                let d_o = dhv * tc;
                let mut dc = dc_in[(r, j)] + dhv * o * dtanh_from_output(tc);

                // c = f * c_prev + i * g.
                let d_f = dc * cache.c_prev[(r, j)];
                let d_i = dc * g;
                let d_g = dc * i;
                dc *= f;
                dc_prev[(r, j)] = dc;

                dz[(r, j)] = d_i * dsigmoid_from_output(i);
                dz[(r, hidden + j)] = d_f * dsigmoid_from_output(f);
                dz[(r, 2 * hidden + j)] = d_g * dtanh_from_output(g);
                dz[(r, 3 * hidden + j)] = d_o * dsigmoid_from_output(o);
            }
        }

        profile::add_flops((batch * hidden) as u64 * GATE_BWD_FLOPS_PER_UNIT);
        profile::add_bytes(((batch * hidden) * 8 * 8) as u64);

        // Parameter gradients.
        self.w_ih.grad.axpy(1.0, &cache.x.t_matmul(&dz));
        self.w_hh.grad.axpy(1.0, &cache.h_prev.t_matmul(&dz));
        let db = dz.col_sums();
        linalg::matrix::axpy_slice(self.b.grad.row_mut(0), 1.0, &db);

        // Input gradients.
        let dx = dz.matmul_t(&self.w_ih.value);
        let dh_prev = dz.matmul_t(&self.w_hh.value);
        (dx, dh_prev, dc_prev)
    }
}

/// A stack of LSTM layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
    input_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Creates a stack of `num_layers` LSTM layers.
    ///
    /// The first layer maps `input_dim -> hidden`; subsequent layers map
    /// `hidden -> hidden`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or `hidden == 0`.
    pub fn new(input_dim: usize, hidden: usize, num_layers: usize, rng: &mut impl Rng) -> Self {
        assert!(num_layers > 0, "need at least one layer");
        assert!(hidden > 0, "hidden size must be positive");
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let in_dim = if l == 0 { input_dim } else { hidden };
            layers.push(LstmLayer::new(in_dim, hidden, rng));
        }
        Self {
            layers,
            input_dim,
            hidden,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden size of each layer.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Zero-initialized recurrent state for a given batch size.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        LstmState {
            h: self
                .layers
                .iter()
                .map(|_| Mat::zeros(batch, self.hidden))
                .collect(),
            c: self
                .layers
                .iter()
                .map(|_| Mat::zeros(batch, self.hidden))
                .collect(),
        }
    }

    /// Forward pass over a sequence starting from the zero state.
    ///
    /// `xs[t]` is the `(batch, input_dim)` input at step `t`. Returns the
    /// top-layer hidden state at each step plus the BPTT cache.
    ///
    /// # Panics
    ///
    /// Panics if any step's input has the wrong width or inconsistent batch.
    pub fn forward(&self, xs: &[Mat]) -> (Vec<Mat>, LstmCache) {
        let _prof = profile::span("lstm-fwd");
        let batch = xs.first().map_or(0, Mat::rows);
        let mut caches: Vec<Vec<StepCache>> = self
            .layers
            .iter()
            .map(|_| Vec::with_capacity(xs.len()))
            .collect();
        let mut state = self.zero_state(batch);
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "input width mismatch");
            assert_eq!(x.rows(), batch, "inconsistent batch size");
            // Layer 0 reads the borrowed input directly; layers above read the
            // hidden output handed down by the layer below. No per-step clone
            // of `x`, and the recurrent state buffers are recycled in place.
            let mut below: Option<Mat> = None;
            for (l, layer) in self.layers.iter().enumerate() {
                let layer_in = below.as_ref().unwrap_or(x);
                let (h, cache) = layer.step(layer_in, &state.h[l], &state.c[l]);
                state.c[l].copy_from(&cache.c);
                state.h[l].copy_from(&h);
                // lint:allow(hot-loop-alloc): cache vec is pre-reserved to the sequence length
                caches[l].push(cache);
                below = Some(h);
            }
            // The constructor guarantees at least one layer, so `below` is the
            // top layer's hidden output here.
            // lint:allow(hot-loop-alloc): zero-layer fallback clone is unreachable (num_layers > 0)
            let top = below.unwrap_or_else(|| x.clone());
            linalg::debug_assert_finite!(top.as_slice(), "lstm forward hidden output");
            // lint:allow(hot-loop-alloc): outputs vec is pre-reserved to the sequence length
            outputs.push(top);
        }
        (outputs, LstmCache { caches, batch })
    }

    /// One stateful forward step (generation path, no cache).
    ///
    /// Updates `state` in place and returns the top-layer hidden output.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim` or the state batch mismatches.
    pub fn step(&self, x: &Mat, state: &mut LstmState) -> Mat {
        assert_eq!(x.cols(), self.input_dim, "input width mismatch");
        let mut layer_in = x.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            let (h, cache) = layer.step(&layer_in, &state.h[l], &state.c[l]);
            state.c[l] = cache.c;
            state.h[l] = h.clone();
            layer_in = h;
        }
        layer_in
    }

    /// Full BPTT backward pass.
    ///
    /// `d_outputs[t]` is the loss gradient w.r.t. the top-layer hidden output
    /// at step `t`. Accumulates parameter gradients and returns the gradient
    /// w.r.t. each step's input.
    ///
    /// # Panics
    ///
    /// Panics if `d_outputs.len()` does not match the cached sequence length.
    pub fn backward(&mut self, cache: &LstmCache, d_outputs: &[Mat]) -> Vec<Mat> {
        let _prof = profile::span("lstm-bwd");
        let steps = cache.caches.first().map_or(0, Vec::len);
        assert_eq!(d_outputs.len(), steps, "gradient/sequence length mismatch");
        let batch = cache.batch;

        // dh arriving at each step of the current layer from the layer above.
        let mut dh_above: Vec<Mat> = d_outputs.to_vec();

        // Process layers top-down; within a layer, steps in reverse.
        for (l, layer) in self.layers.iter_mut().enumerate().rev() {
            let mut dh_next = Mat::zeros(batch, layer.hidden);
            let mut dc_next = Mat::zeros(batch, layer.hidden);
            let mut dx_seq: Vec<Mat> = vec![Mat::zeros(0, 0); steps];
            for t in (0..steps).rev() {
                // `dh_above[t]` is consumed exactly once per layer sweep, so
                // steal the buffer instead of cloning it; the whole vec is
                // replaced by `dx_seq` after the sweep.
                let mut dh = std::mem::replace(&mut dh_above[t], Mat::zeros(0, 0));
                dh.axpy(1.0, &dh_next);
                let (dx, dh_prev, dc_prev) =
                    layer.step_backward(&cache.caches[l][t], &dh, &dc_next);
                dh_next = dh_prev;
                dc_next = dc_prev;
                dx_seq[t] = dx;
            }
            dh_above = dx_seq;
        }
        for dx in &dh_above {
            linalg::debug_assert_finite!(dx.as_slice(), "lstm backward input gradient");
        }
        dh_above
    }

    /// All parameters in stable order (layer 0 first; `w_ih`, `w_hh`, `b`).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| [&mut l.w_ih, &mut l.w_hh, &mut l.b])
            .collect()
    }

    /// Resets all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.w_ih.zero_grad();
            l.w_hh.zero_grad();
            l.b.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn forward_shapes() {
        let lstm = Lstm::new(5, 8, 2, &mut rng(1));
        let xs: Vec<Mat> = (0..4).map(|_| Mat::filled(3, 5, 0.1)).collect();
        let (out, _) = lstm.forward(&xs);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|h| h.shape() == (3, 8)));
    }

    #[test]
    fn stateful_step_matches_forward() {
        let lstm = Lstm::new(4, 6, 2, &mut rng(2));
        let xs: Vec<Mat> = (0..5)
            .map(|t| Mat::from_fn(2, 4, |r, c| ((t + r + c) as f64 * 0.17).sin()))
            .collect();
        let (out, _) = lstm.forward(&xs);
        let mut state = lstm.zero_state(2);
        for (t, x) in xs.iter().enumerate() {
            let h = lstm.step(x, &mut state);
            for (a, b) in h.as_slice().iter().zip(out[t].as_slice()) {
                assert!((a - b).abs() < 1e-12, "step {t} diverges");
            }
        }
    }

    #[test]
    fn outputs_bounded_by_tanh_sigmoid() {
        // |h| = |o * tanh(c)| <= 1 always.
        let lstm = Lstm::new(3, 4, 1, &mut rng(3));
        let xs: Vec<Mat> = (0..20).map(|_| Mat::filled(1, 3, 100.0)).collect();
        let (out, _) = lstm.forward(&xs);
        assert!(out.iter().all(|h| h.max_abs() <= 1.0));
    }

    #[test]
    fn state_carries_information() {
        // Same input at two consecutive steps must generally yield different
        // outputs because the state evolved.
        let lstm = Lstm::new(2, 4, 1, &mut rng(4));
        let x = Mat::filled(1, 2, 0.5);
        let (out, _) = lstm.forward(&[x.clone(), x]);
        let diff: f64 = out[0]
            .as_slice()
            .iter()
            .zip(out[1].as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-9, "state had no effect");
    }

    #[test]
    fn backward_produces_input_grads() {
        let mut lstm = Lstm::new(3, 4, 2, &mut rng(5));
        let xs: Vec<Mat> = (0..3).map(|_| Mat::filled(2, 3, 0.2)).collect();
        let (out, cache) = lstm.forward(&xs);
        let d_out: Vec<Mat> = out
            .iter()
            .map(|h| Mat::filled(h.rows(), h.cols(), 1.0))
            .collect();
        let dxs = lstm.backward(&cache, &d_out);
        assert_eq!(dxs.len(), 3);
        assert!(dxs.iter().all(|d| d.shape() == (2, 3)));
        // Gradients should be nonzero somewhere.
        assert!(dxs.iter().any(|d| d.max_abs() > 0.0));
        // Parameter grads accumulated.
        assert!(lstm.params_mut().iter().any(|p| p.grad.max_abs() > 0.0));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut lstm = Lstm::new(2, 3, 2, &mut rng(6));
        let xs: Vec<Mat> = (0..2).map(|_| Mat::filled(1, 2, 0.3)).collect();
        let (out, cache) = lstm.forward(&xs);
        let d_out: Vec<Mat> = out.iter().map(|h| Mat::filled(1, 3, 1.0)).collect();
        let _ = lstm.backward(&cache, &d_out);
        lstm.zero_grad();
        assert!(lstm.params_mut().iter().all(|p| p.grad.max_abs() == 0.0));
    }

    #[test]
    fn param_count_and_order() {
        let mut lstm = Lstm::new(3, 4, 2, &mut rng(7));
        let params = lstm.params_mut();
        assert_eq!(params.len(), 6);
        // Layer 0: w_ih (3 x 16), w_hh (4 x 16), b (1 x 16).
        assert_eq!(params[0].value.shape(), (3, 16));
        assert_eq!(params[1].value.shape(), (4, 16));
        assert_eq!(params[2].value.shape(), (1, 16));
        // Layer 1 input is the hidden size.
        assert_eq!(params[3].value.shape(), (4, 16));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let lstm = Lstm::new(3, 4, 1, &mut rng(8));
        let _ = lstm.forward(&[Mat::zeros(1, 5)]);
    }

    /// Debug builds trip the finite-value tripwire when a NaN is seeded into
    /// the input: the forward pass propagates it into the hidden state and
    /// `debug_assert_finite!` names the poisoned output.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite value")]
    fn seeded_nan_input_trips_forward_tripwire() {
        let lstm = Lstm::new(3, 4, 1, &mut rng(11));
        let mut x = Mat::filled(1, 3, 0.2);
        x[(0, 1)] = f64::NAN;
        let _ = lstm.forward(&[x]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite value")]
    fn seeded_nan_gradient_trips_backward_tripwire() {
        let mut lstm = Lstm::new(3, 4, 1, &mut rng(12));
        let xs = [Mat::filled(2, 3, 0.2)];
        let (out, cache) = lstm.forward(&xs);
        let mut d_out = Mat::filled(out[0].rows(), out[0].cols(), 1.0);
        d_out[(0, 0)] = f64::NAN;
        let _ = lstm.backward(&cache, &[d_out]);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let lstm = Lstm::new(2, 3, 1, &mut rng(9));
        let b = &lstm.layers[0].b.value;
        assert!(b.as_slice()[3..6].iter().all(|&x| x == 1.0));
    }
}
