//! Neural-network substrate for the `cloudgen` workspace.
//!
//! Implements, from scratch and without an autodiff framework, everything the
//! paper's two sequence models need:
//!
//! - [`Linear`]: a fully-connected layer with explicit backward pass.
//! - [`Lstm`]: a multi-layer LSTM with full backpropagation-through-time
//!   (BPTT); forward passes cache activations, and a stateful [`LstmState`]
//!   supports one-step-at-a-time generation.
//! - [`LstmNetwork`]: LSTM stack + linear output head, the shape used by both
//!   the flavor model and the lifetime (hazard) model.
//! - [`Adam`]: the Adam optimizer with decoupled weight decay and global-norm
//!   gradient clipping.
//! - [`loss`]: softmax cross-entropy (multinomial NLL) and masked
//!   BCE-with-logits (the censoring-aware hazard loss).
//! - [`gradcheck`]: a finite-difference gradient checker used by the test
//!   suite to validate every hand-derived backward pass.
//!
//! All gradients were derived by hand; the property-test suite verifies them
//! against central finite differences on random inputs.

#![forbid(unsafe_code)]

pub mod accum;
pub mod adam;
pub mod codec;
pub mod gradcheck;
pub mod init;
pub mod kernel;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod network;
pub mod param;
pub mod rnn;

pub use accum::{tree_reduce, GradAccum};
pub use adam::{Adam, AdamConfig, StepError};
pub use codec::CodecError;
pub use linear::Linear;
pub use lstm::{Lstm, LstmState};
pub use network::LstmNetwork;
pub use param::Param;
pub use rnn::{Rnn, RnnNetwork, RnnState};
