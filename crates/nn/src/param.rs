//! Trainable parameter: a value matrix paired with its gradient accumulator.

use linalg::Mat;
use serde::{Deserialize, Serialize};

/// A trainable parameter tensor with its accumulated gradient.
///
/// Layers expose their parameters as `&mut Param` lists in a stable order;
/// the optimizer keys its per-parameter state by position in that list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Accumulated gradient (same shape as `value`).
    #[serde(skip, default = "default_grad")]
    pub grad: Mat,
}

// Serde needs a default for the skipped gradient; the empty placeholder is
// re-allocated to the right shape by `zero_grad` on first use.
fn default_grad() -> Mat {
    Mat::zeros(0, 0)
}

impl Param {
    /// Creates a parameter from an initial value, with a zeroed gradient.
    pub fn new(value: Mat) -> Self {
        let grad = Mat::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Resets the gradient accumulator to zero (allocating it if the param
    /// was just deserialized and carries an empty placeholder gradient).
    pub fn zero_grad(&mut self) {
        if self.grad.shape() != self.value.shape() {
            self.grad = Mat::zeros(self.value.rows(), self.value.cols());
        } else {
            self.grad.fill_zero();
        }
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.value.rows() * self.value.cols()
    }

    /// True if the parameter holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Mat::filled(2, 3, 1.5));
        assert_eq!(p.grad.shape(), (2, 3));
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Mat::zeros(2, 2));
        p.grad = Mat::filled(2, 2, 3.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_grad_reallocates_after_shape_mismatch() {
        let mut p = Param::new(Mat::zeros(2, 2));
        p.grad = Mat::zeros(0, 0); // simulate deserialized placeholder
        p.zero_grad();
        assert_eq!(p.grad.shape(), (2, 2));
    }
}
