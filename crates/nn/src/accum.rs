//! Gradient accumulation with a deterministic merge order.
//!
//! Data-parallel training shards a minibatch across workers; each worker
//! runs forward/backward on its shard and produces a [`GradAccum`] — a
//! snapshot of the per-parameter gradient tensors in the network's stable
//! parameter order. Because floating-point addition is not associative,
//! the *order* in which shard gradients are combined is part of the
//! numeric result: [`tree_reduce`] always combines them pairwise in shard
//! order — `((g0+g1)+(g2+g3))…` — so the reduced gradient is a pure
//! function of the shard layout, never of thread scheduling. That is the
//! property that makes `--threads N` training bit-for-bit identical to
//! `--threads 1`.

use crate::network::LstmNetwork;
use linalg::Mat;

/// A snapshot of a network's accumulated gradients, one matrix per
/// parameter, in [`LstmNetwork::params_mut`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct GradAccum {
    grads: Vec<Mat>,
}

impl GradAccum {
    /// Snapshots the gradients currently accumulated in `net`.
    pub fn take(net: &mut LstmNetwork) -> Self {
        Self {
            grads: net.params_mut().into_iter().map(|p| p.grad.clone()).collect(),
        }
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators came from differently-shaped
    /// networks.
    pub fn merge_from(&mut self, other: &GradAccum) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "grad accumulator parameter count mismatch"
        );
        for (a, b) in self.grads.iter_mut().zip(other.grads.iter()) {
            a.axpy(1.0, b);
        }
    }

    /// Scales every gradient by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for g in &mut self.grads {
            g.scale(alpha);
        }
    }

    /// Writes the snapshot back into `net`'s gradient accumulators,
    /// replacing whatever was there.
    ///
    /// # Panics
    ///
    /// Panics if `net` has a different parameter list than the snapshot.
    pub fn install(&self, net: &mut LstmNetwork) {
        let mut params = net.params_mut();
        assert_eq!(
            params.len(),
            self.grads.len(),
            "grad accumulator parameter count mismatch"
        );
        for (p, g) in params.iter_mut().zip(self.grads.iter()) {
            if p.grad.shape() == g.shape() {
                p.grad.as_mut_slice().copy_from_slice(g.as_slice());
            } else {
                p.grad = g.clone();
            }
        }
    }

    /// Number of parameter tensors in the snapshot.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True if the snapshot holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }
}

/// Reduces per-shard gradient accumulators in **fixed tree order**:
/// round one merges `(0,1), (2,3), …`, round two merges the survivors
/// pairwise again, until one remains. An odd tail passes through a round
/// unmerged. Returns `None` for an empty input.
///
/// The reduction order depends only on the number of shards — never on
/// which thread produced which accumulator or when it finished — so the
/// summed gradient is reproducible bit-for-bit across thread counts.
pub fn tree_reduce(mut level: Vec<GradAccum>) -> Option<GradAccum> {
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge_from(&b);
            }
            next.push(a);
        }
        level = next;
    }
    level.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> LstmNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        LstmNetwork::new(4, 6, 1, 3, &mut rng)
    }

    fn fill_grads(net: &mut LstmNetwork, base: f64) {
        for (i, p) in net.params_mut().into_iter().enumerate() {
            p.zero_grad();
            let shape = p.value.shape();
            p.grad = Mat::from_fn(shape.0, shape.1, |r, c| {
                base + (i * 100 + r * 10 + c) as f64 * 0.01
            });
        }
    }

    #[test]
    fn take_and_install_round_trip() {
        let mut net = small_net(1);
        fill_grads(&mut net, 0.5);
        let snap = GradAccum::take(&mut net);
        let mut other = small_net(1);
        other.zero_grad();
        snap.install(&mut other);
        for (a, b) in net.params_mut().iter().zip(other.params_mut().iter()) {
            assert_eq!(a.grad, b.grad);
        }
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut net = small_net(2);
        fill_grads(&mut net, 1.0);
        let mut a = GradAccum::take(&mut net);
        let b = a.clone();
        a.merge_from(&b);
        let mut doubled = b.clone();
        doubled.scale(2.0);
        assert_eq!(a, doubled);
    }

    #[test]
    fn tree_reduce_matches_explicit_pairing() {
        let mut net = small_net(3);
        let accums: Vec<GradAccum> = (0..4)
            .map(|i| {
                fill_grads(&mut net, i as f64);
                GradAccum::take(&mut net)
            })
            .collect();
        let [g0, g1, g2, g3]: [GradAccum; 4] = accums.clone().try_into().ok().expect("4 accums");
        let mut left = g0;
        left.merge_from(&g1);
        let mut right = g2;
        right.merge_from(&g3);
        left.merge_from(&right);
        let reduced = tree_reduce(accums).expect("non-empty");
        // Bit-for-bit: same pairing order, same additions.
        assert_eq!(reduced, left);
    }

    #[test]
    fn tree_reduce_handles_odd_and_trivial_counts() {
        assert!(tree_reduce(Vec::new()).is_none());
        let mut net = small_net(4);
        fill_grads(&mut net, 2.0);
        let single = GradAccum::take(&mut net);
        assert_eq!(tree_reduce(vec![single.clone()]), Some(single.clone()));
        // Odd count: ((0+1), 2) then ((0+1)+2).
        let accums = vec![single.clone(), single.clone(), single.clone()];
        let mut expect = single.clone();
        expect.merge_from(&single);
        expect.merge_from(&single);
        assert_eq!(tree_reduce(accums), Some(expect));
    }
}
