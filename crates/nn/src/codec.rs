//! Versioned, checksummed JSON envelope for persisted model state.
//!
//! Raw `serde_json` round-trips silently accept truncated files (a torn write
//! can still be a prefix that parses) and have no notion of schema drift. The
//! envelope closes both holes: every persisted artifact is wrapped as
//!
//! ```json
//! {"schema_version":1,"kind":"network","crc32":305419896,"payload":"<json>"}
//! ```
//!
//! where `crc32` covers the `payload` string byte-for-byte. Decoding verifies
//! version, kind, and checksum before handing the payload to the caller, and
//! reports failures as a typed [`CodecError`] so fault-tolerant readers (the
//! checkpoint store) can distinguish "corrupt, try the previous file" from
//! "programmer error".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Current envelope schema version. Bump when the envelope layout (not the
/// payload) changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Why an envelope failed to decode.
#[derive(Debug)]
pub enum CodecError {
    /// The file is not a well-formed envelope (bad JSON or missing fields) —
    /// typical of truncated writes.
    Malformed(serde_json::Error),
    /// The envelope was written by an incompatible schema version.
    SchemaVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The envelope holds a different kind of artifact than requested
    /// (e.g., an optimizer checkpoint where a network was expected).
    KindMismatch {
        /// Kind found in the file.
        found: String,
        /// Kind the caller asked for.
        expected: String,
    },
    /// The payload checksum does not match — the file was corrupted after
    /// being written.
    ChecksumMismatch {
        /// CRC32 recorded in the envelope.
        recorded: u32,
        /// CRC32 computed over the payload as read.
        computed: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Malformed(e) => write!(f, "malformed envelope: {e}"),
            CodecError::SchemaVersion { found, expected } => {
                write!(f, "schema version {found} (expected {expected})")
            }
            CodecError::KindMismatch { found, expected } => {
                write!(f, "artifact kind {found:?} (expected {expected:?})")
            }
            CodecError::ChecksumMismatch { recorded, computed } => write!(
                f,
                "checksum mismatch: recorded {recorded:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for CodecError {
    fn from(e: serde_json::Error) -> Self {
        CodecError::Malformed(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Envelope {
    schema_version: u32,
    kind: String,
    crc32: u32,
    payload: String,
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `bytes`.
///
/// Bitwise (no lookup table): checkpoint payloads are small enough that the
/// ~8 shifts per byte are noise next to JSON serialization.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Wraps an already-serialized `payload` in a versioned, checksummed
/// envelope tagged with `kind`.
pub fn encode_envelope(kind: &str, payload: &str) -> String {
    let env = Envelope {
        schema_version: SCHEMA_VERSION,
        kind: kind.to_string(),
        crc32: crc32(payload.as_bytes()),
        payload: payload.to_string(),
    };
    // lint:allow(no-panic): serializing a struct of strings/ints cannot fail.
    serde_json::to_string(&env).expect("envelope serialization is infallible")
}

/// Unwraps an envelope, verifying schema version, artifact kind, and payload
/// checksum, and returns the inner payload string.
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first verification failure:
/// malformed JSON, version mismatch, kind mismatch, or checksum mismatch.
pub fn decode_envelope(kind: &str, s: &str) -> Result<String, CodecError> {
    let env: Envelope = serde_json::from_str(s)?;
    if env.schema_version != SCHEMA_VERSION {
        return Err(CodecError::SchemaVersion {
            found: env.schema_version,
            expected: SCHEMA_VERSION,
        });
    }
    if env.kind != kind {
        return Err(CodecError::KindMismatch {
            found: env.kind,
            expected: kind.to_string(),
        });
    }
    let computed = crc32(env.payload.as_bytes());
    if computed != env.crc32 {
        return Err(CodecError::ChecksumMismatch {
            recorded: env.crc32,
            computed,
        });
    }
    Ok(env.payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_payload() {
        let payload = r#"{"weights":[1.0,2.0]}"#;
        let env = encode_envelope("network", payload);
        assert_eq!(decode_envelope("network", &env).unwrap(), payload);
    }

    #[test]
    fn truncated_envelope_is_malformed() {
        let env = encode_envelope("network", "{}");
        let torn = &env[..env.len() / 2];
        assert!(matches!(
            decode_envelope("network", torn),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let env = encode_envelope("optimizer", "{}");
        match decode_envelope("network", &env) {
            Err(CodecError::KindMismatch { found, expected }) => {
                assert_eq!(found, "optimizer");
                assert_eq!(expected, "network");
            }
            other => panic!("expected kind mismatch, got {other:?}"),
        }
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let env = encode_envelope("network", "{}")
            .replace("\"schema_version\":1", "\"schema_version\":999");
        assert!(matches!(
            decode_envelope("network", &env),
            Err(CodecError::SchemaVersion {
                found: 999,
                expected: SCHEMA_VERSION
            })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let env = encode_envelope("network", r#"{"w":100}"#);
        let tampered = env.replace(r#"{\"w\":100}"#, r#"{\"w\":101}"#);
        assert_ne!(env, tampered, "tamper replacement must hit");
        assert!(matches!(
            decode_envelope("network", &tampered),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::ChecksumMismatch {
            recorded: 1,
            computed: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("checksum"), "{msg}");
    }
}
