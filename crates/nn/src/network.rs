//! LSTM stack plus linear output head — the architecture shared by the
//! flavor model and the lifetime (hazard) model.

use crate::codec::{self, CodecError};
use crate::linear::Linear;
use crate::lstm::{Lstm, LstmCache, LstmState};
use crate::param::Param;
use linalg::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An LSTM stack with a linear head mapping hidden states to output logits,
/// plus an optional Graves-style skip connection from the raw input to the
/// output (`logits = head(h) + skip(x)`).
///
/// The skip connection gives linearly-representable input→output rules (like
/// "repeat the previous token/bin") a direct gradient path instead of
/// squeezing them through the recurrent bottleneck — Graves (2013) uses the
/// same direct input-to-output connections in the architecture the paper's
/// sequence models follow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmNetwork {
    /// Recurrent body.
    pub lstm: Lstm,
    /// Output head applied to the top hidden state at every step.
    pub head: Linear,
    /// Optional input→output skip connection.
    pub skip: Option<Linear>,
}

/// Forward cache for [`LstmNetwork::forward`], needed by `backward`.
pub struct NetworkCache {
    lstm_cache: LstmCache,
    hidden_outputs: Vec<Mat>,
    inputs: Vec<Mat>,
}

impl LstmNetwork {
    /// Creates a network: `input_dim -> [hidden; layers] -> out_dim`.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        layers: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            lstm: Lstm::new(input_dim, hidden, layers, rng),
            head: Linear::new(hidden, out_dim, rng),
            skip: None,
        }
    }

    /// Creates a network with a direct input→output skip connection.
    pub fn with_skip(
        input_dim: usize,
        hidden: usize,
        layers: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            lstm: Lstm::new(input_dim, hidden, layers, rng),
            head: Linear::new(hidden, out_dim, rng),
            skip: Some(Linear::new(input_dim, out_dim, rng)),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.lstm.input_dim()
    }

    /// Output (logit) dimension.
    pub fn out_dim(&self) -> usize {
        self.head.out_dim()
    }

    /// Forward pass over a sequence from the zero state.
    ///
    /// Returns per-step logits `(batch, out_dim)` and the cache for
    /// [`Self::backward`].
    pub fn forward(&self, xs: &[Mat]) -> (Vec<Mat>, NetworkCache) {
        let (hidden_outputs, lstm_cache) = self.lstm.forward(xs);
        let logits = hidden_outputs
            .iter()
            .zip(xs)
            .map(|(h, x)| {
                let mut y = self.head.forward(h);
                if let Some(skip) = &self.skip {
                    y.axpy(1.0, &skip.forward(x));
                }
                y
            })
            .collect();
        (
            logits,
            NetworkCache {
                lstm_cache,
                hidden_outputs,
                inputs: xs.to_vec(),
            },
        )
    }

    /// Backward pass given per-step logit gradients; accumulates parameter
    /// gradients and returns per-step input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `d_logits.len()` does not match the cached sequence length.
    pub fn backward(&mut self, cache: &NetworkCache, d_logits: &[Mat]) -> Vec<Mat> {
        assert_eq!(
            d_logits.len(),
            cache.hidden_outputs.len(),
            "sequence length mismatch"
        );
        let d_hidden: Vec<Mat> = cache
            .hidden_outputs
            .iter()
            .zip(d_logits)
            .map(|(h, dy)| self.head.backward(h, dy))
            .collect();
        let mut dxs = self.lstm.backward(&cache.lstm_cache, &d_hidden);
        if let Some(skip) = &mut self.skip {
            for ((x, dy), dx) in cache.inputs.iter().zip(d_logits).zip(dxs.iter_mut()) {
                dx.axpy(1.0, &skip.backward(x, dy));
            }
        }
        dxs
    }

    /// Zero state for generation.
    pub fn zero_state(&self, batch: usize) -> LstmState {
        self.lstm.zero_state(batch)
    }

    /// One stateful generation step; returns logits `(batch, out_dim)`.
    pub fn step(&self, x: &Mat, state: &mut LstmState) -> Mat {
        let h = self.lstm.step(x, state);
        let mut y = self.head.forward(&h);
        if let Some(skip) = &self.skip {
            y.axpy(1.0, &skip.forward(x));
        }
        y
    }

    /// All parameters in stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.lstm.params_mut();
        ps.extend(self.head.params_mut());
        if let Some(skip) = &mut self.skip {
            ps.extend(skip.params_mut());
        }
        ps
    }

    /// Resets all gradients.
    pub fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.head.zero_grad();
        if let Some(skip) = &mut self.skip {
            skip.zero_grad();
        }
    }

    /// Artifact kind tag used in the persistence envelope.
    const ENVELOPE_KIND: &'static str = "lstm-network";

    /// Serializes the network weights to a versioned, checksummed JSON
    /// envelope (see [`crate::codec`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Malformed`] if the weights fail to serialize
    /// (never happens for finite matrices).
    pub fn to_json(&self) -> Result<String, CodecError> {
        let payload = serde_json::to_string(self)?;
        Ok(codec::encode_envelope(Self::ENVELOPE_KIND, &payload))
    }

    /// Deserializes a network from JSON produced by [`Self::to_json`],
    /// rejecting truncated, tampered, wrong-kind, or wrong-schema-version
    /// files with a typed [`CodecError`].
    ///
    /// # Errors
    ///
    /// Returns the first envelope verification failure, or
    /// [`CodecError::Malformed`] if the verified payload does not parse as a
    /// network.
    pub fn from_json(s: &str) -> Result<Self, CodecError> {
        let payload = codec::decode_envelope(Self::ENVELOPE_KIND, s)?;
        Ok(serde_json::from_str(&payload)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = LstmNetwork::new(4, 6, 2, 3, &mut rng);
        let xs: Vec<Mat> = (0..5).map(|_| Mat::filled(2, 4, 0.1)).collect();
        let (logits, cache) = net.forward(&xs);
        assert!(logits.iter().all(|l| l.shape() == (2, 3)));
        let d: Vec<Mat> = logits
            .iter()
            .map(|l| Mat::filled(l.rows(), l.cols(), 0.5))
            .collect();
        let dx = net.backward(&cache, &d);
        assert!(dx.iter().all(|d| d.shape() == (2, 4)));
    }

    #[test]
    fn step_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = LstmNetwork::new(3, 5, 1, 2, &mut rng);
        let xs: Vec<Mat> = (0..4)
            .map(|t| Mat::from_fn(1, 3, |_, c| ((t * 3 + c) as f64).cos()))
            .collect();
        let (logits, _) = net.forward(&xs);
        let mut state = net.zero_state(1);
        for (t, x) in xs.iter().enumerate() {
            let l = net.step(x, &mut state);
            for (a, b) in l.as_slice().iter().zip(logits[t].as_slice()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        // Learn to echo the previous one-hot input (a trivial memory task).
        use crate::adam::{Adam, AdamConfig};
        let mut rng = StdRng::seed_from_u64(3);
        let k = 3;
        let mut net = LstmNetwork::new(k, 16, 1, k, &mut rng);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.02,
            ..Default::default()
        });

        // Sequence: classes cycle 0,1,2,0,1,2…; target at step t is class at t.
        let seq: Vec<usize> = (0..30).map(|t| t % k).collect();
        let xs: Vec<Mat> = seq
            .iter()
            .map(|&c| Mat::from_fn(1, k, |_, j| if j == c { 1.0 } else { 0.0 }))
            .collect();
        // Predict next class.
        let targets: Vec<usize> = seq.iter().skip(1).cloned().collect();

        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            net.zero_grad();
            let (logits, cache) = net.forward(&xs[..xs.len() - 1]);
            let mut total = 0.0;
            let mut count = 0usize;
            let mut dlogits = Vec::with_capacity(logits.len());
            for (t, l) in logits.iter().enumerate() {
                let (loss, n, mut d) = softmax_cross_entropy(l, &targets[t..=t]);
                total += loss;
                count += n;
                d.scale(1.0 / (logits.len() as f64));
                dlogits.push(d);
            }
            let mean = total / count as f64;
            if first.is_none() {
                first = Some(mean);
            }
            last = mean;
            net.backward(&cache, &dlogits);
            opt.step(&mut net.params_mut()).unwrap();
        }
        let first = first.unwrap();
        assert!(last < first * 0.2, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn skip_step_matches_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = LstmNetwork::with_skip(3, 5, 1, 2, &mut rng);
        let xs: Vec<Mat> = (0..4)
            .map(|t| Mat::from_fn(1, 3, |_, c| ((t * 3 + c) as f64).sin()))
            .collect();
        let (logits, _) = net.forward(&xs);
        let mut state = net.zero_state(1);
        for (t, x) in xs.iter().enumerate() {
            let l = net.step(x, &mut state);
            for (a, b) in l.as_slice().iter().zip(logits[t].as_slice()) {
                assert!((a - b).abs() < 1e-12, "step {t}");
            }
        }
    }

    #[test]
    fn skip_adds_params() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut plain = LstmNetwork::new(3, 4, 1, 2, &mut rng);
        let mut skip = LstmNetwork::with_skip(3, 4, 1, 2, &mut rng);
        assert_eq!(skip.params_mut().len(), plain.params_mut().len() + 2);
    }

    #[test]
    fn json_roundtrip_preserves_outputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = LstmNetwork::new(3, 4, 2, 2, &mut rng);
        let json = net.to_json().unwrap();
        let net2 = LstmNetwork::from_json(&json).unwrap();
        let xs: Vec<Mat> = (0..3).map(|_| Mat::filled(1, 3, 0.25)).collect();
        let (a, _) = net.forward(&xs);
        let (b, _) = net2.forward(&xs);
        for (x, y) in a.iter().zip(&b) {
            for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                assert!((p - q).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn json_is_enveloped_with_version_and_checksum() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = LstmNetwork::new(2, 3, 1, 2, &mut rng);
        let json = net.to_json().unwrap();
        assert!(json.contains("\"schema_version\":1"), "{json}");
        assert!(json.contains("\"crc32\":"), "{json}");
        assert!(json.contains("\"kind\":\"lstm-network\""), "{json}");
    }

    #[test]
    fn truncated_json_is_rejected_typed() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = LstmNetwork::new(2, 3, 1, 2, &mut rng);
        let json = net.to_json().unwrap();
        let torn = &json[..json.len() - 40];
        assert!(matches!(
            LstmNetwork::from_json(torn),
            Err(CodecError::Malformed(_))
        ));
    }
}
