//! Plain-text chart rendering for the figure-reproduction binaries.

/// Renders one series as an ASCII line chart (`height` rows, one column per
/// down-sampled point, at most `width` columns).
pub fn render_series(values: &[f64], width: usize, height: usize, label: &str) -> String {
    if values.is_empty() || width == 0 || height == 0 {
        return format!("{label}: (empty)\n");
    }
    let points = downsample(values, width);
    let (min, max) = min_max(&points);
    let span = (max - min).max(1e-12);
    let mut rows = vec![vec![b' '; points.len()]; height];
    for (c, &v) in points.iter().enumerate() {
        // lint:allow(lossy-cast): ratio is in [0, 1] by min/max normalization with span floor
        let r = ((v - min) / span * (height - 1) as f64).round() as usize;
        rows[height - 1 - r][c] = b'*';
    }
    let mut out = format!("{label}  [min {min:.1}, max {max:.1}]\n");
    for row in rows {
        out.push_str("  |");
        // lint:allow(no-panic): rows hold only ASCII bytes written above
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(points.len()));
    out.push('\n');
    out
}

/// Renders an actual series against a prediction band: `.` band, `-` median,
/// `o` actual inside the band, `X` actual outside.
pub fn render_band_chart(
    actual: &[f64],
    lo: &[f64],
    median: &[f64],
    hi: &[f64],
    width: usize,
    height: usize,
    label: &str,
) -> String {
    assert!(
        actual.len() == lo.len() && lo.len() == median.len() && median.len() == hi.len(),
        "series length mismatch"
    );
    if actual.is_empty() || width == 0 || height == 0 {
        return format!("{label}: (empty)\n");
    }
    let a = downsample(actual, width);
    let l = downsample(lo, width);
    let m = downsample(median, width);
    let h = downsample(hi, width);
    let all: Vec<f64> = a.iter().chain(&l).chain(&h).cloned().collect();
    let (min, max) = min_max(&all);
    let span = (max - min).max(1e-12);
    let n = a.len();
    let row_of = |v: f64| -> usize {
        // lint:allow(lossy-cast): ratio is in [0, 1] by min/max normalization with span floor
        let r = ((v - min) / span * (height - 1) as f64).round() as usize;
        height - 1 - r.min(height - 1)
    };
    let mut rows = vec![vec![b' '; n]; height];
    for c in 0..n {
        let (rl, rh) = (row_of(l[c]), row_of(h[c]));
        let (top, bot) = (rh.min(rl), rh.max(rl));
        for row in rows.iter_mut().take(bot + 1).skip(top) {
            row[c] = b'.';
        }
        rows[row_of(m[c])][c] = b'-';
        let ra = row_of(a[c]);
        rows[ra][c] = if a[c] >= l[c] - 1e-12 && a[c] <= h[c] + 1e-12 {
            b'o'
        } else {
            b'X'
        };
    }
    let mut out = format!(
        "{label}  [min {min:.1}, max {max:.1}]  (o=covered, X=missed, .=90% band, -=median)\n"
    );
    for row in rows {
        out.push_str("  |");
        // lint:allow(no-panic): rows hold only ASCII bytes written above
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(n));
    out.push('\n');
    out
}

/// Renders labelled proportions as a horizontal bar chart.
pub fn render_histogram(labels: &[&str], values: &[f64], width: usize, title: &str) -> String {
    assert_eq!(labels.len(), values.len(), "label/value length mismatch");
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let mut out = format!("{title}\n");
    for (lab, &v) in labels.iter().zip(values) {
        // lint:allow(lossy-cast): ratio is in [0, 1] since max is the slice maximum with a floor
        let bars = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {lab:>6} | {:<w$} {v:.3}\n",
            "#".repeat(bars),
            w = width
        ));
    }
    out
}

/// Averages `values` down to at most `width` points.
fn downsample(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(width);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_renders_all_rows() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin()).collect();
        let s = render_series(&v, 40, 8, "sine");
        assert!(s.starts_with("sine"));
        assert_eq!(s.lines().count(), 10); // label + 8 rows + axis
        assert!(s.contains('*'));
    }

    #[test]
    fn band_chart_marks_coverage() {
        let actual = vec![5.0, 50.0];
        let lo = vec![0.0, 0.0];
        let median = vec![5.0, 5.0];
        let hi = vec![10.0, 10.0];
        let s = render_band_chart(&actual, &lo, &median, &hi, 10, 6, "test");
        assert!(s.contains('o'), "{s}");
        assert!(s.contains('X'), "{s}");
    }

    #[test]
    fn histogram_scales_bars() {
        let s = render_histogram(&["a", "b"], &[1.0, 0.5], 10, "hist");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].matches('#').count() > lines[2].matches('#').count());
    }

    #[test]
    fn downsample_shrinks_to_width() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d = downsample(&v, 50);
        assert!(d.len() <= 50);
        assert!(d[0] < d[d.len() - 1]);
    }

    #[test]
    fn empty_series_is_safe() {
        assert!(render_series(&[], 10, 5, "x").contains("empty"));
    }
}
