//! Evaluation utilities shared by the reproduction experiments.
//!
//! - [`intervals`]: quantiles, per-period prediction bands over sampled
//!   traces, and interval-coverage of true series (the metric behind
//!   Figures 4–8).
//! - [`render`]: plain-text rendering of series, bands, and histograms so
//!   every "figure" binary can print something a human can eyeball in a
//!   terminal.

#![forbid(unsafe_code)]

pub mod intervals;
pub mod render;

pub use intervals::{coverage, quantile, PredictionBand};
pub use render::{render_band_chart, render_histogram, render_series};
