//! Prediction intervals over sampled traces and their coverage of truth.

use serde::{Deserialize, Serialize};

/// Empirical quantile (linear interpolation between order statistics).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    // lint:allow(lossy-cast): pos is finite and within [0, len-1] since q was validated
    let lo = pos.floor() as usize;
    // lint:allow(lossy-cast): pos is finite and within [0, len-1] since q was validated
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A per-index prediction band computed across sampled series.
///
/// # Examples
///
/// ```
/// use eval::{coverage, PredictionBand};
/// let samples: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
/// let band = PredictionBand::from_samples(&samples, 0.05, 0.95);
/// assert!(band.lo[0] < band.median[0] && band.median[0] < band.hi[0]);
/// assert_eq!(coverage(&band, &[50.0]), 1.0);
/// assert_eq!(coverage(&band, &[1000.0]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionBand {
    /// Lower envelope (e.g. the 5th percentile).
    pub lo: Vec<f64>,
    /// Median.
    pub median: Vec<f64>,
    /// Upper envelope (e.g. the 95th percentile).
    pub hi: Vec<f64>,
}

impl PredictionBand {
    /// Builds a band from sampled series (each the same length).
    ///
    /// `lo_q`/`hi_q` are the envelope quantiles: `(0.05, 0.95)` gives the
    /// paper's 90 % prediction interval.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the series lengths differ.
    pub fn from_samples(samples: &[Vec<f64>], lo_q: f64, hi_q: f64) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let n = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == n), "ragged sample series");
        let mut lo = Vec::with_capacity(n);
        let mut median = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        let mut column = vec![0.0; samples.len()];
        for i in 0..n {
            for (c, s) in column.iter_mut().zip(samples) {
                *c = s[i];
            }
            lo.push(quantile(&column, lo_q));
            median.push(quantile(&column, 0.5));
            hi.push(quantile(&column, hi_q));
        }
        Self { lo, median, hi }
    }

    /// Band width at index `i`.
    pub fn width(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Series length.
    pub fn len(&self) -> usize {
        self.median.len()
    }

    /// True if the band covers no indices.
    pub fn is_empty(&self) -> bool {
        self.median.is_empty()
    }
}

/// Fraction of `actual` values falling inside the band (inclusive).
///
/// # Panics
///
/// Panics if lengths differ or the series is empty.
pub fn coverage(band: &PredictionBand, actual: &[f64]) -> f64 {
    assert_eq!(band.len(), actual.len(), "band/actual length mismatch");
    assert!(!actual.is_empty(), "empty series");
    let inside = actual
        .iter()
        .enumerate()
        .filter(|&(i, &v)| v >= band.lo[i] - 1e-12 && v <= band.hi[i] + 1e-12)
        .count();
    inside as f64 / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_known_data() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.25), 2.0);
        // Interpolation between order statistics.
        assert!((quantile(&v, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 3.0);
    }

    #[test]
    fn band_orders_envelopes() {
        let samples: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 100.0 - i as f64]).collect();
        let band = PredictionBand::from_samples(&samples, 0.05, 0.95);
        assert_eq!(band.len(), 2);
        for i in 0..2 {
            assert!(band.lo[i] <= band.median[i]);
            assert!(band.median[i] <= band.hi[i]);
        }
    }

    #[test]
    fn coverage_full_and_partial() {
        let band = PredictionBand {
            lo: vec![0.0, 0.0, 0.0],
            median: vec![5.0, 5.0, 5.0],
            hi: vec![10.0, 10.0, 10.0],
        };
        assert_eq!(coverage(&band, &[5.0, 0.0, 10.0]), 1.0);
        assert!((coverage(&band, &[5.0, -1.0, 11.0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn band_from_identical_samples_is_degenerate() {
        let samples = vec![vec![2.0, 4.0]; 10];
        let band = PredictionBand::from_samples(&samples, 0.05, 0.95);
        assert_eq!(band.lo, band.hi);
        assert_eq!(coverage(&band, &[2.0, 4.0]), 1.0);
        assert_eq!(coverage(&band, &[2.1, 4.0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_samples_panic() {
        let _ = PredictionBand::from_samples(&[vec![1.0], vec![1.0, 2.0]], 0.05, 0.95);
    }
}
