//! Property-based tests for prediction intervals and coverage.

use eval::{coverage, quantile, PredictionBand};
use proptest::prelude::*;

proptest! {
    #[test]
    fn quantile_is_monotone_in_q(
        values in proptest::collection::vec(-1e6..1e6f64, 1..60),
        q1 in 0.0..=1.0f64,
        q2 in 0.0..=1.0f64,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&values, lo) <= quantile(&values, hi) + 1e-9);
    }

    #[test]
    fn quantile_within_data_range(
        values in proptest::collection::vec(-1e3..1e3f64, 1..50),
        q in 0.0..=1.0f64,
    ) {
        let v = quantile(&values, q);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn band_envelopes_are_ordered(
        flat in proptest::collection::vec(-100.0..100.0f64, 10..120),
    ) {
        // Reshape into 5 series of equal length.
        let len = flat.len() / 5;
        prop_assume!(len >= 1);
        let samples: Vec<Vec<f64>> =
            (0..5).map(|i| flat[i * len..(i + 1) * len].to_vec()).collect();
        let band = PredictionBand::from_samples(&samples, 0.05, 0.95);
        for i in 0..len {
            prop_assert!(band.lo[i] <= band.median[i] + 1e-12);
            prop_assert!(band.median[i] <= band.hi[i] + 1e-12);
        }
    }

    #[test]
    fn median_series_has_full_coverage(
        flat in proptest::collection::vec(-50.0..50.0f64, 12..60),
    ) {
        let len = flat.len() / 3;
        prop_assume!(len >= 1);
        let samples: Vec<Vec<f64>> =
            (0..3).map(|i| flat[i * len..(i + 1) * len].to_vec()).collect();
        let band = PredictionBand::from_samples(&samples, 0.0, 1.0);
        // With the full 0..1 envelope, every sample series is covered.
        for s in &samples {
            prop_assert!((coverage(&band, s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn coverage_is_a_fraction(
        actual in proptest::collection::vec(-100.0..100.0f64, 1..40),
    ) {
        let n = actual.len();
        let band = PredictionBand {
            lo: vec![-10.0; n],
            median: vec![0.0; n],
            hi: vec![10.0; n],
        };
        let c = coverage(&band, &actual);
        prop_assert!((0.0..=1.0).contains(&c));
    }
}
