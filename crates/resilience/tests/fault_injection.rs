//! End-to-end resilience scenarios: resume determinism and the combined
//! fault-injection acceptance test (kill + corrupt checkpoint + NaN
//! gradient in one seeded run).

use cloudgen::{FeatureSpace, FlavorTrainer, Parallelism, TokenStream, TrainConfig};
use obsv::{MemoryRecorder, NullRecorder, RunReport};
use resilience::{
    fit_flavor_resilient, fit_flavor_resilient_par, fit_lifetime_resilient, CheckpointStore,
    FaultPlan, ResilienceConfig, ResilienceError,
};
use std::path::PathBuf;
use survival::LifetimeBins;
use trace::period::TemporalFeaturesSpec;
use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

fn bins() -> LifetimeBins {
    LifetimeBins::from_uppers(vec![600.0, 3600.0, 86_400.0])
}

fn training_data(periods: u64) -> (TokenStream, FeatureSpace) {
    let mut jobs = Vec::new();
    for p in 0..periods {
        let flavor = FlavorId((p % 3) as u16);
        let life = 300 + (p % 3) * 3000;
        for u in 0..2 {
            jobs.push(Job {
                start: p * 300,
                end: Some(p * 300 + life),
                flavor,
                user: UserId(u),
            });
        }
    }
    let train = Trace::new(jobs, FlavorCatalog::azure16());
    let secs = periods * 300;
    let temporal = TemporalFeaturesSpec::new(((secs / 86_400) + 1) as usize);
    let space = FeatureSpace::new(16, bins(), temporal);
    let stream = TokenStream::from_trace(&train, &bins(), secs);
    (stream, space)
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        ..TrainConfig::tiny()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cloudgen-resilience-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn guard_rolls_back_injected_nan_and_completes() {
    let (stream, space) = training_data(300);
    let rec = MemoryRecorder::new();
    let mut plan = FaultPlan::none().nan_gradient("flavor", 1, 0);
    let out = fit_flavor_resilient(
        &stream,
        &space,
        cfg(3),
        &ResilienceConfig::default(),
        &mut plan,
        &rec,
    )
    .expect("guard should absorb the NaN");
    assert!(plan.is_empty(), "fault never fired");
    assert_eq!(out.losses.len(), 3, "all epochs must complete");
    assert_eq!(out.rollbacks, 1);
    assert!(out.losses.iter().all(|l| l.is_finite()));
    let actions: Vec<String> = rec.guards().iter().map(|g| g.action.clone()).collect();
    assert!(actions.contains(&"step-skipped".to_string()), "{actions:?}");
    assert!(actions.contains(&"rollback".to_string()));
    assert!(actions.contains(&"lr-halved".to_string()));
}

#[test]
fn repeated_divergence_exhausts_retries() {
    let (stream, space) = training_data(200);
    // One injected NaN per attempt: initial + 2 retries, all diverge.
    let mut plan = FaultPlan::none()
        .nan_gradient("flavor", 0, 0)
        .nan_gradient("flavor", 0, 0)
        .nan_gradient("flavor", 0, 0);
    let rcfg = ResilienceConfig {
        max_retries: 2,
        ..ResilienceConfig::default()
    };
    let err = fit_flavor_resilient(&stream, &space, cfg(2), &rcfg, &mut plan, &NullRecorder)
        .expect_err("every attempt diverges");
    match err {
        ResilienceError::RetryExhausted {
            stage,
            epoch,
            attempts,
        } => {
            assert_eq!(stage, "flavor");
            assert_eq!(epoch, 0);
            assert_eq!(attempts, 3);
        }
        other => panic!("unexpected error: {other}"),
    }
}

#[test]
fn kill_then_resume_is_bit_for_bit_identical() {
    let (stream, space) = training_data(300);
    let c = cfg(5);

    // Reference: 5 epochs straight through, checkpointing along the way.
    let dir_a = tmp_dir("straight");
    let rcfg_a = ResilienceConfig {
        checkpoint_dir: Some(dir_a.clone()),
        ..ResilienceConfig::default()
    };
    let straight = fit_flavor_resilient(
        &stream,
        &space,
        c,
        &rcfg_a,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .unwrap();

    // Interrupted: killed mid-epoch-2, then resumed from disk.
    let dir_b = tmp_dir("resumed");
    let rcfg_b = ResilienceConfig {
        checkpoint_dir: Some(dir_b.clone()),
        ..ResilienceConfig::default()
    };
    let mut plan = FaultPlan::none().kill("flavor", 2, 1);
    let err = fit_flavor_resilient(&stream, &space, c, &rcfg_b, &mut plan, &NullRecorder)
        .expect_err("the injected kill must stop the run");
    assert!(matches!(err, ResilienceError::Killed { epoch: 2, .. }), "{err}");

    let rec = MemoryRecorder::new();
    let resumed = fit_flavor_resilient(&stream, &space, c, &rcfg_b, &mut plan, &rec).unwrap();
    assert_eq!(resumed.resumed_from, Some(2));

    // The loss curves and final parameters must match exactly — resume is
    // a replay, not an approximation.
    assert_eq!(straight.losses, resumed.losses);
    assert_eq!(
        serde_json::to_string(&straight.model).unwrap(),
        serde_json::to_string(&resumed.model).unwrap(),
        "resumed parameters must be bit-for-bit identical"
    );

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn lifetime_stage_resumes_identically_too() {
    let (stream, space) = training_data(250);
    let c = cfg(4);
    let straight = fit_lifetime_resilient(
        &stream,
        &space,
        c,
        &ResilienceConfig::default(),
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .unwrap();

    let dir = tmp_dir("lifetime");
    let rcfg = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ResilienceConfig::default()
    };
    let mut plan = FaultPlan::none().kill("lifetime", 3, 0);
    fit_lifetime_resilient(&stream, &space, c, &rcfg, &mut plan, &NullRecorder)
        .expect_err("killed");
    let resumed =
        fit_lifetime_resilient(&stream, &space, c, &rcfg, &mut plan, &NullRecorder).unwrap();

    assert_eq!(straight.losses, resumed.losses);
    assert_eq!(
        serde_json::to_string(&straight.model).unwrap(),
        serde_json::to_string(&resumed.model).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_mismatch_on_resume_is_rejected() {
    let (stream, space) = training_data(200);
    let dir = tmp_dir("mismatch");
    let rcfg = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ResilienceConfig::default()
    };
    fit_flavor_resilient(
        &stream,
        &space,
        cfg(2),
        &rcfg,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .unwrap();
    // Same directory, different hyperparameters: must refuse to resume.
    let different = TrainConfig {
        hidden: 24,
        ..cfg(2)
    };
    let err = fit_flavor_resilient(
        &stream,
        &space,
        different,
        &rcfg,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .expect_err("resuming under a different config must fail");
    assert!(matches!(err, ResilienceError::ConfigMismatch { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ISSUE's acceptance scenario: one seeded run that (1) suffers an
/// injected NaN gradient, (2) is killed mid-epoch, (3) finds its newest
/// checkpoint corrupted at resume — and still completes, with final
/// metrics close to the fault-free run and a RunReport that shows every
/// recovery action.
#[test]
fn full_fault_storm_completes_with_comparable_metrics() {
    let (stream, space) = training_data(300);
    let c = cfg(6);

    // Fault-free reference run (no disk involved).
    let clean = fit_flavor_resilient(
        &stream,
        &space,
        c,
        &ResilienceConfig::default(),
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .unwrap();

    let dir = tmp_dir("storm");
    let rcfg = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ResilienceConfig::default()
    };
    // Epoch 1 diverges (NaN gradient -> rollback + retry at halved LR);
    // the checkpoint written after epoch 3 is torn; epoch 3's replacement
    // run is then killed mid-epoch.
    let mut plan = FaultPlan::none()
        .nan_gradient("flavor", 1, 0)
        .corrupt_checkpoint("flavor", 3)
        .kill("flavor", 3, 1);

    let rec = MemoryRecorder::new();
    let err = fit_flavor_resilient(&stream, &space, c, &rcfg, &mut plan, &rec)
        .expect_err("the injected kill must stop the first invocation");
    assert!(matches!(err, ResilienceError::Killed { .. }));

    // Resume: the epoch-3 checkpoint is corrupt, so the store must fall
    // back to epoch 2 and the run must still finish all 6 epochs.
    let storm = fit_flavor_resilient(&stream, &space, c, &rcfg, &mut plan, &rec).unwrap();
    assert!(plan.is_empty(), "all scheduled faults must have fired");
    assert_eq!(storm.resumed_from, Some(2), "corrupt ckpt must be skipped");
    assert_eq!(storm.losses.len(), 6);
    assert!(storm.losses.iter().all(|l| l.is_finite()));

    // Final metrics within tolerance of the fault-free run: the LR
    // halving after the NaN epoch changes the trajectory, but both runs
    // must land near the same loss floor.
    let clean_final = *clean.losses.last().unwrap();
    let storm_final = *storm.losses.last().unwrap();
    assert!(
        (storm_final - clean_final).abs() < 0.5,
        "clean {clean_final} vs faulted {storm_final}"
    );

    // The run report must surface the whole recovery story.
    let report = RunReport::from_events(&rec.events());
    let res = report.resilience.expect("resilience section missing");
    assert!(res.guard_total >= 1, "guard events missing");
    assert!(res.guard_actions.contains_key("rollback"), "{res:?}");
    assert!(res.checkpoint_ops.get("save").copied().unwrap_or(0) >= 3);
    assert!(res.checkpoint_ops.get("skip-corrupt").copied().unwrap_or(0) >= 1);
    assert!(res.checkpoint_ops.get("load").copied().unwrap_or(0) >= 1);
    assert!(res.checkpoint_bytes_saved > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fresh_run_without_checkpoints_needs_no_directory() {
    let (stream, space) = training_data(200);
    let out = fit_flavor_resilient(
        &stream,
        &space,
        cfg(2),
        &ResilienceConfig::default(),
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .unwrap();
    assert_eq!(out.resumed_from, None);
    assert_eq!(out.checkpoints_saved, 0);
    assert_eq!(out.rollbacks, 0);
}

#[test]
fn resume_refuses_mismatched_shard_layout() {
    let (stream, space) = training_data(250);
    let c = cfg(4);
    let dir = tmp_dir("shard-layout");
    let rcfg = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ResilienceConfig::default()
    };

    // Train part-way under a 2-sequence shard layout, then die.
    let mut plan = FaultPlan::none().kill("flavor", 2, 1);
    let err = fit_flavor_resilient_par(
        &stream,
        &space,
        c,
        Parallelism::with_threads(2, 2),
        &rcfg,
        &mut plan,
        &NullRecorder,
    )
    .expect_err("the injected kill must stop the run");
    assert!(matches!(err, ResilienceError::Killed { .. }), "{err}");

    // A different shard layout changes the gradient-reduction grouping and
    // must be refused with the typed error, not silently resumed.
    let err = fit_flavor_resilient_par(
        &stream,
        &space,
        c,
        Parallelism::with_threads(2, 3),
        &rcfg,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .expect_err("mismatched shard layout must be refused");
    match err {
        ResilienceError::ShardLayoutMismatch {
            stage,
            checkpoint,
            requested,
        } => {
            assert_eq!(stage, "flavor");
            assert_eq!(checkpoint, 2);
            assert_eq!(requested, 3);
        }
        other => panic!("unexpected error: {other}"),
    }

    // The serial entry point requests the whole-minibatch layout (0) and
    // must be refused the same way.
    let err = fit_flavor_resilient(
        &stream,
        &space,
        c,
        &rcfg,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .expect_err("serial resume of a sharded checkpoint must be refused");
    assert!(
        matches!(
            err,
            ResilienceError::ShardLayoutMismatch {
                checkpoint: 2,
                requested: 0,
                ..
            }
        ),
        "{err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_different_worker_count_is_identical() {
    let (stream, space) = training_data(300);
    let c = cfg(5);
    let layout = 2; // shard layout is the contract; threads are not

    // Reference: single worker, straight through.
    let straight = fit_flavor_resilient_par(
        &stream,
        &space,
        c,
        Parallelism::with_threads(1, layout),
        &ResilienceConfig::default(),
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .unwrap();

    // Interrupted: 4 workers, killed mid-epoch-2, resumed with 2 workers.
    let dir = tmp_dir("worker-count");
    let rcfg = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ResilienceConfig::default()
    };
    let mut plan = FaultPlan::none().kill("flavor", 2, 1);
    fit_flavor_resilient_par(
        &stream,
        &space,
        c,
        Parallelism::with_threads(4, layout),
        &rcfg,
        &mut plan,
        &NullRecorder,
    )
    .expect_err("the injected kill must stop the run");
    let resumed = fit_flavor_resilient_par(
        &stream,
        &space,
        c,
        Parallelism::with_threads(2, layout),
        &rcfg,
        &mut FaultPlan::none(),
        &NullRecorder,
    )
    .expect("same layout, different worker count must resume");
    assert_eq!(resumed.resumed_from, Some(2));
    assert_eq!(straight.losses, resumed.losses);
    assert_eq!(
        serde_json::to_string(&straight.model).unwrap(),
        serde_json::to_string(&resumed.model).unwrap(),
        "worker count must not affect the trained parameters"
    );

    // The final checkpoint records the worker count that produced it.
    let store = CheckpointStore::create(&dir, "flavor").unwrap();
    let ck = store
        .load_latest::<FlavorTrainer>(&NullRecorder)
        .unwrap()
        .expect("final checkpoint must exist");
    assert_eq!(ck.threads, 2);
    assert_eq!(ck.trainer.parallelism().shard_seqs, layout);

    let _ = std::fs::remove_dir_all(&dir);
}
