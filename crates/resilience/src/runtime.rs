//! The resilient fit loop: snapshot → epoch → (checkpoint | rollback).
//!
//! Two recovery tiers compose here:
//!
//! 1. **In-memory epoch snapshots** handle divergence. Before every epoch
//!    the runtime clones the trainer and RNG; when the
//!    [`TrainGuard`] aborts the epoch (NaN loss, skipped step, gradient
//!    spike), the clone is restored, the learning rate is halved, and the
//!    epoch is retried — bounded by [`ResilienceConfig::max_retries`]
//!    with optional exponential backoff.
//! 2. **On-disk checkpoints** handle process death. Every
//!    [`ResilienceConfig::checkpoint_every`] epochs the full training
//!    state (weights, Adam moments, RNG position, epoch cursor, LR scale)
//!    is persisted atomically; a re-invoked `fit_resilient` finds the
//!    newest intact file and continues the run bit-for-bit — N epochs
//!    straight and k epochs + kill + resume produce identical parameters.

use crate::checkpoint::{corrupt_file, Checkpoint, CheckpointError, CheckpointStore};
use crate::fault::{FaultPlan, HookStack};
use crate::guard::{GuardConfig, TrainGuard};
use crate::rng::CkptRng;
use cloudgen::lifetimes::LifetimeHead;
use cloudgen::{
    EpochOutcome, FeatureSpace, FlavorModel, FlavorTrainer, LifetimeModel, LifetimeTrainer,
    Parallelism, TokenStream, TrainAbort, TrainConfig, TrainHooks,
};
use obsv::{Event, GuardEvent, Recorder};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Knobs for the resilient runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Where checkpoints live; `None` disables disk checkpointing (the
    /// divergence guard still works, but a killed run is unrecoverable).
    pub checkpoint_dir: Option<PathBuf>,
    /// Save a checkpoint every N completed epochs (the final epoch is
    /// always saved). `0` disables periodic saves entirely.
    pub checkpoint_every: usize,
    /// How many times one epoch may be rolled back and retried before the
    /// run fails with [`ResilienceError::RetryExhausted`].
    pub max_retries: u32,
    /// Base of the exponential backoff between retries, in milliseconds
    /// (`0`, the default, disables sleeping — retries are in-process, so
    /// backoff only matters when the divergence source is external).
    pub backoff_base_ms: u64,
    /// Divergence-guard thresholds.
    pub guard: GuardConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            checkpoint_dir: None,
            checkpoint_every: 1,
            max_retries: 3,
            backoff_base_ms: 0,
            guard: GuardConfig::default(),
        }
    }
}

/// Why a resilient fit stopped without a model.
#[derive(Debug)]
pub enum ResilienceError {
    /// A fatal abort (in production: the process died; under fault
    /// injection: a scheduled [`crate::Fault::Kill`]). With a checkpoint
    /// directory configured, calling the fit again resumes the run.
    Killed {
        /// Stage that was training.
        stage: &'static str,
        /// Epoch that was interrupted.
        epoch: usize,
        /// Abort reason.
        reason: String,
    },
    /// One epoch diverged more than `max_retries` times in a row.
    RetryExhausted {
        /// Stage that was training.
        stage: &'static str,
        /// Epoch that kept diverging.
        epoch: usize,
        /// Attempts consumed (retries + the original).
        attempts: u32,
    },
    /// Checkpoint persistence failed (disk full, permissions, ...).
    Checkpoint(CheckpointError),
    /// The checkpoint on disk was trained with different hyperparameters
    /// than this invocation asked for — resuming would silently change
    /// the experiment.
    ConfigMismatch {
        /// Stage whose checkpoint mismatched.
        stage: &'static str,
    },
    /// The checkpoint on disk was trained under a different shard layout
    /// than this invocation asked for. The shard layout fixes the
    /// floating-point grouping of the gradient reduction, so resuming
    /// under a different one would silently fork the numeric trajectory.
    /// (Thread count is *not* part of the layout and may differ freely.)
    ShardLayoutMismatch {
        /// Stage whose checkpoint mismatched.
        stage: &'static str,
        /// `shard_seqs` recorded in the checkpointed trainer.
        checkpoint: usize,
        /// `shard_seqs` this invocation requested.
        requested: usize,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Killed {
                stage,
                epoch,
                reason,
            } => write!(f, "{stage} training killed during epoch {epoch}: {reason}"),
            ResilienceError::RetryExhausted {
                stage,
                epoch,
                attempts,
            } => write!(
                f,
                "{stage} epoch {epoch} still diverging after {attempts} attempts"
            ),
            ResilienceError::Checkpoint(e) => write!(f, "checkpointing failed: {e}"),
            ResilienceError::ConfigMismatch { stage } => write!(
                f,
                "{stage} checkpoint was trained under a different TrainConfig"
            ),
            ResilienceError::ShardLayoutMismatch {
                stage,
                checkpoint,
                requested,
            } => write!(
                f,
                "{stage} checkpoint was trained with shard_seqs={checkpoint} but this run \
                 requested shard_seqs={requested}; resuming would change the gradient \
                 reduction order"
            ),
        }
    }
}

impl std::error::Error for ResilienceError {}

impl From<CheckpointError> for ResilienceError {
    fn from(e: CheckpointError) -> Self {
        ResilienceError::Checkpoint(e)
    }
}

/// A finished resilient fit, with the recovery story attached.
#[derive(Debug)]
pub struct FitOutcome<M> {
    /// The trained model.
    pub model: M,
    /// Mean loss per completed epoch (rolled-back attempts excluded).
    pub losses: Vec<f64>,
    /// Epoch the run resumed from (`None` for a fresh start).
    pub resumed_from: Option<usize>,
    /// Rollback-and-retry cycles performed.
    pub rollbacks: u32,
    /// Checkpoints written to disk.
    pub checkpoints_saved: u32,
}

/// An epoch-granular trainer the resilient runtime can drive: cloneable
/// (epoch snapshots), serializable (disk checkpoints), and resumable from
/// its internal epoch cursor.
pub trait ResumableTrainer: Clone + Serialize + DeserializeOwned {
    /// Stage label used in checkpoints, telemetry, and fault coordinates.
    const STAGE: &'static str;
    /// The finished-model type.
    type Model;

    /// The stage's RNG seed derivation (matches the plain `fit` path).
    fn derive_seed(cfg: &TrainConfig) -> u64;
    /// A fresh trainer, consuming the RNG exactly like the plain path.
    fn new_seeded(
        stream: &TokenStream,
        space: &FeatureSpace,
        cfg: TrainConfig,
        rng: &mut CkptRng,
    ) -> Self;
    /// Epochs completed — the resume cursor.
    fn epochs_done(&self) -> usize;
    /// The configuration the trainer was built with.
    fn config(&self) -> &TrainConfig;
    /// The trainer's data-parallel settings (shard layout + worker count).
    fn parallelism(&self) -> Parallelism;
    /// Replaces the trainer's data-parallel settings.
    fn set_parallelism(&mut self, par: Parallelism);
    /// Runs the next epoch. See `FlavorTrainer::run_epoch`.
    ///
    /// # Errors
    ///
    /// Propagates the hooks' [`TrainAbort`].
    fn run_epoch(
        &mut self,
        stream: &TokenStream,
        lr_scale: f64,
        rng: &mut CkptRng,
        rec: &dyn Recorder,
        hooks: &mut dyn TrainHooks,
    ) -> Result<EpochOutcome, TrainAbort>;
    /// Mean loss per completed epoch.
    fn losses(&self) -> &[f64];
    /// Finalizes into the model.
    fn into_model(self) -> Self::Model;
}

impl ResumableTrainer for FlavorTrainer {
    const STAGE: &'static str = "flavor";
    type Model = FlavorModel;

    fn derive_seed(cfg: &TrainConfig) -> u64 {
        cfg.seed
    }

    fn new_seeded(
        stream: &TokenStream,
        space: &FeatureSpace,
        cfg: TrainConfig,
        rng: &mut CkptRng,
    ) -> Self {
        FlavorTrainer::new(stream, space.clone(), cfg, rng)
    }

    fn epochs_done(&self) -> usize {
        FlavorTrainer::epochs_done(self)
    }

    fn config(&self) -> &TrainConfig {
        FlavorTrainer::config(self)
    }

    fn parallelism(&self) -> Parallelism {
        FlavorTrainer::parallelism(self)
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        FlavorTrainer::set_parallelism(self, par);
    }

    fn run_epoch(
        &mut self,
        stream: &TokenStream,
        lr_scale: f64,
        rng: &mut CkptRng,
        rec: &dyn Recorder,
        hooks: &mut dyn TrainHooks,
    ) -> Result<EpochOutcome, TrainAbort> {
        FlavorTrainer::run_epoch(self, stream, lr_scale, rng, rec, hooks)
    }

    fn losses(&self) -> &[f64] {
        FlavorTrainer::losses(self)
    }

    fn into_model(self) -> FlavorModel {
        FlavorTrainer::into_model(self)
    }
}

impl ResumableTrainer for LifetimeTrainer {
    const STAGE: &'static str = "lifetime";
    type Model = LifetimeModel;

    fn derive_seed(cfg: &TrainConfig) -> u64 {
        // The plain fit decorrelates the lifetime stage from the flavor
        // stage with this xor; resume must reproduce it.
        cfg.seed ^ 0xA5A5
    }

    fn new_seeded(
        stream: &TokenStream,
        space: &FeatureSpace,
        cfg: TrainConfig,
        rng: &mut CkptRng,
    ) -> Self {
        LifetimeTrainer::new(stream, space.clone(), cfg, LifetimeHead::Hazard, rng)
    }

    fn epochs_done(&self) -> usize {
        LifetimeTrainer::epochs_done(self)
    }

    fn config(&self) -> &TrainConfig {
        LifetimeTrainer::config(self)
    }

    fn parallelism(&self) -> Parallelism {
        LifetimeTrainer::parallelism(self)
    }

    fn set_parallelism(&mut self, par: Parallelism) {
        LifetimeTrainer::set_parallelism(self, par);
    }

    fn run_epoch(
        &mut self,
        stream: &TokenStream,
        lr_scale: f64,
        rng: &mut CkptRng,
        rec: &dyn Recorder,
        hooks: &mut dyn TrainHooks,
    ) -> Result<EpochOutcome, TrainAbort> {
        LifetimeTrainer::run_epoch(self, stream, lr_scale, rng, rec, hooks)
    }

    fn losses(&self) -> &[f64] {
        LifetimeTrainer::losses(self)
    }

    fn into_model(self) -> LifetimeModel {
        LifetimeTrainer::into_model(self)
    }
}

fn guard_note(
    rec: &dyn Recorder,
    stage: &str,
    epoch: usize,
    action: &str,
    detail: String,
    attempt: u32,
    lr_scale: f64,
) {
    rec.record(Event::Guard(GuardEvent {
        stage: stage.to_string(),
        epoch,
        action: action.to_string(),
        detail,
        grad_norm: None,
        loss: None,
        attempt,
        lr_scale,
    }));
}

/// Trains `T` to completion under the resilience runtime: resumes from
/// the newest intact checkpoint when one exists, checkpoints on the
/// configured cadence, and answers divergence with
/// rollback + LR-halving + retry.
///
/// # Errors
///
/// [`ResilienceError::Killed`] on a fatal abort (resume by calling
/// again), [`ResilienceError::RetryExhausted`] when an epoch keeps
/// diverging, [`ResilienceError::Checkpoint`] on persistence failures,
/// and [`ResilienceError::ConfigMismatch`] when a found checkpoint
/// disagrees with `cfg`.
pub fn fit_resilient<T: ResumableTrainer>(
    stream: &TokenStream,
    space: &FeatureSpace,
    cfg: TrainConfig,
    rcfg: &ResilienceConfig,
    plan: &mut FaultPlan,
    rec: &dyn Recorder,
) -> Result<FitOutcome<T::Model>, ResilienceError> {
    fit_resilient_par::<T>(stream, space, cfg, Parallelism::single(), rcfg, plan, rec)
}

/// [`fit_resilient`] with an explicit data-parallel configuration.
///
/// The shard layout (`par.shard_seqs`) is part of the numeric result: it
/// fixes the floating-point grouping of the gradient reduction. A resumed
/// run must therefore use the same layout its checkpoint recorded —
/// a mismatch is refused with [`ResilienceError::ShardLayoutMismatch`].
/// Worker count (`par.threads`) only parallelizes the map and may change
/// between save and resume without affecting the trajectory.
///
/// # Errors
///
/// Everything [`fit_resilient`] returns, plus
/// [`ResilienceError::ShardLayoutMismatch`] when a found checkpoint's
/// shard layout disagrees with `par`.
pub fn fit_resilient_par<T: ResumableTrainer>(
    stream: &TokenStream,
    space: &FeatureSpace,
    cfg: TrainConfig,
    par: Parallelism,
    rcfg: &ResilienceConfig,
    plan: &mut FaultPlan,
    rec: &dyn Recorder,
) -> Result<FitOutcome<T::Model>, ResilienceError> {
    let store = match &rcfg.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::create(dir, T::STAGE)?),
        None => None,
    };

    let (mut trainer, mut rng, mut lr_scale, resumed_from) = match &store {
        Some(s) => match s.load_latest::<T>(rec)? {
            Some(ck) => {
                if ck.trainer.config() != &cfg {
                    return Err(ResilienceError::ConfigMismatch { stage: T::STAGE });
                }
                let recorded = ck.trainer.parallelism();
                if recorded.shard_seqs != par.shard_seqs {
                    return Err(ResilienceError::ShardLayoutMismatch {
                        stage: T::STAGE,
                        checkpoint: recorded.shard_seqs,
                        requested: par.shard_seqs,
                    });
                }
                let epoch = ck.epoch;
                (ck.trainer, ck.rng, ck.lr_scale, Some(epoch))
            }
            None => fresh::<T>(stream, space, cfg),
        },
        None => fresh::<T>(stream, space, cfg),
    };
    // Safe after the layout check: only the worker count can differ here,
    // and it is not part of the numeric contract.
    trainer.set_parallelism(par);

    let mut attempt = 0u32;
    let mut rollbacks = 0u32;
    let mut saved = 0u32;
    while trainer.epochs_done() < cfg.epochs {
        let epoch = trainer.epochs_done();
        let snapshot = (trainer.clone(), rng.clone());
        let mut guard = TrainGuard::new(rcfg.guard, rec, attempt, lr_scale);
        let mut hooks = HookStack {
            plan: &mut *plan,
            guard: &mut guard,
        };
        match trainer.run_epoch(stream, lr_scale, &mut rng, rec, &mut hooks) {
            Ok(_) => {
                attempt = 0;
                let done = trainer.epochs_done();
                let cadence_hit = rcfg.checkpoint_every > 0 && done % rcfg.checkpoint_every == 0;
                let is_final = done == cfg.epochs;
                if let Some(s) = &store {
                    if cadence_hit || is_final {
                        let ck = Checkpoint {
                            stage: T::STAGE.to_string(),
                            epoch: done,
                            lr_scale,
                            trainer: trainer.clone(),
                            rng: rng.clone(),
                            threads: par.threads,
                        };
                        let path = s.save(&ck, rec)?;
                        saved += 1;
                        if hooks.plan.take_corrupt(T::STAGE, done) {
                            corrupt_file(&path).map_err(CheckpointError::Io)?;
                        }
                    }
                }
            }
            Err(abort) if abort.fatal => {
                return Err(ResilienceError::Killed {
                    stage: T::STAGE,
                    epoch,
                    reason: abort.reason,
                });
            }
            Err(abort) => {
                attempt += 1;
                rollbacks += 1;
                if attempt > rcfg.max_retries {
                    guard_note(
                        rec,
                        T::STAGE,
                        epoch,
                        "retry-exhausted",
                        abort.reason,
                        attempt,
                        lr_scale,
                    );
                    return Err(ResilienceError::RetryExhausted {
                        stage: T::STAGE,
                        epoch,
                        attempts: attempt,
                    });
                }
                (trainer, rng) = snapshot;
                lr_scale *= 0.5;
                guard_note(
                    rec,
                    T::STAGE,
                    epoch,
                    "rollback",
                    format!("restored epoch-{epoch} snapshot: {}", abort.reason),
                    attempt,
                    lr_scale,
                );
                guard_note(
                    rec,
                    T::STAGE,
                    epoch,
                    "lr-halved",
                    format!("retrying epoch {epoch} at lr_scale {lr_scale}"),
                    attempt,
                    lr_scale,
                );
                if rcfg.backoff_base_ms > 0 {
                    let factor = 1u64 << (attempt - 1).min(10);
                    std::thread::sleep(Duration::from_millis(rcfg.backoff_base_ms * factor));
                }
            }
        }
    }

    Ok(FitOutcome {
        losses: trainer.losses().to_vec(),
        model: trainer.into_model(),
        resumed_from,
        rollbacks,
        checkpoints_saved: saved,
    })
}

fn fresh<T: ResumableTrainer>(
    stream: &TokenStream,
    space: &FeatureSpace,
    cfg: TrainConfig,
) -> (T, CkptRng, f64, Option<usize>) {
    let mut rng = CkptRng::seed_from_u64(T::derive_seed(&cfg));
    let trainer = T::new_seeded(stream, space, cfg, &mut rng);
    (trainer, rng, 1.0, None)
}

/// [`fit_resilient`] for the stage-2 flavor LSTM.
///
/// # Errors
///
/// See [`fit_resilient`].
pub fn fit_flavor_resilient(
    stream: &TokenStream,
    space: &FeatureSpace,
    cfg: TrainConfig,
    rcfg: &ResilienceConfig,
    plan: &mut FaultPlan,
    rec: &dyn Recorder,
) -> Result<FitOutcome<FlavorModel>, ResilienceError> {
    fit_resilient::<FlavorTrainer>(stream, space, cfg, rcfg, plan, rec)
}

/// [`fit_resilient`] for the stage-3 lifetime LSTM.
///
/// # Errors
///
/// See [`fit_resilient`].
pub fn fit_lifetime_resilient(
    stream: &TokenStream,
    space: &FeatureSpace,
    cfg: TrainConfig,
    rcfg: &ResilienceConfig,
    plan: &mut FaultPlan,
    rec: &dyn Recorder,
) -> Result<FitOutcome<LifetimeModel>, ResilienceError> {
    fit_resilient::<LifetimeTrainer>(stream, space, cfg, rcfg, plan, rec)
}

/// [`fit_resilient_par`] for the stage-2 flavor LSTM.
///
/// # Errors
///
/// See [`fit_resilient_par`].
pub fn fit_flavor_resilient_par(
    stream: &TokenStream,
    space: &FeatureSpace,
    cfg: TrainConfig,
    par: Parallelism,
    rcfg: &ResilienceConfig,
    plan: &mut FaultPlan,
    rec: &dyn Recorder,
) -> Result<FitOutcome<FlavorModel>, ResilienceError> {
    fit_resilient_par::<FlavorTrainer>(stream, space, cfg, par, rcfg, plan, rec)
}

/// [`fit_resilient_par`] for the stage-3 lifetime LSTM.
///
/// # Errors
///
/// See [`fit_resilient_par`].
pub fn fit_lifetime_resilient_par(
    stream: &TokenStream,
    space: &FeatureSpace,
    cfg: TrainConfig,
    par: Parallelism,
    rcfg: &ResilienceConfig,
    plan: &mut FaultPlan,
    rec: &dyn Recorder,
) -> Result<FitOutcome<LifetimeModel>, ResilienceError> {
    fit_resilient_par::<LifetimeTrainer>(stream, space, cfg, par, rcfg, plan, rec)
}
