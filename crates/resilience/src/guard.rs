//! Divergence guardrails over the training loop.
//!
//! The guard watches every optimizer step through the
//! [`TrainHooks`] protocol and turns three
//! divergence signatures into retryable aborts: a non-finite minibatch
//! loss, a step the optimizer skipped for a non-finite gradient, and a
//! pre-clip gradient norm spiking far above its running average (gradient
//! clipping hides such spikes from the *weights*, but a clipped step in a
//! garbage direction is still a garbage step). The runtime responds by
//! rolling back to the epoch's starting snapshot, halving the learning
//! rate, and retrying — see [`crate::fit_resilient`].

use cloudgen::{StepCtx, StepStats, TrainAbort, TrainHooks};
use obsv::{Event, GuardEvent, Recorder};
use serde::{Deserialize, Serialize};

/// Thresholds for the divergence guard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// A step's pre-clip gradient norm must exceed `spike_factor` times
    /// the EMA of previous norms to count as a spike.
    pub spike_factor: f64,
    /// EMA smoothing weight for the gradient-norm baseline.
    pub ema_alpha: f64,
    /// Steps before spike detection arms (the first minibatches of a fresh
    /// network legitimately have wild norms).
    pub warmup_steps: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            spike_factor: 25.0,
            ema_alpha: 0.1,
            warmup_steps: 20,
        }
    }
}

/// The per-epoch guard state. Construct a fresh one for every epoch
/// attempt (the EMA baseline restarts with the rolled-back weights).
pub struct TrainGuard<'a> {
    cfg: GuardConfig,
    rec: &'a dyn Recorder,
    /// Which retry of the current epoch this is (0 = first attempt).
    attempt: u32,
    /// The learning-rate scale in force, echoed into guard telemetry.
    lr_scale: f64,
    ema: Option<f64>,
    steps: usize,
}

impl<'a> TrainGuard<'a> {
    /// A guard for one epoch attempt.
    pub fn new(cfg: GuardConfig, rec: &'a dyn Recorder, attempt: u32, lr_scale: f64) -> Self {
        Self {
            cfg,
            rec,
            attempt,
            lr_scale,
            ema: None,
            steps: 0,
        }
    }

    fn emit(&self, ctx: &StepCtx, action: &str, detail: String, stats: &StepStats) {
        self.rec.record(Event::Guard(GuardEvent {
            stage: ctx.stage.to_string(),
            epoch: ctx.epoch,
            action: action.to_string(),
            detail,
            grad_norm: stats.grad_norm.is_finite().then_some(stats.grad_norm),
            loss: stats.loss.is_finite().then_some(stats.loss),
            attempt: self.attempt,
            lr_scale: self.lr_scale,
        }));
    }
}

impl TrainHooks for TrainGuard<'_> {
    fn post_step(&mut self, ctx: &StepCtx, stats: &StepStats) -> Result<(), TrainAbort> {
        if stats.skipped {
            self.emit(
                ctx,
                "step-skipped",
                format!("optimizer skipped step {} on a non-finite gradient", ctx.step),
                stats,
            );
            return Err(TrainAbort {
                fatal: false,
                reason: format!(
                    "non-finite gradient at {} epoch {} step {}",
                    ctx.stage, ctx.epoch, ctx.step
                ),
            });
        }
        if !stats.loss.is_finite() {
            self.emit(
                ctx,
                "nan-loss",
                format!("minibatch loss became non-finite at step {}", ctx.step),
                stats,
            );
            return Err(TrainAbort {
                fatal: false,
                reason: format!(
                    "non-finite loss at {} epoch {} step {}",
                    ctx.stage, ctx.epoch, ctx.step
                ),
            });
        }
        self.steps += 1;
        if let Some(ema) = self.ema {
            if self.steps > self.cfg.warmup_steps
                && stats.grad_norm > self.cfg.spike_factor * ema
            {
                self.emit(
                    ctx,
                    "grad-spike",
                    format!(
                        "pre-clip grad norm {:.3e} exceeds {}x its EMA {:.3e}",
                        stats.grad_norm, self.cfg.spike_factor, ema
                    ),
                    stats,
                );
                return Err(TrainAbort {
                    fatal: false,
                    reason: format!(
                        "gradient-norm spike at {} epoch {} step {}",
                        ctx.stage, ctx.epoch, ctx.step
                    ),
                });
            }
            self.ema = Some(self.cfg.ema_alpha * stats.grad_norm + (1.0 - self.cfg.ema_alpha) * ema);
        } else {
            self.ema = Some(stats.grad_norm);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obsv::MemoryRecorder;

    fn ctx(step: usize) -> StepCtx {
        StepCtx {
            stage: "flavor",
            epoch: 3,
            step,
        }
    }

    fn healthy(loss: f64, norm: f64) -> StepStats {
        StepStats {
            loss,
            grad_norm: norm,
            skipped: false,
        }
    }

    #[test]
    fn healthy_steps_pass() {
        let rec = MemoryRecorder::new();
        let mut g = TrainGuard::new(GuardConfig::default(), &rec, 0, 1.0);
        for i in 0..100 {
            g.post_step(&ctx(i), &healthy(1.0, 2.0 + (i % 3) as f64 * 0.1))
                .unwrap();
        }
        assert!(rec.guards().is_empty());
    }

    #[test]
    fn nan_loss_aborts_nonfatally() {
        let rec = MemoryRecorder::new();
        let mut g = TrainGuard::new(GuardConfig::default(), &rec, 1, 0.5);
        let err = g.post_step(&ctx(0), &healthy(f64::NAN, 1.0)).unwrap_err();
        assert!(!err.fatal);
        let guards = rec.guards();
        assert_eq!(guards.len(), 1);
        assert_eq!(guards[0].action, "nan-loss");
        assert_eq!(guards[0].attempt, 1);
        assert_eq!(guards[0].lr_scale, 0.5);
        assert_eq!(guards[0].loss, None, "NaN must not leak into telemetry");
    }

    #[test]
    fn skipped_step_aborts() {
        let rec = MemoryRecorder::new();
        let mut g = TrainGuard::new(GuardConfig::default(), &rec, 0, 1.0);
        let stats = StepStats {
            loss: 1.0,
            grad_norm: f64::NAN,
            skipped: true,
        };
        let err = g.post_step(&ctx(4), &stats).unwrap_err();
        assert!(!err.fatal);
        assert_eq!(rec.guards()[0].action, "step-skipped");
    }

    #[test]
    fn spike_detected_after_warmup() {
        let rec = MemoryRecorder::new();
        let cfg = GuardConfig {
            spike_factor: 10.0,
            ema_alpha: 0.1,
            warmup_steps: 5,
        };
        let mut g = TrainGuard::new(cfg, &rec, 0, 1.0);
        for i in 0..10 {
            g.post_step(&ctx(i), &healthy(1.0, 1.0)).unwrap();
        }
        let err = g.post_step(&ctx(10), &healthy(1.0, 50.0)).unwrap_err();
        assert!(!err.fatal);
        assert_eq!(rec.guards()[0].action, "grad-spike");
    }

    #[test]
    fn spike_inside_warmup_is_tolerated() {
        let rec = MemoryRecorder::new();
        let cfg = GuardConfig {
            spike_factor: 10.0,
            ema_alpha: 0.1,
            warmup_steps: 5,
        };
        let mut g = TrainGuard::new(cfg, &rec, 0, 1.0);
        g.post_step(&ctx(0), &healthy(1.0, 1.0)).unwrap();
        // Huge norm on step 2, but we are inside warmup.
        g.post_step(&ctx(1), &healthy(1.0, 80.0)).unwrap();
        assert!(rec.guards().is_empty());
    }
}
