//! A serializable RNG for checkpointable training.
//!
//! `rand`'s `StdRng` deliberately hides its internal state, which makes it
//! impossible to checkpoint: a resumed run would replay a *different*
//! random sequence than the uninterrupted one, so "resume" would not be
//! resume at all. [`CkptRng`] is a self-contained xoshiro256++ generator
//! whose 256-bit state serializes with the rest of a
//! [`Checkpoint`](crate::Checkpoint), giving bit-for-bit identical
//! shuffles and samples across kill/resume boundaries.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A checkpointable xoshiro256++ generator.
///
/// Implements [`rand::RngCore`], so it drops into every `&mut impl Rng`
/// API in the workspace. Equality compares generator state, which is what
/// resume-determinism tests assert.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CkptRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CkptRng {
    /// Expands a 64-bit seed into the full 256-bit state via splitmix64
    /// (the seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for CkptRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = CkptRng::seed_from_u64(42);
        let mut b = CkptRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = CkptRng::seed_from_u64(1);
        let mut b = CkptRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_resumes_the_exact_stream() {
        let mut a = CkptRng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a, b);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut r = CkptRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let n = r.gen_range(0..10usize);
            assert!(n < 10);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = CkptRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Astronomically unlikely to stay all-zero.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
