//! Deterministic request-level fault injection for the serving layer.
//!
//! [`FaultPlan`](crate::FaultPlan) pins faults to *training* coordinates
//! (stage, epoch, step); a [`RequestFaultPlan`] pins them to *request*
//! sequence numbers, so a load test that says "request 3 is poisoned,
//! request 7's shard stalls, request 11 is killed mid-flight" replays
//! identically on every run. The plan itself is a plain `&mut self` data
//! structure with no interior mutability — the server owns whatever
//! locking its worker threads need, keeping this crate free of sync
//! primitives on the numeric path.
//!
//! Faults fire exactly once: a retried request re-queries the plan per
//! attempt, which is how [`RequestFault::Transient`] counts down its
//! remaining failures.

use serde::{Deserialize, Serialize};

/// One scheduled request-level fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestFault {
    /// Serve the request from a NaN-poisoned copy of the model — every
    /// batch degrades through the `GenFallback` ladder, so the request
    /// either completes degraded (fallback within budget) or fails typed
    /// with `FallbackBudgetExhausted`.
    Poisoned,
    /// Stall the request's execution for the given wall-clock time before
    /// generation starts — models one slow shard holding a request
    /// hostage, and is what the slow-shard watchdog exists to catch.
    StallShard {
        /// How long the stall lasts if nothing intervenes.
        millis: u64,
    },
    /// Fire the request's cancel token after the given delay — models an
    /// operator or client killing the request mid-flight.
    KillInFlight {
        /// Delay before the kill, milliseconds (0 = kill on admission).
        after_ms: u64,
    },
    /// Fail the request's first `failures` execution attempts with a
    /// transient worker error — exercises request-scoped retry with
    /// backoff. The attempt after the last scheduled failure succeeds.
    Transient {
        /// Number of attempts that fail before one succeeds.
        failures: u32,
    },
}

/// A deterministic schedule of request faults, keyed by the request
/// sequence number the server assigns at admission (in accept order,
/// starting at 1). Each entry fires exactly once per [`RequestFaultPlan::take`];
/// [`RequestFault::Transient`] decrements instead, firing once per
/// attempt until its failure count is spent.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestFaultPlan {
    faults: Vec<(u64, RequestFault)>,
}

impl RequestFaultPlan {
    /// An empty plan (the production configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules `fault` against request `request_id`.
    pub fn on(mut self, request_id: u64, fault: RequestFault) -> Self {
        self.faults.push((request_id, fault));
        self
    }

    /// True when no faults remain unfired.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faults still pending (unfired).
    pub fn pending(&self) -> &[(u64, RequestFault)] {
        &self.faults
    }

    /// Fires the fault scheduled for `request_id`, if any.
    ///
    /// Non-transient faults are removed (fire-once). A
    /// [`RequestFault::Transient`] is returned once per call with its
    /// remaining failure count and removed when the count is spent, so
    /// callers can simply re-`take` on every retry attempt.
    pub fn take(&mut self, request_id: u64) -> Option<RequestFault> {
        let i = self.faults.iter().position(|(id, _)| *id == request_id)?;
        if let (_, RequestFault::Transient { failures }) = &mut self.faults[i] {
            if *failures > 1 {
                *failures -= 1;
                return Some(RequestFault::Transient {
                    failures: *failures + 1,
                });
            }
        }
        Some(self.faults.remove(i).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_faults_fire_exactly_once() {
        let mut plan = RequestFaultPlan::none()
            .on(3, RequestFault::Poisoned)
            .on(7, RequestFault::StallShard { millis: 500 });
        assert_eq!(plan.take(3), Some(RequestFault::Poisoned));
        assert_eq!(plan.take(3), None, "fault must not re-fire");
        assert_eq!(plan.take(5), None, "unscheduled request is clean");
        assert_eq!(plan.take(7), Some(RequestFault::StallShard { millis: 500 }));
        assert!(plan.is_empty());
    }

    #[test]
    fn transient_fault_counts_down_per_attempt() {
        let mut plan = RequestFaultPlan::none().on(1, RequestFault::Transient { failures: 2 });
        assert_eq!(plan.take(1), Some(RequestFault::Transient { failures: 2 }));
        assert_eq!(plan.take(1), Some(RequestFault::Transient { failures: 1 }));
        assert_eq!(plan.take(1), None, "failures spent; attempt succeeds");
        assert!(plan.is_empty());
    }

    #[test]
    fn kill_in_flight_carries_its_delay() {
        let mut plan = RequestFaultPlan::none().on(0, RequestFault::KillInFlight { after_ms: 25 });
        assert_eq!(
            plan.take(0),
            Some(RequestFault::KillInFlight { after_ms: 25 })
        );
    }
}
