//! Atomic, versioned training checkpoints.
//!
//! A checkpoint captures everything `fit` needs to continue bit-for-bit
//! after a process death: the serializable trainer (network weights, Adam
//! moments, epoch cursor, cumulative shuffle order), the
//! [`CkptRng`] stream position, and the guard's current learning-rate
//! scale. On disk each checkpoint is one file, written to a temporary
//! name in the same directory and atomically renamed into place, and
//! wrapped in the `nn::codec` envelope (schema version + CRC-32), so a
//! truncated or bit-rotted file is *detected* rather than loaded —
//! [`CheckpointStore::load_latest`] skips corrupt files and falls back to
//! the newest intact one.

use crate::rng::CkptRng;
use nn::codec::{self, CodecError};
use obsv::{CheckpointEvent, Event, Recorder, Stopwatch};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Envelope kind tag for checkpoint files.
pub const CHECKPOINT_KIND: &str = "train-checkpoint";

const CHECKPOINT_EXT: &str = "ckpt";

/// One resumable training state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint<T> {
    /// Which stage this belongs to (`"flavor"` or `"lifetime"`).
    pub stage: String,
    /// Epochs completed when the checkpoint was taken.
    pub epoch: usize,
    /// The guard's learning-rate scale at checkpoint time (halved on each
    /// divergence rollback; 1.0 when training has been healthy).
    pub lr_scale: f64,
    /// The serializable trainer: weights, optimizer moments, loss history.
    pub trainer: T,
    /// RNG stream position.
    pub rng: CkptRng,
    /// Worker-pool size the run was using when the checkpoint was taken.
    ///
    /// Informational only: the numeric contract lives in the trainer's
    /// shard layout (`Parallelism::shard_seqs`), which thread count never
    /// affects. Checkpoints written before this field existed load as `1`.
    #[serde(default = "default_threads")]
    pub threads: usize,
}

fn default_threads() -> usize {
    1
}

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (permissions, disk full, missing directory).
    Io(io::Error),
    /// The file exists but its envelope is invalid (truncated, checksum
    /// mismatch, wrong schema version or kind).
    Codec(CodecError),
    /// The envelope was intact but the payload did not parse as a
    /// checkpoint.
    Payload(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::Codec(e) => write!(f, "checkpoint envelope: {e}"),
            CheckpointError::Payload(e) => write!(f, "checkpoint payload: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// A directory of checkpoints for one training stage.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    stage: &'static str,
}

impl CheckpointStore {
    /// Opens (creating if needed) `dir` as the checkpoint directory for
    /// `stage`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error if the directory cannot be created.
    pub fn create(dir: &Path, stage: &'static str) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            stage,
        })
    }

    /// The file a checkpoint at `epoch` lives at.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("{}-{epoch:05}.{CHECKPOINT_EXT}", self.stage))
    }

    /// Serializes and atomically persists `ck`: the envelope is written to
    /// a temporary file in the same directory, flushed, then renamed over
    /// the final name — a crash mid-write leaves at worst a stray `.tmp`
    /// file, never a half-written checkpoint under the real name.
    ///
    /// # Errors
    ///
    /// Serialization or filesystem failures; the final path is untouched
    /// on error.
    pub fn save<T: Serialize>(
        &self,
        ck: &Checkpoint<T>,
        rec: &dyn Recorder,
    ) -> Result<PathBuf, CheckpointError> {
        let started = Stopwatch::new();
        let payload =
            serde_json::to_string(ck).map_err(|e| CheckpointError::Payload(e.to_string()))?;
        let enveloped = codec::encode_envelope(CHECKPOINT_KIND, &payload);
        let final_path = self.path_for(ck.epoch);
        let tmp_path = self
            .dir
            .join(format!("{}-{:05}.tmp", self.stage, ck.epoch));
        fs::write(&tmp_path, &enveloped)?;
        // Rename is atomic within a filesystem; the tmp file lives in the
        // same directory precisely so this never crosses a mount.
        fs::rename(&tmp_path, &final_path)?;
        rec.record(Event::Checkpoint(CheckpointEvent {
            stage: self.stage.to_string(),
            epoch: ck.epoch,
            kind: "save".to_string(),
            bytes: enveloped.len() as u64,
            wall_ms: started.elapsed_ms(),
        }));
        Ok(final_path)
    }

    /// Epochs that have a checkpoint file present, ascending. Unparseable
    /// filenames are ignored (they are not ours).
    pub fn epochs(&self) -> Result<Vec<usize>, CheckpointError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&format!("{}-", self.stage)) else {
                continue;
            };
            let Some(num) = rest.strip_suffix(&format!(".{CHECKPOINT_EXT}")) else {
                continue;
            };
            if let Ok(epoch) = num.parse::<usize>() {
                out.push(epoch);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Loads the newest *intact* checkpoint, or `None` if the directory
    /// holds no usable one.
    ///
    /// Corrupt files (truncated, checksum mismatch, stale schema) are
    /// skipped with a `skip-corrupt` [`CheckpointEvent`] and the scan
    /// falls back to the next-newest file — a damaged latest checkpoint
    /// costs the run one checkpoint interval, not the whole history.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from listing the directory; per-file
    /// decode failures are handled by skipping, not returned.
    pub fn load_latest<T: DeserializeOwned>(
        &self,
        rec: &dyn Recorder,
    ) -> Result<Option<Checkpoint<T>>, CheckpointError> {
        let mut epochs = self.epochs()?;
        epochs.reverse();
        for epoch in epochs {
            let path = self.path_for(epoch);
            match self.load_file(&path) {
                Ok(ck) => {
                    rec.record(Event::Checkpoint(CheckpointEvent {
                        stage: self.stage.to_string(),
                        epoch,
                        kind: "load".to_string(),
                        bytes: fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                        wall_ms: 0.0,
                    }));
                    return Ok(Some(ck));
                }
                Err(CheckpointError::Io(e)) => return Err(CheckpointError::Io(e)),
                Err(_) => {
                    rec.record(Event::Checkpoint(CheckpointEvent {
                        stage: self.stage.to_string(),
                        epoch,
                        kind: "skip-corrupt".to_string(),
                        bytes: fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                        wall_ms: 0.0,
                    }));
                }
            }
        }
        Ok(None)
    }

    /// Decodes one checkpoint file, verifying the envelope.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when unreadable, [`CheckpointError::Codec`]
    /// when the envelope is invalid, [`CheckpointError::Payload`] when the
    /// inner JSON does not parse.
    pub fn load_file<T: DeserializeOwned>(
        &self,
        path: &Path,
    ) -> Result<Checkpoint<T>, CheckpointError> {
        let raw = fs::read_to_string(path)?;
        let payload = codec::decode_envelope(CHECKPOINT_KIND, &raw)?;
        serde_json::from_str(&payload).map_err(|e| CheckpointError::Payload(e.to_string()))
    }
}

/// Truncates a checkpoint file in place — the fault-injection harness's
/// model of a torn write / bit-rot. The result still exists on disk but
/// fails envelope verification.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn corrupt_file(path: &Path) -> io::Result<()> {
    let raw = fs::read(path)?;
    let keep = raw.len() / 2;
    fs::write(path, &raw[..keep])
}
