//! `resilience` — the fault-tolerant training runtime.
//!
//! Training the paper's two LSTMs is the longest-running, most fragile
//! part of the pipeline: a single NaN gradient, a preempted process, or a
//! torn checkpoint write can silently waste hours. This crate wraps the
//! epoch-granular trainers from `cloudgen` with three layers of defense:
//!
//! - [`Checkpoint`] / [`CheckpointStore`] — atomic, versioned,
//!   checksummed persistence of the *complete* training state (network
//!   weights, Adam moments, RNG stream position via [`CkptRng`], epoch
//!   cursor, learning-rate scale). Write-to-temp-then-rename makes saves
//!   atomic; the `nn::codec` envelope makes truncation and bit-rot
//!   detectable, so resume falls back to the newest intact file.
//! - [`TrainGuard`] — divergence guardrails watching per-step loss and
//!   pre-clip gradient norms through the `TrainHooks` seam; on NaN/Inf or
//!   a norm spike it aborts the epoch, and [`fit_resilient`] answers by
//!   restoring the pre-epoch snapshot, halving the learning rate, and
//!   retrying a bounded number of times.
//! - [`FaultPlan`] — a deterministic fault-injection schedule (NaN
//!   gradients, mid-epoch kills, checkpoint corruption) that drives the
//!   *production* recovery paths in tests; there is no test-only fork of
//!   the training loop.
//!
//! Graceful degradation on the *generation* side (per-batch fallback to
//! independence baselines when an LSTM emits non-finite output) lives
//! with the generator itself: see `cloudgen::GenFallback`.
//!
//! Everything reports through `obsv`: guard trips, rollbacks, LR halving,
//! and checkpoint saves/loads/skips all land in the run's `RunReport`.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod fault;
pub mod guard;
pub mod request;
pub mod rng;
pub mod runtime;

pub use checkpoint::{
    corrupt_file, Checkpoint, CheckpointError, CheckpointStore, CHECKPOINT_KIND,
};
pub use fault::{Fault, FaultPlan};
pub use request::{RequestFault, RequestFaultPlan};
pub use guard::{GuardConfig, TrainGuard};
pub use rng::CkptRng;
pub use runtime::{
    fit_flavor_resilient, fit_flavor_resilient_par, fit_lifetime_resilient,
    fit_lifetime_resilient_par, fit_resilient, fit_resilient_par, FitOutcome, ResilienceConfig,
    ResilienceError, ResumableTrainer,
};
