//! Deterministic fault injection for exercising the resilience runtime.
//!
//! A [`FaultPlan`] is an explicit, serializable schedule of faults pinned
//! to (stage, epoch, step) coordinates, so a test that "kills training
//! mid-epoch, corrupts one checkpoint, and plants one NaN gradient"
//! replays identically on every run and every machine. Faults fire
//! through the same [`TrainHooks`] seam the guard
//! uses, which means the injection path *is* the production path — there
//! is no test-only fork of the training loop.

use crate::guard::TrainGuard;
use cloudgen::{StepCtx, StepStats, TrainAbort, TrainHooks};
use nn::Param;
use serde::{Deserialize, Serialize};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Overwrite the computed gradients with NaN right before the given
    /// optimizer step — models an overflowed backward pass.
    NanGradient {
        /// Training stage (`"flavor"` or `"lifetime"`).
        stage: String,
        /// Epoch index the fault arms at.
        epoch: usize,
        /// Minibatch step the fault fires on.
        step: usize,
    },
    /// Abort the run fatally right after the given step — models the
    /// process being killed mid-epoch (OOM, preemption, power loss).
    Kill {
        /// Training stage.
        stage: String,
        /// Epoch index.
        epoch: usize,
        /// Minibatch step.
        step: usize,
    },
    /// Truncate the checkpoint file written at the given epoch — models a
    /// torn write discovered at resume time.
    CorruptCheckpoint {
        /// Training stage.
        stage: String,
        /// Epoch whose checkpoint gets damaged (must be one the schedule
        /// actually writes).
        epoch: usize,
    },
}

/// A deterministic schedule of faults. Each fault fires exactly once.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the production configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules a NaN-gradient injection.
    pub fn nan_gradient(mut self, stage: &str, epoch: usize, step: usize) -> Self {
        self.faults.push(Fault::NanGradient {
            stage: stage.to_string(),
            epoch,
            step,
        });
        self
    }

    /// Schedules a mid-epoch kill.
    pub fn kill(mut self, stage: &str, epoch: usize, step: usize) -> Self {
        self.faults.push(Fault::Kill {
            stage: stage.to_string(),
            epoch,
            step,
        });
        self
    }

    /// Schedules a checkpoint corruption.
    pub fn corrupt_checkpoint(mut self, stage: &str, epoch: usize) -> Self {
        self.faults.push(Fault::CorruptCheckpoint {
            stage: stage.to_string(),
            epoch,
        });
        self
    }

    /// True when no faults remain unfired.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faults still pending (unfired).
    pub fn pending(&self) -> &[Fault] {
        &self.faults
    }

    fn take(&mut self, matches: impl Fn(&Fault) -> bool) -> bool {
        match self.faults.iter().position(matches) {
            Some(i) => {
                self.faults.remove(i);
                true
            }
            None => false,
        }
    }

    pub(crate) fn take_nan(&mut self, ctx: &StepCtx) -> bool {
        self.take(|f| {
            matches!(f, Fault::NanGradient { stage, epoch, step }
                if stage == ctx.stage && *epoch == ctx.epoch && *step == ctx.step)
        })
    }

    pub(crate) fn take_kill(&mut self, ctx: &StepCtx) -> bool {
        self.take(|f| {
            matches!(f, Fault::Kill { stage, epoch, step }
                if stage == ctx.stage && *epoch == ctx.epoch && *step == ctx.step)
        })
    }

    pub(crate) fn take_corrupt(&mut self, at_stage: &str, at_epoch: usize) -> bool {
        self.take(|f| {
            matches!(f, Fault::CorruptCheckpoint { stage, epoch }
                if stage == at_stage && *epoch == at_epoch)
        })
    }
}

/// The hook stack the runtime installs per epoch attempt: faults fire
/// first (they create the conditions), then the guard judges the step.
pub(crate) struct HookStack<'p, 'g, 'r> {
    pub plan: &'p mut FaultPlan,
    pub guard: &'g mut TrainGuard<'r>,
}

impl TrainHooks for HookStack<'_, '_, '_> {
    fn pre_step(&mut self, ctx: &StepCtx, params: &mut [&mut Param]) {
        if self.plan.take_nan(ctx) {
            for p in params.iter_mut() {
                p.grad.map_inplace(|_| f64::NAN);
            }
        }
    }

    fn post_step(&mut self, ctx: &StepCtx, stats: &StepStats) -> Result<(), TrainAbort> {
        if self.plan.take_kill(ctx) {
            return Err(TrainAbort {
                fatal: true,
                reason: format!(
                    "injected kill at {} epoch {} step {}",
                    ctx.stage, ctx.epoch, ctx.step
                ),
            });
        }
        self.guard.post_step(ctx, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        let mut plan = FaultPlan::none().nan_gradient("flavor", 2, 5);
        let ctx = StepCtx {
            stage: "flavor",
            epoch: 2,
            step: 5,
        };
        assert!(plan.take_nan(&ctx));
        assert!(!plan.take_nan(&ctx), "fault must not re-fire");
        assert!(plan.is_empty());
    }

    #[test]
    fn faults_only_match_their_coordinates() {
        let mut plan = FaultPlan::none().kill("lifetime", 1, 3);
        let wrong_stage = StepCtx {
            stage: "flavor",
            epoch: 1,
            step: 3,
        };
        let wrong_step = StepCtx {
            stage: "lifetime",
            epoch: 1,
            step: 4,
        };
        assert!(!plan.take_kill(&wrong_stage));
        assert!(!plan.take_kill(&wrong_step));
        assert_eq!(plan.pending().len(), 1);
    }

    #[test]
    fn corrupt_matches_stage_and_epoch() {
        let mut plan = FaultPlan::none().corrupt_checkpoint("flavor", 4);
        assert!(!plan.take_corrupt("lifetime", 4));
        assert!(!plan.take_corrupt("flavor", 3));
        assert!(plan.take_corrupt("flavor", 4));
        assert!(plan.is_empty());
    }
}
