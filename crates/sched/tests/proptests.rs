//! Property-based tests for the scheduler substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{
    pack_trace, reuse_distance_histogram, PackingConfig, PlacementAlgorithm, SchedulingTuple,
    Server,
};
use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

fn trace_from(flavors: Vec<u16>, lifetimes: Vec<u64>) -> Trace {
    let jobs = flavors
        .iter()
        .zip(lifetimes.iter().cycle())
        .enumerate()
        .map(|(i, (&f, &l))| Job {
            start: (i as u64) * 60,
            end: Some((i as u64) * 60 + l.max(1)),
            flavor: FlavorId(f % 16),
            user: UserId((i % 7) as u32),
        })
        .collect();
    Trace::new(jobs, FlavorCatalog::azure16())
}

proptest! {
    #[test]
    fn ffar_is_a_valid_ratio(
        flavors in proptest::collection::vec(0u16..16, 1..120),
        lifetimes in proptest::collection::vec(60u64..100_000, 1..20),
        alg_idx in 0usize..4,
        n_servers in 1usize..20,
        seed in 0u64..100,
    ) {
        let trace = trace_from(flavors, lifetimes);
        let tuple = SchedulingTuple {
            start_point: 0,
            n_servers,
            cpu_cap: 16.0,
            mem_cap: 64.0,
            algorithm: PlacementAlgorithm::ALL[alg_idx],
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let r = pack_trace(&trace, tuple, PackingConfig::default(), &mut rng);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.cpu_ffar));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.mem_ffar));
        prop_assert!(r.placed <= trace.len());
        prop_assert!(r.limiting() >= r.cpu_ffar.max(r.mem_ffar) - 1e-12);
    }

    #[test]
    fn packing_without_departures_places_no_more_than_with(
        flavors in proptest::collection::vec(0u16..16, 5..80),
        seed in 0u64..50,
    ) {
        // Short-lived jobs: departures can only help.
        let trace = trace_from(flavors, vec![120]);
        let tuple = SchedulingTuple {
            start_point: 0,
            n_servers: 2,
            cpu_cap: 8.0,
            mem_cap: 16.0,
            algorithm: PlacementAlgorithm::BusiestFit,
        };
        let mut rng1 = StdRng::seed_from_u64(seed);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let with = pack_trace(&trace, tuple, PackingConfig { with_departures: true }, &mut rng1);
        let without =
            pack_trace(&trace, tuple, PackingConfig { with_departures: false }, &mut rng2);
        prop_assert!(with.placed >= without.placed);
    }

    #[test]
    fn reuse_histogram_is_consistent(
        flavors in proptest::collection::vec(0u16..16, 0..200),
    ) {
        let n = flavors.len();
        let trace = trace_from(flavors.clone(), vec![600]);
        let h = reuse_distance_histogram(&trace);
        // Total scored = total jobs - distinct flavors (first occurrences).
        let distinct = {
            let mut f = flavors.iter().map(|x| x % 16).collect::<Vec<_>>();
            f.sort_unstable();
            f.dedup();
            f.len()
        };
        prop_assert_eq!(h.total as usize, n - distinct);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), h.total);
        if h.total > 0 {
            let s: f64 = h.proportions().iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn server_placement_respects_capacity(
        demands in proptest::collection::vec((0.1..4.0f64, 0.1..8.0f64), 1..50),
    ) {
        let mut s = Server::new(16.0, 32.0);
        for (cpu, mem) in demands {
            if s.fits(cpu, mem) {
                s.place(cpu, mem);
            }
            prop_assert!(s.cpu_used <= s.cpu_cap + 1e-6);
            prop_assert!(s.mem_used <= s.mem_cap + 1e-6);
        }
    }
}
