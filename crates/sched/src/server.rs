//! Simulated servers.

use serde::{Deserialize, Serialize};

/// One physical server with CPU and memory capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    /// CPU capacity (vCPUs).
    pub cpu_cap: f64,
    /// Memory capacity (GiB).
    pub mem_cap: f64,
    /// CPU currently allocated.
    pub cpu_used: f64,
    /// Memory currently allocated.
    pub mem_used: f64,
}

impl Server {
    /// An empty server with the given capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is non-positive.
    pub fn new(cpu_cap: f64, mem_cap: f64) -> Self {
        assert!(
            cpu_cap > 0.0 && mem_cap > 0.0,
            "capacities must be positive"
        );
        Self {
            cpu_cap,
            mem_cap,
            cpu_used: 0.0,
            mem_used: 0.0,
        }
    }

    /// True if a `(cpu, mem)` demand fits in the remaining capacity.
    pub fn fits(&self, cpu: f64, mem: f64) -> bool {
        self.cpu_used + cpu <= self.cpu_cap + 1e-9 && self.mem_used + mem <= self.mem_cap + 1e-9
    }

    /// Allocates a demand.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the demand does not fit.
    pub fn place(&mut self, cpu: f64, mem: f64) {
        debug_assert!(self.fits(cpu, mem), "placing into a full server");
        self.cpu_used += cpu;
        self.mem_used += mem;
    }

    /// Releases a previously placed demand.
    pub fn release(&mut self, cpu: f64, mem: f64) {
        self.cpu_used = (self.cpu_used - cpu).max(0.0);
        self.mem_used = (self.mem_used - mem).max(0.0);
    }

    /// CPU utilization in `[0, 1]`.
    pub fn cpu_util(&self) -> f64 {
        self.cpu_used / self.cpu_cap
    }

    /// Memory utilization in `[0, 1]`.
    pub fn mem_util(&self) -> f64 {
        self.mem_used / self.mem_cap
    }

    /// Remaining CPU.
    pub fn cpu_free(&self) -> f64 {
        (self.cpu_cap - self.cpu_used).max(0.0)
    }

    /// Remaining memory.
    pub fn mem_free(&self) -> f64 {
        (self.mem_cap - self.mem_used).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_and_place() {
        let mut s = Server::new(8.0, 32.0);
        assert!(s.fits(8.0, 32.0));
        s.place(4.0, 16.0);
        assert!(s.fits(4.0, 16.0));
        assert!(!s.fits(4.1, 1.0));
        assert!(!s.fits(1.0, 16.1));
        assert_eq!(s.cpu_util(), 0.5);
        assert_eq!(s.mem_util(), 0.5);
    }

    #[test]
    fn release_restores_capacity() {
        let mut s = Server::new(4.0, 8.0);
        s.place(4.0, 8.0);
        assert!(!s.fits(0.1, 0.1));
        s.release(4.0, 8.0);
        assert!(s.fits(4.0, 8.0));
        assert_eq!(s.cpu_used, 0.0);
    }

    #[test]
    fn release_clamps_at_zero() {
        let mut s = Server::new(4.0, 8.0);
        s.release(1.0, 1.0);
        assert_eq!(s.cpu_used, 0.0);
        assert_eq!(s.mem_used, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Server::new(0.0, 8.0);
    }
}
