//! VM-scheduler substrate for the §6.2 workload-scheduling experiments.
//!
//! The paper evaluates generated traces by how faithfully they reproduce two
//! properties that drive scheduler design:
//!
//! - **reuse distance** ([`reuse`]): for each request of flavor `v`, the
//!   number of unique flavors requested since the last request of `v` —
//!   small distances motivate Protean-style caching of placement decisions;
//! - **packing fragmentation** ([`packing`]): the first-failure allocation
//!   ratio (FFAR) achieved when packing the trace onto simulated servers
//!   with one of four placement algorithms ([`algorithms`]): random
//!   placement, busiest-fit, cosine similarity, and delta perp-distance.

#![forbid(unsafe_code)]

pub mod algorithms;
pub mod cache;
pub mod packing;
pub mod reuse;
pub mod server;

pub use algorithms::PlacementAlgorithm;
pub use cache::{
    cache_hit_rate, cache_hit_rate_recorded, capacity_for_hit_rate, hit_rate_curve,
    PlacementCache,
};
pub use packing::{
    pack_trace, pack_trace_recorded, FfarResult, PackingConfig, SchedulingTuple,
};
pub use reuse::{reuse_distance_histogram, ReuseHistogram};
pub use server::Server;
