//! Placement-rule caching (the Protean design motif behind §6.2's reuse
//! distance).
//!
//! Protean caches placement evaluation logic per VM type and reuses it
//! across requests; the cache's hit rate — and therefore the memory
//! footprint needed for a target hit rate — is governed by the workload's
//! reuse-distance distribution. This module simulates an LRU cache of
//! placement rules keyed by flavor, so generated traces can be judged by
//! whether they predict the cache behaviour of real traces.

use obsv::{Event, NullRecorder, Recorder, SchedEvent};
use std::collections::BTreeMap;
use trace::Trace;

/// Sentinel "no slot" link in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// One resident cache entry: its key plus its neighbours in recency order.
#[derive(Debug, Clone)]
struct Slot {
    key: u16,
    /// Towards the MRU end (`NIL` for the head).
    prev: usize,
    /// Towards the LRU end (`NIL` for the tail).
    next: usize,
}

/// An LRU cache of placement rules keyed by flavor id.
///
/// Recency order lives in an intrusive doubly-linked list threaded through
/// a slot arena, with a key → slot map on the side, so [`access`] is O(1)
/// regardless of capacity (the original implementation scanned a
/// recency-ordered `Vec`, making every access O(capacity) — ruinous for
/// the multi-thousand-entry sweeps of §6.2).
///
/// [`access`]: PlacementCache::access
#[derive(Debug, Clone)]
pub struct PlacementCache {
    capacity: usize,
    /// Slot arena; never shrinks, holds at most `capacity` slots.
    slots: Vec<Slot>,
    /// Which slot each resident key lives in.
    index: BTreeMap<u16, usize>,
    /// Most recently used slot (`NIL` when empty).
    head: usize,
    /// Least recently used slot (`NIL` when empty).
    tail: usize,
    hits: u64,
    misses: u64,
}

impl PlacementCache {
    /// Creates an empty cache holding up to `capacity` flavor rules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            slots: Vec::new(),
            index: BTreeMap::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links slot `i` in as the most recently used entry.
    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    /// Processes one request; returns true on a cache hit.
    pub fn access(&mut self, flavor: u16) -> bool {
        if let Some(&i) = self.index.get(&flavor) {
            // Move to front (most recently used).
            self.detach(i);
            self.push_front(i);
            self.hits += 1;
            true
        } else {
            let i = if self.slots.len() == self.capacity {
                // Evict the least recently used entry and reuse its slot.
                let lru = self.tail;
                self.detach(lru);
                self.index.remove(&self.slots[lru].key);
                self.slots[lru].key = flavor;
                lru
            } else {
                self.slots.push(Slot {
                    key: flavor,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            };
            self.push_front(i);
            self.index.insert(flavor, i);
            self.misses += 1;
            false
        }
    }

    /// Requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that required a fresh placement evaluation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Hit rate of an LRU placement cache of the given capacity over a trace's
/// request sequence.
pub fn cache_hit_rate(trace: &Trace, capacity: usize) -> f64 {
    cache_hit_rate_recorded(trace, capacity, &NullRecorder)
}

/// [`cache_hit_rate`] with telemetry: emits one [`SchedEvent`] carrying
/// the sweep's hit/miss counts.
pub fn cache_hit_rate_recorded(trace: &Trace, capacity: usize, rec: &dyn Recorder) -> f64 {
    let mut cache = PlacementCache::new(capacity);
    for job in &trace.jobs {
        cache.access(job.flavor.0);
    }
    rec.record(Event::Sched(SchedEvent {
        placements: 0,
        rejections: 0,
        ffar_evals: 0,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    }));
    cache.hit_rate()
}

/// Hit rates for a sweep of cache capacities.
pub fn hit_rate_curve(trace: &Trace, capacities: &[usize]) -> Vec<f64> {
    capacities.iter().map(|&c| cache_hit_rate(trace, c)).collect()
}

/// The smallest capacity from `capacities` reaching `target` hit rate, if
/// any (capacities are tried in the given order).
pub fn capacity_for_hit_rate(trace: &Trace, capacities: &[usize], target: f64) -> Option<usize> {
    capacities
        .iter()
        .copied()
        .find(|&c| cache_hit_rate(trace, c) >= target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::{FlavorCatalog, FlavorId, Job, UserId};

    fn trace_of(flavors: &[u16]) -> Trace {
        let jobs = flavors
            .iter()
            .enumerate()
            .map(|(i, &f)| Job {
                start: i as u64,
                end: None,
                flavor: FlavorId(f),
                user: UserId(0),
            })
            .collect();
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn repeated_flavor_always_hits_after_first() {
        let t = trace_of(&[3; 100]);
        let rate = cache_hit_rate(&t, 1);
        assert!((rate - 0.99).abs() < 1e-12);
    }

    #[test]
    fn distinct_flavors_beyond_capacity_always_miss() {
        // Cycle through 4 flavors with capacity 2: LRU always evicts the one
        // coming next.
        let seq: Vec<u16> = (0..40).map(|i| (i % 4) as u16).collect();
        let t = trace_of(&seq);
        assert_eq!(cache_hit_rate(&t, 2), 0.0);
        // Capacity 4 holds them all: only the 4 cold misses.
        assert!((cache_hit_rate(&t, 4) - 36.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        let seq: Vec<u16> = (0..200).map(|i| ((i * 7 + i / 13) % 9) as u16).collect();
        let t = trace_of(&seq);
        let caps = [1, 2, 4, 8, 16];
        let curve = hit_rate_curve(&t, &caps);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "curve {curve:?}");
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = PlacementCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 now MRU
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
    }

    #[test]
    fn capacity_for_target() {
        let seq: Vec<u16> = (0..100).map(|i| (i % 3) as u16).collect();
        let t = trace_of(&seq);
        // With capacity 3 almost every access hits.
        assert_eq!(capacity_for_hit_rate(&t, &[1, 2, 3, 4], 0.9), Some(3));
        assert_eq!(capacity_for_hit_rate(&t, &[1], 0.9), None);
    }

    #[test]
    fn recorded_sweep_emits_hit_and_miss_counts() {
        let t = trace_of(&[0, 0, 1, 0]);
        let rec = obsv::MemoryRecorder::new();
        let rate = cache_hit_rate_recorded(&t, 4, &rec);
        assert!((rate - 0.5).abs() < 1e-12);
        match &rec.events()[..] {
            [obsv::Event::Sched(e)] => {
                assert_eq!(e.cache_hits, 2);
                assert_eq!(e.cache_misses, 2);
                assert_eq!(e.placements, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The original O(capacity) implementation, kept verbatim as the
    /// semantic reference for the linked-list rewrite.
    struct VecLru {
        capacity: usize,
        entries: Vec<u16>,
    }

    impl VecLru {
        fn new(capacity: usize) -> Self {
            Self {
                capacity,
                entries: Vec::new(),
            }
        }

        fn access(&mut self, flavor: u16) -> bool {
            if let Some(pos) = self.entries.iter().position(|&f| f == flavor) {
                self.entries.remove(pos);
                self.entries.insert(0, flavor);
                true
            } else {
                if self.entries.len() == self.capacity {
                    self.entries.pop();
                }
                self.entries.insert(0, flavor);
                false
            }
        }
    }

    /// Deterministic request stream with skewed reuse (mixes a hot set
    /// with a long tail so hits, misses, and evictions all occur).
    fn seeded_requests(n: usize, universe: u16, seed: u64) -> Vec<u16> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                // splitmix64 step
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                if z % 4 != 0 {
                    (z % 8) as u16 // hot set
                } else {
                    (z % universe as u64) as u16 // long tail
                }
            })
            .collect()
    }

    #[test]
    fn matches_reference_implementation_access_for_access() {
        for (capacity, universe, seed) in
            [(1, 16, 1u64), (2, 16, 2), (7, 64, 3), (64, 512, 4), (100, 80, 5)]
        {
            let mut fast = PlacementCache::new(capacity);
            let mut slow = VecLru::new(capacity);
            for (i, &f) in seeded_requests(20_000, universe, seed).iter().enumerate() {
                assert_eq!(
                    fast.access(f),
                    slow.access(f),
                    "divergence at access {i} (flavor {f}, capacity {capacity})"
                );
            }
            // The resident sets must agree too, in recency order.
            let mut order = Vec::new();
            let mut i = fast.head;
            while i != NIL {
                order.push(fast.slots[i].key);
                i = fast.slots[i].next;
            }
            assert_eq!(order, slow.entries, "capacity {capacity}");
        }
    }

    #[test]
    fn counters_track_accesses() {
        let mut c = PlacementCache::new(4);
        for f in [0u16, 0, 1, 0] {
            c.access(f);
        }
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
