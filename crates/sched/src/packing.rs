//! Packing simulation and the first-failure allocation ratio (FFAR).
//!
//! Following §6.2: pick a scheduling tuple (start point, server count,
//! server capacities, placement algorithm), pack the trace's arrivals (and
//! optionally departures) onto the servers in event order, and measure the
//! proportion of allocated capacity at the first placement failure.

use crate::algorithms::PlacementAlgorithm;
use crate::server::Server;
use obsv::{profile, Event, NullRecorder, Recorder, SchedEvent};
use rand::Rng;
use serde::{Deserialize, Serialize};
use trace::Trace;

/// One randomly sampled packing experiment (§6.2's "scheduling tuple").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulingTuple {
    /// Index of the first arrival to pack.
    pub start_point: usize,
    /// Number of servers.
    pub n_servers: usize,
    /// Per-server CPU capacity.
    pub cpu_cap: f64,
    /// Per-server memory capacity.
    pub mem_cap: f64,
    /// Placement algorithm.
    pub algorithm: PlacementAlgorithm,
}

impl SchedulingTuple {
    /// Samples a tuple from the ranges used by the experiments.
    ///
    /// The capacity ranges are chosen (per the paper) so CPU and memory are
    /// each the limiting resource in roughly half of packings: memory-per-
    /// core between 2 and 6 GiB against a workload mix averaging ~4.
    pub fn sample(max_start: usize, rng: &mut impl Rng) -> Self {
        Self {
            start_point: if max_start == 0 {
                0
            } else {
                rng.gen_range(0..max_start)
            },
            n_servers: rng.gen_range(20..=60),
            cpu_cap: [32.0, 48.0, 64.0][rng.gen_range(0..3)],
            mem_cap: [64.0, 128.0, 192.0, 256.0][rng.gen_range(0..4)],
            algorithm: PlacementAlgorithm::ALL[rng.gen_range(0..4)],
        }
    }

    /// Samples a tuple whose servers can host every flavor of `catalog`
    /// (capacities are multiples of the largest per-dimension demand).
    ///
    /// Without this, a catalog whose largest flavor exceeds the server
    /// capacity makes every packing fail at its first such request,
    /// collapsing the FFAR distribution.
    pub fn sample_for(
        catalog: &trace::FlavorCatalog,
        max_start: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let max_cpu = catalog.iter().map(|(_, f)| f.vcpus).fold(1.0f64, f64::max);
        let max_mem = catalog
            .iter()
            .map(|(_, f)| f.memory_gb)
            .fold(1.0f64, f64::max);
        Self {
            start_point: if max_start == 0 {
                0
            } else {
                rng.gen_range(0..max_start)
            },
            n_servers: rng.gen_range(20..=60),
            cpu_cap: max_cpu * [4.0, 6.0, 8.0][rng.gen_range(0..3)],
            mem_cap: max_mem * [1.25, 2.0, 3.0, 4.0][rng.gen_range(0..4)],
            algorithm: PlacementAlgorithm::ALL[rng.gen_range(0..4)],
        }
    }
}

/// Outcome of one packing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FfarResult {
    /// CPU allocation ratio at first failure.
    pub cpu_ffar: f64,
    /// Memory allocation ratio at first failure.
    pub mem_ffar: f64,
    /// Jobs successfully placed before the failure.
    pub placed: usize,
    /// True if the whole trace was packed without failure (FFAR is then the
    /// final allocation ratio, a lower bound).
    pub exhausted: bool,
}

impl FfarResult {
    /// FFAR of the limiting resource (the more-allocated one at failure).
    pub fn limiting(&self) -> f64 {
        self.cpu_ffar.max(self.mem_ffar)
    }
}

/// Configuration for a packing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackingConfig {
    /// Process departures (freeing capacity) as well as arrivals.
    pub with_departures: bool,
}

impl Default for PackingConfig {
    fn default() -> Self {
        Self {
            with_departures: true,
        }
    }
}

/// Packs a trace per one scheduling tuple and reports the FFAR.
///
/// Events are processed in time order starting at arrival `start_point`
/// (departures of placed jobs interleave naturally). The run ends at the
/// first arrival that no server can host, or when arrivals are exhausted.
pub fn pack_trace(
    trace: &Trace,
    tuple: SchedulingTuple,
    config: PackingConfig,
    rng: &mut impl Rng,
) -> FfarResult {
    pack_trace_recorded(trace, tuple, config, rng, &NullRecorder)
}

/// [`pack_trace`] with telemetry: emits one [`SchedEvent`] per run,
/// counting placements, the rejection that ended the run (if any), and the
/// FFAR evaluation itself.
pub fn pack_trace_recorded(
    trace: &Trace,
    tuple: SchedulingTuple,
    config: PackingConfig,
    rng: &mut impl Rng,
    rec: &dyn Recorder,
) -> FfarResult {
    let _prof = profile::span("pack");
    let mut servers: Vec<Server> = (0..tuple.n_servers)
        .map(|_| Server::new(tuple.cpu_cap, tuple.mem_cap))
        .collect();

    // Pending departures: (end_time, server, cpu, mem), kept as a min-heap.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut departures: BinaryHeap<Reverse<(u64, usize, u64, u64)>> = BinaryHeap::new();

    let mut placed = 0usize;
    let mut failed = false;
    for job in trace.jobs.iter().skip(tuple.start_point) {
        // Release everything that departed before this arrival.
        if config.with_departures {
            while let Some(&Reverse((end, server, cpu_m, mem_m))) = departures.peek() {
                if end > job.start {
                    break;
                }
                departures.pop();
                servers[server].release(cpu_m as f64 / 1e6, mem_m as f64 / 1e6);
            }
        }
        let flavor = trace.catalog.get(job.flavor);
        match tuple
            .algorithm
            .choose(&servers, flavor.vcpus, flavor.memory_gb, rng)
        {
            Some(i) => {
                servers[i].place(flavor.vcpus, flavor.memory_gb);
                placed += 1;
                if config.with_departures {
                    if let Some(end) = job.end {
                        // Store resources as fixed-point µ-units so the heap
                        // key is fully ordered.
                        departures.push(Reverse((
                            end,
                            i,
                            (flavor.vcpus * 1e6) as u64,
                            (flavor.memory_gb * 1e6) as u64,
                        )));
                    }
                }
            }
            None => {
                failed = true;
                break;
            }
        }
    }

    rec.record(Event::Sched(SchedEvent {
        placements: placed as u64,
        rejections: failed as u64,
        ffar_evals: 1,
        cache_hits: 0,
        cache_misses: 0,
    }));

    let total_cpu: f64 = servers.iter().map(|s| s.cpu_cap).sum();
    let total_mem: f64 = servers.iter().map(|s| s.mem_cap).sum();
    let used_cpu: f64 = servers.iter().map(|s| s.cpu_used).sum();
    let used_mem: f64 = servers.iter().map(|s| s.mem_used).sum();
    FfarResult {
        cpu_ffar: used_cpu / total_cpu,
        mem_ffar: used_mem / total_mem,
        placed,
        exhausted: !failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use trace::{FlavorCatalog, FlavorId, Job, UserId};

    /// A trace of identical 1-vCPU/0.75-GiB jobs (azure16 flavor 0).
    fn uniform_trace(n: usize, lifetime: u64) -> Trace {
        let jobs = (0..n)
            .map(|i| Job {
                start: (i as u64) * 300,
                end: Some((i as u64) * 300 + lifetime),
                flavor: FlavorId(0),
                user: UserId(0),
            })
            .collect();
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    fn tuple(n_servers: usize, alg: PlacementAlgorithm) -> SchedulingTuple {
        SchedulingTuple {
            start_point: 0,
            n_servers,
            cpu_cap: 4.0,
            mem_cap: 16.0,
            algorithm: alg,
        }
    }

    #[test]
    fn homogeneous_jobs_fill_to_cpu_limit() {
        // 1 server x 4 vCPU; 1-vCPU jobs that never depart: 4 fit, 5th fails.
        let t = uniform_trace(10, 1_000_000_000);
        let mut rng = StdRng::seed_from_u64(1);
        let r = pack_trace(
            &t,
            tuple(1, PlacementAlgorithm::BusiestFit),
            PackingConfig {
                with_departures: false,
            },
            &mut rng,
        );
        assert!(!r.exhausted);
        assert_eq!(r.placed, 4);
        assert!((r.cpu_ffar - 1.0).abs() < 1e-9);
        assert!(r.mem_ffar < 0.5);
        assert_eq!(r.limiting(), r.cpu_ffar);
    }

    #[test]
    fn departures_free_capacity() {
        // Short-lived jobs: with departures everything packs.
        let t = uniform_trace(50, 300);
        let mut rng = StdRng::seed_from_u64(2);
        let r = pack_trace(
            &t,
            tuple(1, PlacementAlgorithm::BusiestFit),
            PackingConfig {
                with_departures: true,
            },
            &mut rng,
        );
        assert!(r.exhausted, "placed {} of 50", r.placed);
        assert_eq!(r.placed, 50);
    }

    #[test]
    fn more_servers_pack_more() {
        let t = uniform_trace(100, 1_000_000_000);
        let mut rng = StdRng::seed_from_u64(3);
        let small = pack_trace(
            &t,
            tuple(2, PlacementAlgorithm::Random),
            PackingConfig {
                with_departures: false,
            },
            &mut rng,
        );
        let large = pack_trace(
            &t,
            tuple(10, PlacementAlgorithm::Random),
            PackingConfig {
                with_departures: false,
            },
            &mut rng,
        );
        assert!(large.placed > small.placed);
    }

    #[test]
    fn start_point_skips_prefix() {
        let t = uniform_trace(10, 1_000_000_000);
        let mut rng = StdRng::seed_from_u64(4);
        let mut tu = tuple(100, PlacementAlgorithm::Random);
        tu.start_point = 7;
        let r = pack_trace(&t, tu, PackingConfig::default(), &mut rng);
        assert_eq!(r.placed, 3);
        assert!(r.exhausted);
    }

    #[test]
    fn recorded_packing_emits_sched_event() {
        let t = uniform_trace(10, 1_000_000_000);
        let mut rng = StdRng::seed_from_u64(6);
        let rec = obsv::MemoryRecorder::new();
        let r = pack_trace_recorded(
            &t,
            tuple(1, PlacementAlgorithm::BusiestFit),
            PackingConfig {
                with_departures: false,
            },
            &mut rng,
            &rec,
        );
        let events = rec.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            obsv::Event::Sched(e) => {
                assert_eq!(e.placements, r.placed as u64);
                assert_eq!(e.rejections, 1);
                assert_eq!(e.ffar_evals, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn catalog_aware_tuples_fit_every_flavor() {
        use trace::FlavorCatalog;
        let mut rng = StdRng::seed_from_u64(9);
        for catalog in [FlavorCatalog::azure16(), FlavorCatalog::synthetic(259)] {
            for _ in 0..50 {
                let t = SchedulingTuple::sample_for(&catalog, 100, &mut rng);
                for (_, f) in catalog.iter() {
                    assert!(t.cpu_cap >= f.vcpus, "{} < {}", t.cpu_cap, f.vcpus);
                    assert!(t.mem_cap >= f.memory_gb);
                }
            }
        }
    }

    #[test]
    fn sampled_tuples_are_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let t = SchedulingTuple::sample(1000, &mut rng);
            assert!(t.start_point < 1000);
            assert!((20..=60).contains(&t.n_servers));
            assert!(t.cpu_cap >= 32.0 && t.mem_cap >= 64.0);
        }
    }
}
