//! Placement algorithms (§6.2's four packing policies).

use crate::server::Server;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The placement algorithms compared in the paper's packing experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementAlgorithm {
    /// Uniformly random feasible server.
    Random,
    /// The feasible server with the highest combined utilization (packs
    /// tightly; the classic "busiest fit").
    BusiestFit,
    /// The feasible server whose *remaining capacity* vector is most
    /// cosine-aligned with the demand vector (Grandl et al.'s
    /// multi-resource alignment heuristic).
    CosineSimilarity,
    /// The feasible server minimizing the post-placement perpendicular
    /// distance of its utilization point from the balanced-use diagonal
    /// (the delta perp-distance rule from Fundy).
    DeltaPerpDistance,
}

impl PlacementAlgorithm {
    /// All four algorithms, for experiment sweeps.
    pub const ALL: [PlacementAlgorithm; 4] = [
        PlacementAlgorithm::Random,
        PlacementAlgorithm::BusiestFit,
        PlacementAlgorithm::CosineSimilarity,
        PlacementAlgorithm::DeltaPerpDistance,
    ];

    /// Chooses a server for a `(cpu, mem)` demand, or `None` if nothing
    /// fits (a scheduling failure).
    pub fn choose(
        &self,
        servers: &[Server],
        cpu: f64,
        mem: f64,
        rng: &mut impl Rng,
    ) -> Option<usize> {
        let feasible: Vec<usize> = (0..servers.len())
            .filter(|&i| servers[i].fits(cpu, mem))
            .collect();
        if feasible.is_empty() {
            return None;
        }
        match self {
            PlacementAlgorithm::Random => Some(feasible[rng.gen_range(0..feasible.len())]),
            PlacementAlgorithm::BusiestFit => feasible.into_iter().max_by(|&a, &b| {
                let ua = servers[a].cpu_util() + servers[a].mem_util();
                let ub = servers[b].cpu_util() + servers[b].mem_util();
                ua.total_cmp(&ub)
            }),
            PlacementAlgorithm::CosineSimilarity => feasible.into_iter().max_by(|&a, &b| {
                let ca = cosine(cpu, mem, servers[a].cpu_free(), servers[a].mem_free());
                let cb = cosine(cpu, mem, servers[b].cpu_free(), servers[b].mem_free());
                ca.total_cmp(&cb)
            }),
            PlacementAlgorithm::DeltaPerpDistance => feasible.into_iter().min_by(|&a, &b| {
                let da = perp_after(&servers[a], cpu, mem);
                let db = perp_after(&servers[b], cpu, mem);
                da.total_cmp(&db)
            }),
        }
    }
}

/// Cosine similarity between the demand and free-capacity vectors.
fn cosine(d_cpu: f64, d_mem: f64, f_cpu: f64, f_mem: f64) -> f64 {
    let dot = d_cpu * f_cpu + d_mem * f_mem;
    let nd = (d_cpu * d_cpu + d_mem * d_mem).sqrt();
    let nf = (f_cpu * f_cpu + f_mem * f_mem).sqrt();
    // lint:allow(float-eq): exact-zero norm guard before division; zero norms are exact
    if nd == 0.0 || nf == 0.0 {
        0.0
    } else {
        dot / (nd * nf)
    }
}

/// Perpendicular distance of the utilization point from the `u_cpu = u_mem`
/// diagonal after hypothetically placing the demand.
fn perp_after(s: &Server, cpu: f64, mem: f64) -> f64 {
    let u_cpu = (s.cpu_used + cpu) / s.cpu_cap;
    let u_mem = (s.mem_used + mem) / s.mem_cap;
    (u_cpu - u_mem).abs() / std::f64::consts::SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn returns_none_when_nothing_fits() {
        let servers = vec![Server::new(2.0, 2.0)];
        for alg in PlacementAlgorithm::ALL {
            assert_eq!(alg.choose(&servers, 4.0, 1.0, &mut rng()), None);
        }
    }

    #[test]
    fn busiest_fit_prefers_fuller_server() {
        let mut a = Server::new(8.0, 8.0);
        a.place(6.0, 6.0);
        let b = Server::new(8.0, 8.0);
        let servers = vec![a, b];
        assert_eq!(
            PlacementAlgorithm::BusiestFit.choose(&servers, 1.0, 1.0, &mut rng()),
            Some(0)
        );
    }

    #[test]
    fn cosine_prefers_aligned_capacity() {
        // Demand is CPU-heavy; server 0 has CPU-heavy free capacity.
        let mut a = Server::new(16.0, 16.0);
        a.place(0.0, 12.0); // free: (16, 4) — CPU heavy
        let mut b = Server::new(16.0, 16.0);
        b.place(12.0, 0.0); // free: (4, 16) — memory heavy
        let servers = vec![a, b];
        assert_eq!(
            PlacementAlgorithm::CosineSimilarity.choose(&servers, 4.0, 1.0, &mut rng()),
            Some(0)
        );
    }

    #[test]
    fn perp_distance_balances_dimensions() {
        // Server 0 is CPU-loaded; placing a memory-heavy VM there balances it.
        let mut a = Server::new(16.0, 16.0);
        a.place(8.0, 0.0);
        let mut b = Server::new(16.0, 16.0);
        b.place(0.0, 8.0); // memory-loaded: adding more memory unbalances
        let servers = vec![a, b];
        assert_eq!(
            PlacementAlgorithm::DeltaPerpDistance.choose(&servers, 0.0 + 1.0, 8.0, &mut rng()),
            Some(0)
        );
    }

    #[test]
    fn random_only_chooses_feasible() {
        let mut full = Server::new(2.0, 2.0);
        full.place(2.0, 2.0);
        let servers = vec![full, Server::new(8.0, 8.0)];
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(
                PlacementAlgorithm::Random.choose(&servers, 1.0, 1.0, &mut r),
                Some(1)
            );
        }
    }
}
