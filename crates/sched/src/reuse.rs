//! Reuse distance (§6.2, after Hadary et al.'s Protean).
//!
//! For each request of VM type `v`, the reuse distance is the number of
//! *unique* VM types requested since the last request of `v`. A
//! concentration of small distances justifies caching placement decisions.

use serde::{Deserialize, Serialize};
use trace::Trace;

/// Histogram of reuse distances with buckets `0, 1, 2, 3, 4, 5, 6+`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    /// Counts for distances 0..=5; index 6 is the `6+` bucket.
    pub counts: [u64; 7],
    /// Requests scored (first occurrences of a flavor are skipped).
    pub total: u64,
}

impl ReuseHistogram {
    /// Bucket proportions (sums to 1 when `total > 0`).
    pub fn proportions(&self) -> [f64; 7] {
        let mut out = [0.0; 7];
        if self.total > 0 {
            for (o, &c) in out.iter_mut().zip(&self.counts) {
                *o = c as f64 / self.total as f64;
            }
        }
        out
    }

    /// Mean reuse distance, counting the `6+` bucket as 6 (a lower bound).
    pub fn mean_clamped(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().zip(0u64..).map(|(&c, d)| c * d).sum();
        sum as f64 / self.total as f64
    }
}

/// Computes the reuse-distance histogram over a trace's request order.
pub fn reuse_distance_histogram(trace: &Trace) -> ReuseHistogram {
    let k = trace.catalog.len();
    // For each flavor, the set of unique flavors seen since its last request,
    // tracked as a bitset over flavors for O(K/64) merges.
    let words = k.div_ceil(64);
    let mut since: Vec<Vec<u64>> = vec![vec![0u64; words]; k];
    let mut seen: Vec<bool> = vec![false; k];
    let mut counts = [0u64; 7];
    let mut total = 0u64;

    for job in &trace.jobs {
        let f = job.flavor.0 as usize;
        if seen[f] {
            let distance: u32 = since[f].iter().map(|w| w.count_ones()).sum();
            let bucket = (distance as usize).min(6);
            counts[bucket] += 1;
            total += 1;
        }
        seen[f] = true;
        // Reset f's tracker; add f to every other flavor's tracker.
        since[f].iter_mut().for_each(|w| *w = 0);
        let (word, bit) = (f / 64, f % 64);
        for (g, tracker) in since.iter_mut().enumerate() {
            if g != f {
                tracker[word] |= 1u64 << bit;
            }
        }
    }
    ReuseHistogram { counts, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::{FlavorCatalog, FlavorId, Job, UserId};

    fn trace_of(flavors: &[u16]) -> Trace {
        let jobs = flavors
            .iter()
            .enumerate()
            .map(|(i, &f)| Job {
                start: i as u64,
                end: None,
                flavor: FlavorId(f),
                user: UserId(0),
            })
            .collect();
        Trace::new(jobs, FlavorCatalog::azure16())
    }

    #[test]
    fn repeats_have_distance_zero() {
        let h = reuse_distance_histogram(&trace_of(&[3, 3, 3, 3]));
        assert_eq!(h.total, 3);
        assert_eq!(h.counts[0], 3);
        assert_eq!(h.mean_clamped(), 0.0);
    }

    #[test]
    fn unique_flavors_between_repeats_counted() {
        // 1 ... 2 3 ... 1: distance for the second 1 is 2 (saw {2, 3}).
        let h = reuse_distance_histogram(&trace_of(&[1, 2, 3, 1]));
        // Scored: second 1 -> distance 2. (2 and 3 are first occurrences.)
        assert_eq!(h.total, 1);
        assert_eq!(h.counts[2], 1);
    }

    #[test]
    fn duplicates_between_repeats_count_once() {
        // 1 2 2 2 1: unique types since last 1 = {2} -> distance 1.
        let h = reuse_distance_histogram(&trace_of(&[1, 2, 2, 2, 1]));
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[0], 2); // the repeated 2s
    }

    #[test]
    fn first_occurrences_not_scored() {
        let h = reuse_distance_histogram(&trace_of(&[0, 1, 2, 3, 4]));
        assert_eq!(h.total, 0);
        assert_eq!(h.proportions(), [0.0; 7]);
    }

    #[test]
    fn large_distances_clamp_to_six_plus() {
        // 0, then 7 other flavors, then 0 again: distance 7 -> bucket 6+.
        let seq: Vec<u16> = vec![0, 1, 2, 3, 4, 5, 6, 7, 0];
        let h = reuse_distance_histogram(&trace_of(&seq));
        assert_eq!(h.counts[6], 1);
    }

    #[test]
    fn proportions_sum_to_one() {
        let h = reuse_distance_histogram(&trace_of(&[1, 2, 1, 3, 2, 1, 4, 4, 1]));
        let s: f64 = h.proportions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }
}
