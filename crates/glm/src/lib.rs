//! Generalized-linear-model substrate: Poisson regression and the discrete
//! samplers the generative pipeline needs.
//!
//! The paper's stage-1 arrival model (§2.1) is an inhomogeneous Poisson
//! regression: the number of batch arrivals in a period is Poisson with rate
//! `exp(w · x)`, where `x` encodes the period's temporal features. This
//! crate provides:
//!
//! - [`PoissonRegression`]: IRLS fitting with elastic-net regularization
//!   (ridge folded into the weighted normal equations; L1 applied as a
//!   proximal soft-threshold step), matching the statsmodels GLM the paper
//!   used plus the elastic-net penalty it describes.
//! - [`samplers`]: exact Poisson, geometric, and categorical samplers (the
//!   sanctioned crate set does not include `rand_distr`).
//! - [`DohStrategy`]: the day-of-history sampling rule of §2.1.2 — encode
//!   the last training day, or sample a day geometrically back from it.

#![forbid(unsafe_code)]

pub mod doh;
pub mod negbin;
pub mod poisson;
pub mod samplers;

pub use doh::DohStrategy;
pub use negbin::NegBinRegression;
pub use poisson::{ElasticNet, PoissonFitError, PoissonRegression};
