//! Poisson regression fit by iteratively re-weighted least squares.
//!
//! Model: `y_p ~ Poisson(mu_p)`, `mu_p = exp(w · x_p + b)`. The loss is the
//! negative log-likelihood `Σ_p mu_p − y_p log(mu_p)` (dropping the
//! `log(y!)` constant, as in the paper) plus an elastic-net penalty on `w`
//! (the intercept `b` is never penalized).

use linalg::{Cholesky, Mat};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Elastic-net penalty: `alpha * (l1_ratio * |w|_1 + (1 - l1_ratio)/2 * |w|_2^2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticNet {
    /// Overall penalty weight.
    pub alpha: f64,
    /// Mix between L1 (`1.0`) and L2 (`0.0`).
    pub l1_ratio: f64,
}

impl ElasticNet {
    /// No regularization.
    pub fn none() -> Self {
        Self {
            alpha: 0.0,
            l1_ratio: 0.0,
        }
    }

    /// Pure ridge with weight `alpha`.
    pub fn ridge(alpha: f64) -> Self {
        Self {
            alpha,
            l1_ratio: 0.0,
        }
    }

    /// Penalty value for a weight vector.
    pub fn penalty(&self, w: &[f64]) -> f64 {
        let l1: f64 = w.iter().map(|x| x.abs()).sum();
        let l2: f64 = w.iter().map(|x| x * x).sum();
        self.alpha * (self.l1_ratio * l1 + 0.5 * (1.0 - self.l1_ratio) * l2)
    }
}

/// Error from [`PoissonRegression::fit`].
#[derive(Debug, Clone, PartialEq)]
pub enum PoissonFitError {
    /// Design matrix and target length disagree.
    ShapeMismatch {
        /// Rows in the design matrix.
        rows: usize,
        /// Entries in the target vector.
        targets: usize,
    },
    /// A target count was negative or non-finite.
    InvalidTarget {
        /// Index of the offending target.
        index: usize,
    },
    /// IRLS failed to produce a solvable system (degenerate design).
    Singular,
}

impl fmt::Display for PoissonFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoissonFitError::ShapeMismatch { rows, targets } => {
                write!(f, "poisson fit: {rows} rows vs {targets} targets")
            }
            PoissonFitError::InvalidTarget { index } => {
                write!(f, "poisson fit: invalid target at index {index}")
            }
            PoissonFitError::Singular => write!(f, "poisson fit: singular IRLS system"),
        }
    }
}

impl std::error::Error for PoissonFitError {}

/// A fitted Poisson regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl PoissonRegression {
    /// Fits by IRLS with an elastic-net penalty.
    ///
    /// Each IRLS iteration solves the ridge-regularized weighted normal
    /// equations via Cholesky, then applies a proximal soft-threshold step
    /// for the L1 part. `max_iter` iterations at most; stops early when the
    /// coefficient change drops below `tol` (infinity norm).
    ///
    /// Predicted rates are clamped to `[1e-10, 1e10]` inside the algorithm
    /// for numerical safety.
    pub fn fit(
        x: &Mat,
        y: &[f64],
        penalty: ElasticNet,
        max_iter: usize,
        tol: f64,
    ) -> Result<Self, PoissonFitError> {
        let (n, d) = x.shape();
        if y.len() != n {
            return Err(PoissonFitError::ShapeMismatch {
                rows: n,
                targets: y.len(),
            });
        }
        for (i, &v) in y.iter().enumerate() {
            if v < 0.0 || !v.is_finite() {
                return Err(PoissonFitError::InvalidTarget { index: i });
            }
        }

        // Augment with an intercept column at the end (unpenalized).
        let dim = d + 1;
        let mut w = vec![0.0; dim];
        // Warm-start the intercept at log(mean(y)).
        let mean_y = (y.iter().sum::<f64>() / n.max(1) as f64).max(1e-4);
        w[d] = mean_y.ln();

        let ridge = penalty.alpha * (1.0 - penalty.l1_ratio);
        let l1 = penalty.alpha * penalty.l1_ratio;

        for _ in 0..max_iter {
            // mu_i = exp(eta_i), eta = X w + b.
            let mut eta = vec![0.0; n];
            for i in 0..n {
                let row = x.row(i);
                let mut e = w[d];
                for (j, &v) in row.iter().enumerate() {
                    e += w[j] * v;
                }
                eta[i] = e;
            }
            let mu: Vec<f64> = eta.iter().map(|&e| e.exp().clamp(1e-10, 1e10)).collect();

            // Working response z_i = eta_i + (y_i - mu_i) / mu_i, weight mu_i.
            // Normal equations: (X~^T W X~ + ridge I') w = X~^T W z, where X~
            // includes the intercept column and I' skips the intercept.
            let mut a = Mat::zeros(dim, dim);
            let mut b = vec![0.0; dim];
            for i in 0..n {
                let wi = mu[i];
                let zi = eta[i] + (y[i] - mu[i]) / mu[i];
                let row = x.row(i);
                for j in 0..dim {
                    let xj = if j == d { 1.0 } else { row[j] };
                    // lint:allow(float-eq): exact-zero sparsity skip; skipping zero terms is exact
                    if xj == 0.0 {
                        continue;
                    }
                    b[j] += wi * xj * zi;
                    for k in j..dim {
                        let xk = if k == d { 1.0 } else { row[k] };
                        // lint:allow(float-eq): exact-zero sparsity skip; skipping zero terms is exact
                        if xk != 0.0 {
                            a[(j, k)] += wi * xj * xk;
                        }
                    }
                }
            }
            // Mirror the upper triangle and add ridge (not on intercept).
            for j in 0..dim {
                for k in (j + 1)..dim {
                    a[(k, j)] = a[(j, k)];
                }
            }
            for j in 0..d {
                a[(j, j)] += ridge.max(1e-8);
            }
            a[(d, d)] += 1e-8;

            let chol = Cholesky::factor(&a).map_err(|_| PoissonFitError::Singular)?;
            let mut w_new = chol.solve(&b).map_err(|_| PoissonFitError::Singular)?;

            // Proximal step for the L1 part (soft threshold, scaled by the
            // corresponding curvature diagonal; intercept untouched).
            if l1 > 0.0 {
                for (j, wj) in w_new.iter_mut().enumerate().take(d) {
                    let scale = a[(j, j)].max(1e-8);
                    let thresh = l1 / scale;
                    *wj = if *wj > thresh {
                        *wj - thresh
                    } else if *wj < -thresh {
                        *wj + thresh
                    } else {
                        0.0
                    };
                }
            }

            let delta = w
                .iter()
                .zip(&w_new)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            w = w_new;
            if delta < tol {
                break;
            }
        }

        let intercept = w[d];
        w.truncate(d);
        Ok(Self {
            weights: w,
            intercept,
        })
    }

    /// Predicted rate `mu = exp(w · x + b)` for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != weights.len()`.
    pub fn rate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature length mismatch");
        let eta: f64 = self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        eta.exp()
    }

    /// Mean negative log-likelihood (per observation, dropping `log(y!)`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn nll(&self, x: &Mat, y: &[f64]) -> f64 {
        assert_eq!(x.rows(), y.len(), "shape mismatch");
        let mut total = 0.0;
        for i in 0..x.rows() {
            let mu = self.rate(x.row(i)).max(1e-10);
            total += mu - y[i] * mu.ln();
        }
        total / y.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a dataset where y ~ Poisson(exp(1.0 + 0.5 x1 - 0.25 x2)),
    /// using deterministic quasi-random draws.
    fn synthetic(n: usize) -> (Mat, Vec<f64>) {
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as f64 / u64::MAX as f64
        };
        let x = Mat::from_fn(n, 2, |_, _| next() * 2.0 - 1.0);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let mu = (1.0 + 0.5 * x[(i, 0)] - 0.25 * x[(i, 1)]).exp();
            // Deterministic Poisson draw via inversion.
            let u = next();
            let mut k = 0u64;
            let mut p = (-mu).exp();
            let mut cdf = p;
            while u > cdf && k < 1000 {
                k += 1;
                p *= mu / k as f64;
                cdf += p;
            }
            y.push(k as f64);
        }
        (x, y)
    }

    #[test]
    fn recovers_known_coefficients() {
        let (x, y) = synthetic(5000);
        let m = PoissonRegression::fit(&x, &y, ElasticNet::none(), 50, 1e-8).unwrap();
        assert!((m.intercept - 1.0).abs() < 0.1, "intercept {}", m.intercept);
        assert!((m.weights[0] - 0.5).abs() < 0.1, "w0 {}", m.weights[0]);
        assert!((m.weights[1] + 0.25).abs() < 0.1, "w1 {}", m.weights[1]);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (x, y) = synthetic(2000);
        let free = PoissonRegression::fit(&x, &y, ElasticNet::none(), 50, 1e-8).unwrap();
        let ridged = PoissonRegression::fit(&x, &y, ElasticNet::ridge(1000.0), 50, 1e-8).unwrap();
        let norm = |m: &PoissonRegression| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&ridged) < norm(&free));
    }

    #[test]
    fn l1_produces_exact_zeros_on_noise_features() {
        // Add pure-noise columns; strong L1 should zero at least one.
        let (x0, y) = synthetic(2000);
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as f64 / u64::MAX as f64
        };
        let x = Mat::from_fn(x0.rows(), 5, |r, c| {
            if c < 2 {
                x0[(r, c)]
            } else {
                next() * 2.0 - 1.0
            }
        });
        let m = PoissonRegression::fit(
            &x,
            &y,
            ElasticNet {
                alpha: 50.0,
                l1_ratio: 1.0,
            },
            100,
            1e-10,
        )
        .unwrap();
        let zeroed = m.weights[2..].iter().filter(|w| **w == 0.0).count();
        assert!(zeroed >= 1, "weights: {:?}", m.weights);
    }

    #[test]
    fn nll_lower_for_true_model() {
        let (x, y) = synthetic(2000);
        let fitted = PoissonRegression::fit(&x, &y, ElasticNet::none(), 50, 1e-8).unwrap();
        let bad = PoissonRegression {
            weights: vec![0.0, 0.0],
            intercept: 5.0,
        };
        assert!(fitted.nll(&x, &y) < bad.nll(&x, &y));
    }

    #[test]
    fn intercept_only_matches_mean() {
        // With no informative features, rate should approach mean(y).
        let x = Mat::zeros(100, 1);
        let y: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect(); // mean 2.0
        let m = PoissonRegression::fit(&x, &y, ElasticNet::none(), 50, 1e-10).unwrap();
        assert!(
            (m.rate(&[0.0]) - 2.0).abs() < 1e-6,
            "rate {}",
            m.rate(&[0.0])
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let x = Mat::zeros(3, 1);
        let err = PoissonRegression::fit(&x, &[1.0], ElasticNet::none(), 5, 1e-6).unwrap_err();
        assert!(matches!(err, PoissonFitError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_negative_targets() {
        let x = Mat::zeros(2, 1);
        let err =
            PoissonRegression::fit(&x, &[1.0, -2.0], ElasticNet::none(), 5, 1e-6).unwrap_err();
        assert_eq!(err, PoissonFitError::InvalidTarget { index: 1 });
    }

    #[test]
    fn penalty_value() {
        let p = ElasticNet {
            alpha: 2.0,
            l1_ratio: 0.5,
        };
        // 2 * (0.5 * 3 + 0.25 * 5) = 2 * 2.75 = 5.5 for w = [1, -2].
        assert!((p.penalty(&[1.0, -2.0]) - 5.5).abs() < 1e-12);
    }
}
