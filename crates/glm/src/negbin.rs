//! Negative-binomial regression — the classic "beyond Poisson" fix for
//! overdispersed count data.
//!
//! §5.1/Figure 6 of the paper shows that a Poisson on *individual* VM
//! arrivals wildly underestimates variance (burstiness from batching). The
//! paper's remedy is to model batches instead; the standard statistical
//! remedy is a negative-binomial model (`Var = mu + alpha * mu^2`). This
//! module implements NB2 regression so the reproduction can compare both
//! remedies (see the `ext_negbin_arrivals` binary).

use crate::poisson::{ElasticNet, PoissonFitError, PoissonRegression};
use linalg::numeric::ln_gamma;
use linalg::{Cholesky, Mat};
use serde::{Deserialize, Serialize};

/// A fitted NB2 regression: `y ~ NB(mu = exp(w·x + b), alpha)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegBinRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// Dispersion: `Var = mu + alpha * mu^2` (0 recovers Poisson).
    pub alpha: f64,
}

impl NegBinRegression {
    /// Fits by alternating IRLS for the mean model with a method-of-moments
    /// update for the dispersion, warm-started from a Poisson fit.
    ///
    /// Errors mirror [`PoissonRegression::fit`].
    pub fn fit(
        x: &Mat,
        y: &[f64],
        penalty: ElasticNet,
        outer_iter: usize,
        tol: f64,
    ) -> Result<Self, PoissonFitError> {
        let poisson = PoissonRegression::fit(x, y, penalty, 30, tol)?;
        let (n, d) = x.shape();
        let mut weights = poisson.weights.clone();
        let mut intercept = poisson.intercept;
        let mut alpha = moment_alpha(&poisson, x, y).max(1e-6);

        let ridge = (penalty.alpha * (1.0 - penalty.l1_ratio)).max(1e-8);
        for _ in 0..outer_iter.max(1) {
            // IRLS with NB2 working weights w_i = mu / (1 + alpha * mu).
            let dim = d + 1;
            let mut a = Mat::zeros(dim, dim);
            let mut b = vec![0.0; dim];
            for i in 0..n {
                let row = x.row(i);
                let eta = intercept
                    + weights.iter().zip(row).map(|(w, v)| w * v).sum::<f64>();
                let mu = eta.exp().clamp(1e-10, 1e10);
                let wi = mu / (1.0 + alpha * mu);
                let zi = eta + (y[i] - mu) / mu;
                for j in 0..dim {
                    let xj = if j == d { 1.0 } else { row[j] };
                    // lint:allow(float-eq): exact-zero sparsity skip; skipping zero terms is exact
                    if xj == 0.0 {
                        continue;
                    }
                    b[j] += wi * xj * zi;
                    for k in j..dim {
                        let xk = if k == d { 1.0 } else { row[k] };
                        // lint:allow(float-eq): exact-zero sparsity skip; skipping zero terms is exact
                        if xk != 0.0 {
                            a[(j, k)] += wi * xj * xk;
                        }
                    }
                }
            }
            for j in 0..dim {
                for k in (j + 1)..dim {
                    a[(k, j)] = a[(j, k)];
                }
            }
            for j in 0..d {
                a[(j, j)] += ridge;
            }
            a[(d, d)] += 1e-8;
            let chol = Cholesky::factor(&a).map_err(|_| PoissonFitError::Singular)?;
            let sol = chol.solve(&b).map_err(|_| PoissonFitError::Singular)?;

            let delta = weights
                .iter()
                .chain(std::iter::once(&intercept))
                .zip(&sol)
                .map(|(old, new)| (old - new).abs())
                .fold(0.0f64, f64::max);
            weights.copy_from_slice(&sol[..d]);
            intercept = sol[d];

            // Method-of-moments dispersion update.
            let fit = Self {
                weights: weights.clone(),
                intercept,
                alpha,
            };
            alpha = moment_alpha_nb(&fit, x, y).max(1e-6);
            if delta < tol {
                break;
            }
        }
        Ok(Self {
            weights,
            intercept,
            alpha,
        })
    }

    /// Predicted mean for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics on feature-length mismatch.
    pub fn mean(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature length mismatch");
        (self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()).exp()
    }

    /// Mean NB2 negative log-likelihood per observation.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn nll(&self, x: &Mat, y: &[f64]) -> f64 {
        assert_eq!(x.rows(), y.len(), "shape mismatch");
        let r = 1.0 / self.alpha.max(1e-12);
        let mut total = 0.0;
        for i in 0..x.rows() {
            let mu = self.mean(x.row(i)).max(1e-10);
            let yi = y[i];
            let p = mu / (mu + r);
            total -= ln_gamma(yi + r) - ln_gamma(r) - ln_gamma(yi + 1.0)
                + yi * p.ln()
                + r * (1.0 - p).ln();
        }
        total / y.len().max(1) as f64
    }
}

/// Method-of-moments dispersion from Poisson residuals.
fn moment_alpha(model: &PoissonRegression, x: &Mat, y: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..x.rows() {
        let mu = model.rate(x.row(i)).max(1e-10);
        num += (y[i] - mu) * (y[i] - mu) - mu;
        den += mu * mu;
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Method-of-moments dispersion from NB residuals.
fn moment_alpha_nb(model: &NegBinRegression, x: &Mat, y: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..x.rows() {
        let mu = model.mean(x.row(i)).max(1e-10);
        num += (y[i] - mu) * (y[i] - mu) - mu;
        den += mu * mu;
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::sample_negative_binomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// y ~ NB(exp(0.8 + 0.6 x), alpha = 0.4).
    fn synthetic(n: usize) -> (Mat, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Mat::from_fn(n, 1, |r, _| ((r % 21) as f64 - 10.0) / 10.0);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let mu = (0.8 + 0.6 * x[(i, 0)]).exp();
                sample_negative_binomial(mu, 0.4, &mut rng) as f64
            })
            .collect();
        (x, y)
    }

    #[test]
    fn recovers_coefficients_and_dispersion() {
        let (x, y) = synthetic(8000);
        let m = NegBinRegression::fit(&x, &y, ElasticNet::none(), 20, 1e-8).unwrap();
        assert!((m.intercept - 0.8).abs() < 0.1, "intercept {}", m.intercept);
        assert!((m.weights[0] - 0.6).abs() < 0.12, "w {}", m.weights[0]);
        assert!((m.alpha - 0.4).abs() < 0.12, "alpha {}", m.alpha);
    }

    #[test]
    fn nb_nll_beats_poisson_on_overdispersed_data() {
        let (x, y) = synthetic(4000);
        let nb = NegBinRegression::fit(&x, &y, ElasticNet::none(), 20, 1e-8).unwrap();
        let pois = PoissonRegression::fit(&x, &y, ElasticNet::none(), 30, 1e-8).unwrap();
        // Compare full NB likelihood of the NB model against the NB
        // likelihood of a Poisson-limit model (alpha -> 0 surrogate).
        let pois_as_nb = NegBinRegression {
            weights: pois.weights.clone(),
            intercept: pois.intercept,
            alpha: 1e-6,
        };
        assert!(nb.nll(&x, &y) < pois_as_nb.nll(&x, &y));
    }

    #[test]
    fn alpha_near_zero_on_poisson_data() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Mat::zeros(4000, 1);
        let y: Vec<f64> = (0..4000)
            .map(|_| crate::samplers::sample_poisson(3.0, &mut rng) as f64)
            .collect();
        let m = NegBinRegression::fit(&x, &y, ElasticNet::none(), 20, 1e-8).unwrap();
        assert!(m.alpha < 0.05, "alpha {}", m.alpha);
        assert!((m.mean(&[0.0]) - 3.0).abs() < 0.15);
    }

    #[test]
    fn rejects_bad_inputs_like_poisson() {
        let x = Mat::zeros(2, 1);
        let err = NegBinRegression::fit(&x, &[1.0], ElasticNet::none(), 5, 1e-6).unwrap_err();
        assert!(matches!(err, PoissonFitError::ShapeMismatch { .. }));
    }
}
