//! Day-of-history (DOH) sampling strategies (§2.1.2).
//!
//! When generating periods beyond the training window, the DOH feature must
//! be set to *some* training day. The paper explores (1) pinning it to the
//! last training day and (2) sampling a day `k` days before the last one
//! with `k ~ Geometric(p)` — the latter makes generated futures vary "in a
//! manner similar to the past" and is the paper's default (with `p = 1/7`).

use crate::samplers::sample_geometric;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Strategy for choosing the day-of-history feature at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DohStrategy {
    /// Always encode the last day of the training history.
    LastDay,
    /// Sample `k ~ Geometric(p)` and encode `last_day - k` (clamped to 0).
    GeometricBack {
        /// Geometric success probability (the paper tunes this to `1/7`).
        p: f64,
    },
}

impl DohStrategy {
    /// The paper's default: geometric with expected look-back of 6 days.
    pub fn paper_default() -> Self {
        DohStrategy::GeometricBack { p: 1.0 / 7.0 }
    }

    /// Chooses a day given the last training day index.
    pub fn sample_day(&self, last_day: u32, rng: &mut impl Rng) -> u32 {
        match *self {
            DohStrategy::LastDay => last_day,
            DohStrategy::GeometricBack { p } => {
                let k = sample_geometric(p, rng);
                last_day.saturating_sub(k.min(u32::MAX as u64) as u32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn last_day_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(DohStrategy::LastDay.sample_day(20, &mut rng), 20);
        }
    }

    #[test]
    fn geometric_mean_lookback_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = DohStrategy::paper_default();
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| strat.sample_day(1000, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        // Expected lookback (1-p)/p = 6 days.
        assert!((mean - 994.0).abs() < 0.2, "mean day {mean}");
    }

    #[test]
    fn clamps_at_day_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = DohStrategy::GeometricBack { p: 0.01 }; // long lookbacks
        for _ in 0..200 {
            let d = strat.sample_day(2, &mut rng);
            assert!(d <= 2);
        }
    }

    #[test]
    fn sampled_days_never_exceed_last() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = DohStrategy::paper_default();
        for _ in 0..1000 {
            assert!(strat.sample_day(30, &mut rng) <= 30);
        }
    }
}
