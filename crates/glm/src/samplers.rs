//! Exact discrete samplers (Poisson, geometric, categorical).
//!
//! Implemented here because the sanctioned dependency set includes `rand`
//! but not `rand_distr`.

use rand::Rng;

/// Samples from `Poisson(mu)`.
///
/// Uses Knuth's product-of-uniforms method for small rates and a recursive
/// split (`Poisson(mu) = Poisson(mu/2) + Poisson(mu/2)`) for large rates,
/// which stays exact while bounding the work per draw at `O(30 log(mu))`.
///
/// Non-positive or non-finite rates yield 0.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mean = (0..1000).map(|_| glm::samplers::sample_poisson(4.0, &mut rng) as f64)
///     .sum::<f64>() / 1000.0;
/// assert!((mean - 4.0).abs() < 0.5);
/// ```
pub fn sample_poisson(mu: f64, rng: &mut impl Rng) -> u64 {
    if !(mu > 0.0) || !mu.is_finite() {
        return 0;
    }
    if mu > 30.0 {
        let half = mu / 2.0;
        return sample_poisson(half, rng) + sample_poisson(half, rng);
    }
    // Knuth: count multiplications of uniforms until the product < e^-mu.
    let l = (-mu).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Safety valve against pathological RNGs.
        if k > 10_000 {
            return k;
        }
    }
}

/// Samples from the geometric distribution counting failures before the
/// first success: `P(K = k) = (1-p)^k p` for `k = 0, 1, 2, …`.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
pub fn sample_geometric(p: f64, rng: &mut impl Rng) -> u64 {
    assert!(
        p > 0.0 && p <= 1.0,
        "geometric p must be in (0, 1], got {p}"
    );
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    // lint:allow(lossy-cast): u in [MIN_POSITIVE, 1) and p in (0, 1) make the ratio finite and non-negative
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Samples an index from unnormalized non-negative weights.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative/non-finite value, or
/// sums to zero.
pub fn sample_categorical(weights: &[f64], rng: &mut impl Rng) -> usize {
    assert!(!weights.is_empty(), "empty weights");
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        assert!(w >= 0.0 && w.is_finite(), "weight {i} invalid: {w}");
        total += w;
    }
    assert!(total > 0.0, "weights sum to zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples from `Gamma(shape, scale)` via Marsaglia–Tsang.
///
/// For `shape < 1`, uses the boost `Gamma(a) = Gamma(a + 1) * U^(1/a)`.
///
/// # Panics
///
/// Panics unless both parameters are positive and finite.
pub fn sample_gamma(shape: f64, scale: f64, rng: &mut impl Rng) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "gamma shape must be positive");
    assert!(scale > 0.0 && scale.is_finite(), "gamma scale must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(shape + 1.0, scale, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let x = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Samples from a negative binomial with mean `mu` and dispersion `alpha`
/// (`Var = mu + alpha * mu^2`), via the Gamma–Poisson mixture.
///
/// `alpha <= 0` degenerates to a plain Poisson draw.
pub fn sample_negative_binomial(mu: f64, alpha: f64, rng: &mut impl Rng) -> u64 {
    if !(mu > 0.0) || !mu.is_finite() {
        return 0;
    }
    if alpha <= 1e-12 {
        return sample_poisson(mu, rng);
    }
    let shape = 1.0 / alpha;
    let lambda = sample_gamma(shape, alpha * mu, rng);
    sample_poisson(lambda, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        for &mu in &[0.5, 3.0, 25.0, 120.0] {
            let n = 50_000;
            let samples: Vec<f64> = (0..n)
                .map(|_| sample_poisson(mu, &mut rng) as f64)
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let se = (mu / n as f64).sqrt();
            assert!((mean - mu).abs() < 6.0 * se + 0.02, "mu={mu}: mean={mean}");
            assert!((var - mu).abs() < mu * 0.1 + 0.05, "mu={mu}: var={var}");
        }
    }

    #[test]
    fn poisson_zero_for_invalid_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        assert_eq!(sample_poisson(-3.0, &mut rng), 0);
        assert_eq!(sample_poisson(f64::NAN, &mut rng), 0);
    }

    #[test]
    fn geometric_mean() {
        let mut rng = StdRng::seed_from_u64(43);
        let p = 1.0 / 7.0; // expected failures = (1-p)/p = 6
        let n = 100_000;
        let mean = (0..n)
            .map(|_| sample_geometric(p, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 6.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(sample_geometric(1.0, &mut rng), 0);
        }
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = StdRng::seed_from_u64(44);
        let w = [1.0, 3.0, 6.0];
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_categorical(&w, &mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = w[i] / 10.0;
            assert!((c as f64 / n as f64 - expect).abs() < 0.01, "idx {i}");
        }
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let mut rng = StdRng::seed_from_u64(45);
        for _ in 0..1000 {
            assert_ne!(sample_categorical(&[1.0, 0.0, 1.0], &mut rng), 1);
        }
    }

    #[test]
    fn gamma_moments() {
        let mut rng = StdRng::seed_from_u64(50);
        for &(shape, scale) in &[(0.5, 2.0), (2.0, 1.5), (9.0, 0.3)] {
            let n = 60_000;
            let samples: Vec<f64> =
                (0..n).map(|_| sample_gamma(shape, scale, &mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let (em, ev) = (shape * scale, shape * scale * scale);
            assert!((mean - em).abs() < em * 0.05, "shape {shape}: mean {mean} vs {em}");
            assert!((var - ev).abs() < ev * 0.15, "shape {shape}: var {var} vs {ev}");
        }
    }

    #[test]
    fn negative_binomial_is_overdispersed() {
        let mut rng = StdRng::seed_from_u64(51);
        let (mu, alpha) = (5.0, 0.5);
        let n = 60_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_negative_binomial(mu, alpha, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let ev = mu + alpha * mu * mu; // 17.5
        assert!((mean - mu).abs() < 0.15, "mean {mean}");
        assert!((var - ev).abs() < ev * 0.1, "var {var} vs {ev}");
    }

    #[test]
    fn negative_binomial_zero_alpha_is_poisson_like() {
        let mut rng = StdRng::seed_from_u64(52);
        let n = 40_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_negative_binomial(4.0, 0.0, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var - mean).abs() < 0.3, "var {var} vs mean {mean}");
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn categorical_all_zero_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample_categorical(&[0.0, 0.0], &mut rng);
    }
}
