//! Table 2 reproduction: flavor-sequence prediction (NLL and 1-Best-Err) for
//! Uniform, Multinomial, RepeatFlav, and the LSTM, on both clouds.
//!
//! Paper shape to reproduce: LSTM < RepeatFlav < Multinomial < Uniform on
//! 1-Best-Err, and LSTM ≪ Multinomial < Uniform on NLL, in both clouds.

use bench::{fmt_opt, pct, row, CloudSetup};
use cloudgen::FlavorBaseline;

fn run(setup: &CloudSetup) {
    println!("\n=== Table 2 ({}) ===", setup.name);
    println!(
        "train: {} jobs / {} tokens; test: {} jobs",
        setup.train.len(),
        setup.train_stream.len(),
        setup.test.len()
    );

    let k = setup.space.n_flavors;
    let uniform = FlavorBaseline::Uniform { n_flavors: k }.evaluate(&setup.test_stream);
    let multinomial =
        FlavorBaseline::multinomial(&setup.train_stream, k).evaluate(&setup.test_stream);
    let repeat = FlavorBaseline::repeat_flav(&setup.train_stream, k).evaluate(&setup.test_stream);

    let model = &setup.fit_generator_cached().flavors;
    let lstm = model.evaluate(&setup.test_stream);

    row("System", &["NLL".into(), "1-Best-Err".into()]);
    row(
        "Uniform",
        &[fmt_opt(uniform.nll, 3), pct(uniform.one_best_err)],
    );
    row(
        "Multinomial",
        &[fmt_opt(multinomial.nll, 3), pct(multinomial.one_best_err)],
    );
    row(
        "RepeatFlav",
        &[fmt_opt(repeat.nll, 3), pct(repeat.one_best_err)],
    );
    row("LSTM", &[fmt_opt(lstm.nll, 3), pct(lstm.one_best_err)]);

    let nll_ok = lstm.nll.unwrap() < multinomial.nll.unwrap()
        && multinomial.nll.unwrap() < uniform.nll.unwrap();
    println!(
        "shape check NLL (LSTM < Multinomial < Uniform): {}",
        if nll_ok { "PASS" } else { "DIVERGES" }
    );
    let one_best_ok = lstm.one_best_err < repeat.one_best_err
        && repeat.one_best_err < multinomial.one_best_err
        && multinomial.one_best_err < uniform.one_best_err;
    // See EXPERIMENTS.md: at reduced training scale the LSTM's argmax can
    // trail the repeat heuristic while dominating the likelihood.
    let near = lstm.one_best_err < repeat.one_best_err + 0.08
        && lstm.one_best_err < multinomial.one_best_err;
    println!(
        "shape check 1-Best (LSTM < RepeatFlav < Multinomial < Uniform): {}",
        if one_best_ok {
            "PASS"
        } else if near {
            "NEAR (LSTM within a few points of RepeatFlav, far below Multinomial)"
        } else {
            "DIVERGES"
        }
    );
}

fn main() {
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
