//! Scratch probe: can the lifetime LSTM learn a pure copy rule?
use cloudgen::{FeatureSpace, LifetimeModel, TokenStream, TrainConfig};
use survival::LifetimeBins;
use trace::period::TemporalFeaturesSpec;
use trace::{FlavorCatalog, FlavorId, Job, Trace, UserId};

fn main() {
    // Batches of 4 jobs; each batch picks a random lifetime bin (via a
    // pseudo-random generator) and every job in the batch repeats it.
    let bins = LifetimeBins::paper_47();
    let mut jobs = Vec::new();
    let mut state = 12345u64;
    let mut next = move || { state ^= state << 13; state ^= state >> 7; state ^= state << 17; state };
    for p in 0..3000u64 {
        let bin = (next() % 40) as usize;
        // mid-bin duration
        let lo = bins.lower(bin); let hi = bins.upper(bin).unwrap();
        let dur = ((lo + hi) * 0.5) as u64 / 300 * 300 + 300;
        for _ in 0..4 {
            jobs.push(Job { start: p * 300, end: Some(p * 300 + dur), flavor: FlavorId(0), user: UserId(0) });
        }
    }
    let trace = Trace::new(jobs, FlavorCatalog::azure16());
    let space = FeatureSpace::new(16, bins.clone(), TemporalFeaturesSpec::new(4));
    let train_stream = TokenStream::from_trace(&trace, &bins, u64::MAX / 2);
    let cfg = TrainConfig { epochs: 24, hidden: 48, ..TrainConfig::default() };
    let model = LifetimeModel::fit(&train_stream, space, cfg);
    eprintln!("losses: first {:.4} last {:.4}", model.train_losses[0], model.train_losses.last().unwrap());
    let eval = model.evaluate(&train_stream);
    // in-batch jobs are 3/4 of data; copy rule should give err ~<= 0.25 (batch starts unpredictable)
    eprintln!("1-best err {:.3} (bce {:.4})", eval.one_best_err, eval.bce.unwrap());
}
