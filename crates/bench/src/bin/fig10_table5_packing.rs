//! Figure 10 / Table 5 reproduction: packing experiments. For a fixed set
//! of random scheduling tuples (start point, server count/shape, placement
//! algorithm), pack each generated trace and the actual test trace until
//! the first placement failure; report the first-failure allocation ratio
//! (FFAR) of the limiting resource.
//!
//! Paper shape: Naive traces are misleadingly easy to pack (higher median
//! FFAR, many more >0.95 runs than actual data); SimpleBatch traces are
//! harder to pack than real ones; LSTM traces pack most similarly to the
//! actual test data.

use bench::{n_samples, row, sample_traces, CloudSetup};
use cloudgen::generator::spread_intra_period;
use eval::quantile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{pack_trace, PackingConfig, SchedulingTuple};
use trace::Trace;

struct Summary {
    median: f64,
    frac_over_95: f64,
}

fn summarize(ffars: &[f64]) -> Summary {
    Summary {
        median: quantile(ffars, 0.5),
        frac_over_95: ffars.iter().filter(|&&f| f > 0.95).count() as f64 / ffars.len() as f64,
    }
}

/// Packs trace `i` with tuple `i`; the same tuple list is reused for every
/// generator to reduce variance (§6.2).
fn ffars_for(traces: &[Trace], tuples: &[SchedulingTuple], seed: u64) -> Vec<f64> {
    traces
        .iter()
        .zip(tuples)
        .enumerate()
        .map(|(i, (t, &tuple))| {
            let mut rng = StdRng::seed_from_u64(seed + i as u64);
            let spread = spread_intra_period(t, &mut rng);
            let mut tuple = tuple;
            tuple.start_point = tuple.start_point.min(spread.len().saturating_sub(1));
            pack_trace(&spread, tuple, PackingConfig::default(), &mut rng).limiting()
        })
        .collect()
}

fn run(setup: &CloudSetup) {
    println!("\n=== Figure 10 / Table 5 ({}) ===", setup.name);
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let samples = n_samples();
    let catalog = setup.world.catalog();

    // One shared tuple list (same across generators and actual data); the
    // tuples are catalog-aware so every flavor fits an empty server.
    let mut trng = StdRng::seed_from_u64(0xABCD);
    let tuples: Vec<SchedulingTuple> = (0..samples)
        .map(|_| SchedulingTuple::sample_for(catalog, setup.test.len() / 2 + 1, &mut trng))
        .collect();

    let lstm = setup.fit_generator_cached();
    let naive = setup.fit_naive();
    let simple = setup.fit_simple_batch();

    let mut rows: Vec<(&str, Summary)> = Vec::new();
    for (label, which) in [("Naive", 0usize), ("SimpleBatch", 1), ("LSTM", 2)] {
        let traces = sample_traces(samples, 0xA00 + which as u64, |rng| match which {
            0 => naive.generate(first, n, catalog, rng),
            1 => simple.generate(first, n, catalog, rng),
            _ => lstm.generate(first, n, catalog, rng),
        });
        let ffars = ffars_for(&traces, &tuples, 0xB00 + which as u64);
        rows.push((label, summarize(&ffars)));
    }
    // Actual test data packed once per tuple.
    let actual_traces: Vec<Trace> = vec![setup.test.clone(); samples];
    let actual = summarize(&ffars_for(&actual_traces, &tuples, 0xC00));

    row("Generator", &["Median".into(), ">0.95".into()]);
    for (label, s) in &rows {
        row(
            label,
            &[
                format!("{:.1}", s.median * 100.0),
                format!("{:.1}%", s.frac_over_95 * 100.0),
            ],
        );
    }
    row(
        "Test data",
        &[
            format!("{:.1}", actual.median * 100.0),
            format!("{:.1}%", actual.frac_over_95 * 100.0),
        ],
    );

    let naive_s = &rows[0].1;
    let lstm_s = &rows[2].1;
    let lstm_gap = (lstm_s.median - actual.median).abs();
    let naive_gap = (naive_s.median - actual.median).abs();
    let ok = naive_s.median > actual.median && lstm_gap <= naive_gap;
    println!(
        "shape check (Naive packs too easily; LSTM closest to test data): {}",
        if ok { "PASS" } else { "DIVERGES" }
    );
}

fn main() {
    println!("samples per generator: {}", n_samples());
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
