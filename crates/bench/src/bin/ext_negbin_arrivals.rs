//! Extension experiment: the statistical "beyond Poisson" remedy.
//!
//! Figure 6 shows a Poisson on individual VM arrivals underestimates
//! variance. The paper's remedy is structural (model batches); the classic
//! statistical remedy is a negative-binomial model with `Var = mu + alpha
//! mu^2`. This binary fits both on individual VM arrivals and compares 90 %
//! interval coverage — NB recovers much of the coverage, but unlike the
//! batch model it cannot reproduce *which jobs* arrive together, so the
//! paper's batch-based decomposition remains the right generative choice.

use bench::{pct, row, CloudSetup, n_samples};
use cloudgen::{ArrivalTarget, BatchArrivalModel};
use eval::{coverage, PredictionBand};
use glm::samplers::{sample_negative_binomial, sample_poisson};
use glm::{DohStrategy, ElasticNet, NegBinRegression};
use linalg::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trace::batch::{job_counts, organize_periods};
use trace::period::{TemporalFeaturesSpec, TemporalInfo, PERIOD_SECS};

fn run(setup: &CloudSetup) {
    println!("\n=== Extension: negative-binomial arrivals ({}) ===", setup.name);
    let first = setup.test_first_period();
    let n = setup.test_n_periods();
    let periods = organize_periods(&setup.test);
    let actual = job_counts(&periods, first + n)[first as usize..].to_vec();
    let samples = n_samples();

    // Shared design matrix over the training window (no DOH, matching the
    // traditional per-VM baseline).
    let temporal = TemporalFeaturesSpec::without_doh();
    let train_periods = setup.train_window.len() / PERIOD_SECS;
    let mut x = Mat::zeros(train_periods as usize, temporal.dim());
    for p in 0..train_periods {
        temporal.encode_into(TemporalInfo::of_period(p), None, x.row_mut(p as usize));
    }
    let y = job_counts(&organize_periods(&setup.train), train_periods);

    // Poisson baseline via the arrival-model wrapper.
    let poisson = BatchArrivalModel::fit(
        &setup.train,
        setup.train_window.end,
        ArrivalTarget::Jobs,
        temporal,
        ElasticNet::ridge(1.0),
        DohStrategy::LastDay,
    )
    .expect("poisson fit");

    // NB2 on the same targets.
    let nb = NegBinRegression::fit(&x, &y, ElasticNet::ridge(1.0), 20, 1e-7).expect("nb fit");

    let mut rng = StdRng::seed_from_u64(0x4E42);
    let mut pois_series: Vec<Vec<f64>> = vec![Vec::with_capacity(n as usize); samples];
    let mut nb_series: Vec<Vec<f64>> = vec![Vec::with_capacity(n as usize); samples];
    for p in first..first + n {
        let mut feat = vec![0.0; temporal.dim()];
        temporal.encode_into(TemporalInfo::of_period(p), None, &mut feat);
        let mu_p = poisson.rate(p, None);
        let mu_nb = nb.mean(&feat);
        for s in 0..samples {
            pois_series[s].push(sample_poisson(mu_p, &mut rng) as f64);
            nb_series[s].push(sample_negative_binomial(mu_nb, nb.alpha, &mut rng) as f64);
        }
    }
    let pois_cov = coverage(&PredictionBand::from_samples(&pois_series, 0.05, 0.95), &actual);
    let nb_cov = coverage(&PredictionBand::from_samples(&nb_series, 0.05, 0.95), &actual);

    row("Model", &["coverage".into(), "dispersion".into()]);
    row("Poisson", &[pct(pois_cov), "0 (fixed)".into()]);
    row("NegBin", &[pct(nb_cov), format!("{:.3}", nb.alpha)]);
    println!(
        "shape check (NB recovers coverage the Poisson loses): {}",
        if nb_cov > pois_cov + 0.05 { "PASS" } else { "DIVERGES" }
    );
}

fn main() {
    println!("samples per generator: {}", n_samples());
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure());
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei());
    }
}
