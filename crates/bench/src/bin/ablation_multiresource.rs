//! Extension ablation (§2.2.3): factorized multi-resource output layer vs
//! the flat flavor softmax.
//!
//! Azure's 16 flavors are a bijection with (vCPU, memory) pairs, so the
//! factorized model's joint NLL `-ln p(cpu) - ln p(mem|cpu)` is directly
//! comparable with the flavor LSTM's per-token NLL. Expectation: both learn
//! the planted momentum and land far below the multinomial baseline; the
//! factorized head generalizes to arbitrary resource combinations (where a
//! flat softmax cannot).

use bench::{fmt_opt, pct, row, CloudSetup};
use cloudgen::{FlavorBaseline, MultiResourceModel};

fn main() {
    let setup = CloudSetup::azure();
    println!("=== Ablation: flat flavor softmax vs factorized CPU x memory (azure) ===");
    let catalog = setup.world.catalog();

    let flavor = setup
        .fit_generator_cached()
        .flavors
        .evaluate(&setup.test_stream);
    let multi = MultiResourceModel::fit(
        &setup.train_stream,
        setup.space.clone(),
        catalog,
        setup.train_config(),
    )
    .evaluate(&setup.test_stream, catalog);
    let multinomial = FlavorBaseline::multinomial(&setup.train_stream, setup.space.n_flavors)
        .evaluate(&setup.test_stream);

    row("Model", &["joint NLL".into(), "1-Best-Err".into()]);
    row(
        "Multinomial",
        &[fmt_opt(multinomial.nll, 3), pct(multinomial.one_best_err)],
    );
    row(
        "Flavor LSTM",
        &[fmt_opt(flavor.nll, 3), pct(flavor.one_best_err)],
    );
    row(
        "CPUxMem LSTM",
        &[format!("{:.3}", multi.nll), pct(multi.one_best_err)],
    );

    let ok = multi.nll < multinomial.nll.unwrap() && flavor.nll.unwrap() < multinomial.nll.unwrap();
    println!(
        "shape check (both LSTM heads beat the multinomial): {}",
        if ok { "PASS" } else { "DIVERGES" }
    );
}
