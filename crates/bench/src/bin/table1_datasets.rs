//! Table 1 reproduction: experimental dataset statistics (window sizes and
//! VM counts for train/dev/test in both clouds).
//!
//! The paper's Table 1: Azure 20.8/3.5/5.7 days with 1.2M/259K/410K VMs;
//! Huawei 274/14/17 days with 1.7M/116K/140K VMs. Ours are reduced-scale
//! synthetic equivalents; the shape to preserve is train ≫ dev/test and the
//! Huawei history being much longer than Azure's.

use bench::{row, CloudSetup, DAY};
use trace::ObservationWindow;

fn run(setup: &CloudSetup, dev_days: u32) {
    let dev_start = setup.train_window.end;
    let dev_window = ObservationWindow::new(dev_start, dev_start + dev_days as u64 * DAY);
    let dev = dev_window.apply_unshifted(&setup.history);
    println!("\n=== Table 1 ({}) ===", setup.name);
    row(
        "Window",
        &["days".into(), "VMs".into(), "censored".into()],
    );
    for (label, trace, window) in [
        ("Train", &setup.train, setup.train_window),
        ("Dev", &dev, dev_window),
        ("Test", &setup.test, setup.test_window),
    ] {
        row(
            label,
            &[
                format!("{:.1}", window.len() as f64 / DAY as f64),
                trace.len().to_string(),
                format!("{:.1}%", trace.censored_fraction() * 100.0),
            ],
        );
    }
    println!(
        "flavors: {}; batches (train): {}",
        setup.world.catalog().len(),
        trace::organize_periods(&setup.train)
            .iter()
            .map(|p| p.batches.len())
            .sum::<usize>()
    );
}

fn main() {
    if bench::run_cloud("azure") {
        run(&CloudSetup::azure(), 2);
    }
    if bench::run_cloud("huawei") {
        run(&CloudSetup::huawei(), 3);
    }
}
