//! Architecture ablation (§7): vanilla tanh RNN vs LSTM for the flavor
//! sequence model.
//!
//! The paper calls LSTMs the "simplest network (in terms of manual tuning)
//! that can reliably model long-term dependencies". Both bodies here get
//! identical budgets, heads, and skip connections, so the difference is the
//! recurrent cell. Expectation at our scale: both beat the multinomial; the
//! LSTM matches or beats the vanilla RNN, with the gap coming from
//! state-dependent predictions (EOB timing, post-EOB flavors).

use bench::{fmt_opt, row, pct, CloudSetup};
use cloudgen::FlavorBaseline;
use linalg::numeric::log_softmax_at;
use linalg::Mat;
use nn::loss::softmax_cross_entropy;
use nn::{Adam, AdamConfig, RnnNetwork};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let setup = CloudSetup::azure();
    println!("=== Ablation: vanilla RNN vs LSTM flavor model (azure) ===");
    let cfg = setup.train_config();
    let space = &setup.space;
    let stream = &setup.train_stream;

    // Train a vanilla-RNN flavor model with the same loop as FlavorModel.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = RnnNetwork::with_skip(
        space.flavor_input_dim(),
        cfg.hidden,
        cfg.layers,
        space.flavor_output_dim(),
        &mut rng,
    );
    let mut opt = Adam::new(AdamConfig {
        lr: cfg.lr,
        weight_decay: cfg.weight_decay,
        clip_norm: Some(cfg.clip_norm),
        ..Default::default()
    });
    let n = stream.tokens.len();
    let l = cfg.seq_len;
    let dim = space.flavor_input_dim();
    let mut chunk_starts: Vec<usize> = (0..n.saturating_sub(l - 1)).step_by(l).collect();
    let start = obsv::Stopwatch::new();
    for epoch in 0..cfg.epochs {
        let lr_factor = if epoch * 4 >= cfg.epochs * 3 {
            0.1
        } else if epoch * 2 >= cfg.epochs {
            0.3
        } else {
            1.0
        };
        opt.config_mut().lr = cfg.lr * lr_factor;
        chunk_starts.shuffle(&mut rng);
        for mb in chunk_starts.chunks(cfg.minibatch) {
            let b = mb.len();
            let mut xs = Vec::with_capacity(l);
            let mut targets = Vec::with_capacity(l);
            for t in 0..l {
                let mut x = Mat::zeros(b, dim);
                let mut tgt = Vec::with_capacity(b);
                for (r, &s) in mb.iter().enumerate() {
                    let idx = s + t;
                    let prev = if idx == 0 {
                        space.n_flavors
                    } else {
                        stream.tokens[idx - 1].id
                    };
                    space.encode_flavor_step(prev, stream.tokens[idx].period, None, x.row_mut(r));
                    tgt.push(stream.tokens[idx].id);
                }
                xs.push(x);
                targets.push(tgt);
            }
            net.zero_grad();
            let (logits, cache) = net.forward(&xs);
            let scale = 1.0 / (l * b) as f64;
            let mut dl = Vec::with_capacity(l);
            for (t, logit) in logits.iter().enumerate() {
                let (_, _, mut d) = softmax_cross_entropy(logit, &targets[t]);
                d.scale(scale);
                dl.push(d);
            }
            net.backward(&cache, &dl);
            opt.step(&mut net.params_mut())
                .expect("finite gradients in ablation benchmark");
        }
    }
    eprintln!("[train] vanilla RNN fitted in {:.1}s", start.elapsed_s());

    // Teacher-forced evaluation on the test stream.
    let test = &setup.test_stream;
    let mut state = net.zero_state(1);
    let mut x = Mat::zeros(1, dim);
    let mut nll = 0.0;
    let mut errors = 0usize;
    for (idx, tok) in test.tokens.iter().enumerate() {
        let prev = if idx == 0 {
            space.n_flavors
        } else {
            test.tokens[idx - 1].id
        };
        space.encode_flavor_step(prev, tok.period, None, x.row_mut(0));
        let logits = net.step(&x, &mut state);
        let row_v = logits.row(0);
        nll -= log_softmax_at(row_v, tok.id);
        let pred = row_v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        if pred != tok.id {
            errors += 1;
        }
    }
    let steps = test.tokens.len().max(1);
    let rnn_nll = nll / steps as f64;
    let rnn_err = errors as f64 / steps as f64;

    let lstm = setup.fit_generator_cached().flavors.evaluate(test);
    let multinomial =
        FlavorBaseline::multinomial(stream, space.n_flavors).evaluate(test);

    row("Body", &["NLL".into(), "1-Best-Err".into()]);
    row("Multinomial", &[fmt_opt(multinomial.nll, 3), pct(multinomial.one_best_err)]);
    row("Vanilla RNN", &[format!("{rnn_nll:.3}"), pct(rnn_err)]);
    row("LSTM", &[fmt_opt(lstm.nll, 3), pct(lstm.one_best_err)]);
    let ok = lstm.nll.unwrap() <= rnn_nll * 1.02 && rnn_nll < multinomial.nll.unwrap();
    println!(
        "shape check (LSTM <= vanilla RNN < Multinomial on NLL): {}",
        if ok { "PASS" } else { "DIVERGES" }
    );
}
